//! # fault-trajectory
//!
//! Reproduction of *"Fault-Trajectory Approach for Fault Diagnosis on
//! Analog Circuits"* (Savioli, Szendrodi, Calvano, Mesquita — DATE 2005)
//! as a production-quality Rust workspace.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`numerics`] — complex arithmetic, dense LU, polynomials, transfer
//!   functions, frequency grids, Goertzel DFT, statistics.
//! * [`circuit`] — MNA linear circuit simulator (AC/DC/transient),
//!   SPICE-subset parser, op-amp models, benchmark filters.
//! * [`faults`] — parametric fault model, fault universes, dictionaries,
//!   tolerance/noise models.
//! * [`evolve`] — the GA framework (roulette wheel et al.).
//! * [`core`] — the paper's method: signatures, trajectories, fitness
//!   `1/(1+I)`, GA ATPG, perpendicular-distance diagnosis, metrics.
//! * [`serve`] — the serving layer: persistent trajectory banks
//!   (sectioned v2 container), the segment spatial index, batched
//!   diagnosis, out-of-core multi-circuit bank sharding (`BankStore`:
//!   zero-copy mmap loads, LRU eviction under a memory budget, hot
//!   shard reload), the persistent-pool front-end (`ServeHandle`), the
//!   serving observability registry (`MetricsRegistry`: counters,
//!   gauges, log₂ latency histograms, JSON/Prometheus snapshots), and
//!   the `ftd` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use fault_trajectory::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's CUT: a normalized Tow-Thomas biquad low-pass.
//! let bench = tow_thomas_normalized(1.0)?;
//!
//! // Fault dictionary: 7 passives × ±40% in 10% steps = 56 circuits.
//! let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
//! let dict = FaultDictionary::build(
//!     &bench.circuit,
//!     &universe,
//!     &bench.input,
//!     &bench.probe,
//!     &FrequencyGrid::log_space(0.01, 100.0, 41),
//! )?;
//!
//! // Deploy a two-frequency test vector and diagnose an unknown fault.
//! let tv = TestVector::pair(0.98, 2.5);
//! let set = trajectories_from_dictionary(&dict, &tv);
//! let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
//!
//! let mut faulty = bench.circuit.clone();
//! faulty.set_value("R2", 1.25)?; // +25%, off the dictionary grid
//! let sig = measure_signature(&faulty, &bench.circuit, &bench.input, &bench.probe, &tv)?;
//! let verdict = diagnoser.diagnose(&sig);
//! assert_eq!(verdict.best().component, "R2");
//! # Ok(())
//! # }
//! ```

pub use ft_circuit as circuit;
pub use ft_core as core;
pub use ft_evolve as evolve;
pub use ft_faults as faults;
pub use ft_numerics as numerics;
pub use ft_serve as serve;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use ft_circuit::{
        all_benchmarks, khn_state_variable, mfb_normalized, operating_point, rlc_ladder_lowpass,
        sallen_key_normalized, sample_at, sweep, sweep_reference, tow_thomas,
        tow_thomas_normalized, transfer, transient, twin_t_notch, AcSweepEngine, Benchmark,
        Circuit, CircuitError, Element, OpAmpModel, Probe, TowThomasParams, TransientOptions,
        Waveform,
    };
    pub use ft_core::{
        ambiguity_groups, evaluate_classifier, grid_search, measure_signature, random_search,
        select_test_vector, sensitivity_heuristic, trajectories_from_dictionary, AtpgConfig,
        Diagnoser, DiagnoserConfig, EvalConfig, FitnessKind, GeometryOptions, LinearScan,
        NnDictionary, SegmentQuery, Signature, TestVector, TopkRanking,
    };
    pub use ft_evolve::{GaConfig, Selection};
    pub use ft_faults::{
        DeviationGrid, FaultDictionary, FaultUniverse, MeasurementNoise, MultiFault,
        MultiFaultDictionary, ParametricFault, Tolerance,
    };
    pub use ft_numerics::{Complex64, FrequencyGrid, TransferFunction};
    pub use ft_serve::{
        BankStore, CodecError, DiagnosisEngine, DiagnosisRequest, EngineConfig, MappedBank,
        MetricsRegistry, SegmentIndex, ServeHandle, Snapshot, StoreConfig, StoreError,
        TrajectoryBank, TreeIndex,
    };
}
