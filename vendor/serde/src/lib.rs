//! Offline marker-trait subset of `serde`.
//!
//! The build environment has no registry access. This shim lets the
//! workspace keep its `#[derive(Serialize, Deserialize)]` annotations
//! compiling: the derives (see `serde_derive`) emit empty marker impls of
//! the two traits below. **The derives are markers only — no
//! serialization code is generated, and nothing in the workspace may
//! rely on serde for persistence.** Anything that needs durable
//! artifacts must use the hand-rolled, checksummed binary codec in
//! `ft-serve` (`crates/serve/src/codec.rs`), which is how trajectory
//! banks are saved and loaded today. Swapping in the real `serde` later
//! requires only replacing the two vendored crates.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
