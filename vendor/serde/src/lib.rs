//! Offline marker-trait subset of `serde`.
//!
//! The build environment has no registry access. This shim lets the
//! workspace keep its `#[derive(Serialize, Deserialize)]` annotations
//! compiling: the derives (see `serde_derive`) emit empty marker impls of
//! the two traits below. No actual serialization is provided; swapping in
//! the real `serde` later requires only replacing the two vendored crates.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
