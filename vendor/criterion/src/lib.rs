//! Offline minimal bench harness exposing the subset of the `criterion`
//! API the workspace benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size` / `bench_with_input` / `finish`),
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline this shim runs a short
//! calibrated measurement (warm-up, then timed batches) and prints
//! `name  time: [median mean max]`-style lines. It honours `--bench`
//! (ignored), treats any free argument as a substring filter, and supports
//! `--quick` for a single-iteration smoke run.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings; a trimmed stand-in for criterion's `Criterion`.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = false;
        let mut sample_size = 50;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--quick" => quick = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown criterion flag: swallow a value if one follows.
                    if args.peek().is_some_and(|v| !v.starts_with("--")) {
                        let _ = args.next();
                    }
                }
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            filter,
            quick,
            sample_size,
        }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        if !self.enabled(id) {
            return;
        }
        let mut bencher = Bencher {
            quick: self.quick,
            samples: self.sample_size,
            measurements: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }

    /// Benchmark a single function under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Criterion's builder-style final configuration hook (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn scoped(&self, id: &str) -> String {
        format!("{}/{}", self.name, id)
    }

    fn effective(&self) -> Criterion {
        Criterion {
            filter: self.parent.filter.clone(),
            quick: self.parent.quick,
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
        }
    }

    /// Benchmark a function inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = self.scoped(&id.into().0);
        self.effective().run_one(&id, f);
        self
    }

    /// Benchmark a function parameterised by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = self.scoped(&id.0);
        self.effective().run_one(&id, |b| f(b, input));
        self
    }

    /// Close the group (formatting no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    quick: bool,
    samples: usize,
    measurements: Vec<Duration>,
}

impl Bencher {
    /// Time repeated invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.measurements.push(start.elapsed());
            return;
        }
        // Calibrate the per-call cost so each sample takes ~1 ms and the
        // whole benchmark stays within tens of milliseconds.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let samples = self.samples.min(
            (Duration::from_millis(200).as_nanos() / (once.as_nanos() * per_sample)).max(1)
                as usize,
        );
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.measurements.push(start.elapsed() / per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.measurements.is_empty() {
            println!("{id:<50} (no measurement)");
            return;
        }
        let mut sorted = self.measurements.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declare a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_measurements() {
        let mut b = Bencher {
            quick: false,
            samples: 5,
            measurements: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(!b.measurements.is_empty());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(41).0, "41");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
