//! Offline minimal property-testing harness exposing the subset of the
//! `proptest` API this workspace's tests use: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), range and tuple strategies,
//! `prop_map`, `collection::vec`, `sample::select`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled values left in the assertion message. Case generation is
//! deterministic per test name, so failures reproduce across runs.

#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Deterministic per-test random source driving all strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed deterministically from the (unique) test name.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    fn usize_below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (no shrinking to preserve).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        rng.0.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A strategy producing one fixed value (proptest's `Just`).
#[derive(Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.usize_below(self.end - self.start)
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn IntoSizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly select one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    /// Strategy returned by [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.usize_below(self.0.len())].clone()
        }
    }
}

/// Per-test configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker for a case rejected by `prop_assume!`.
#[derive(Debug)]
pub struct Rejected;

/// Everything tests normally import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::sample;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// The `prop` path alias real proptest exposes from its prelude.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Define property tests over sampled inputs, proptest-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with($cfg) $($rest)*);
    };
    (@with($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::Rejected> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted >= config.cases,
                    "prop_assume! rejected too many cases: only {accepted} of the \
                     configured {} accepted after {attempts} attempts",
                    config.cases
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property test (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Reject the current case unless `cond` holds (does not count it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // `if cond {} else { return }` instead of `if !cond` so that
        // partial-ord comparisons in `cond` don't trip clippy's
        // `neg_cmp_op_on_partial_ord` at every expansion site.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn prop_map_applies(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| [a, b])) {
            prop_assert!(p[0] >= 0.0 && p[1] < 1.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    fn select_draws_from_options() {
        let strategy = sample::select(vec![1, 2, 3]);
        let mut rng = crate::TestRng::deterministic("select_draws_from_options");
        for _ in 0..50 {
            let v = crate::Strategy::sample(&strategy, &mut rng);
            assert!([1, 2, 3].contains(&v));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let strategy = crate::collection::vec(0.0f64..1.0, 2usize..5);
        let mut rng = crate::TestRng::deterministic("vec_respects_size_range");
        for _ in 0..50 {
            let v = crate::Strategy::sample(&strategy, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        for _ in 0..10 {
            assert_eq!(a.f64_in(0.0, 1.0), b.f64_in(0.0, 1.0));
        }
    }
}
