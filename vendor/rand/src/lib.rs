//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the subset of `rand` 0.8 the workspace actually uses is
//! reimplemented here: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! the [`rngs::StdRng`] generator, uniform sampling over ranges, and the
//! `Standard`-style `gen::<T>()` distribution for primitives.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic for a given seed but intentionally **not** bit-compatible
//! with the upstream `rand` crate; nothing in the workspace relies on
//! upstream streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64` words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * f64::sample_standard(rng)
}

/// Unbiased integer in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        uniform_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        uniform_f64(rng, lo, hi)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a `Standard`-distributed type (`f64` in `[0,1)`,
    /// fair `bool`, full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from ambient entropy (time-derived here).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let stack_probe = &nanos as *const _ as u64;
        Self::seed_from_u64(nanos ^ stack_probe.rotate_left(32))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = Self::splitmix(&mut sm);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A default generator seeded from ambient entropy (mirrors
/// `rand::thread_rng` closely enough for non-cryptographic use).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&y));
            let z = rng.gen_range(3usize..9);
            assert!((3..9).contains(&z));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn integer_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
