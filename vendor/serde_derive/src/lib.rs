//! Offline no-op replacements for serde's derive macros.
//!
//! The build environment has no registry access, so real `serde` cannot be
//! compiled. The workspace keeps its `#[derive(Serialize, Deserialize)]`
//! and `#[serde(...)]` annotations as markers for a future PR that swaps in
//! the real crate; these derives accept the annotations and emit marker
//! trait impls only — no serialization machinery is generated.

use proc_macro::{Spacing, TokenStream, TokenTree};

struct Item {
    name: String,
    /// Full generics text including bounds, e.g. `T: Scalar, 'a`.
    params: Vec<String>,
}

/// Extract the item name and its generic parameter list (with bounds) from
/// a struct/enum definition token stream.
fn parse_item(input: TokenStream) -> Option<Item> {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name?;

    let mut params = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut current = String::new();
        let mut prev_joint_dash = false;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                let c = p.as_char();
                // `->` inside e.g. `F: Fn() -> T` must not close the list.
                let arrow = c == '>' && prev_joint_dash;
                prev_joint_dash = c == '-' && p.spacing() == Spacing::Joint;
                if !arrow {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => {
                            if !current.trim().is_empty() {
                                params.push(current.trim().to_string());
                            }
                            current.clear();
                            continue;
                        }
                        _ => {}
                    }
                }
            } else {
                prev_joint_dash = false;
            }
            current.push_str(&tt.to_string());
            // Joint puncts (the `'` of a lifetime, `::`, `->`) must stay
            // glued to the next token to re-lex correctly.
            match &tt {
                TokenTree::Punct(p) if p.spacing() == Spacing::Joint => {}
                _ => current.push(' '),
            }
        }
        if !current.trim().is_empty() {
            params.push(current.trim().to_string());
        }
    }
    Some(Item { name, params })
}

/// First identifier (or lifetime) of a generic parameter declaration:
/// `T: Scalar` → `T`, `'a` → `'a`, `const N: usize` → `const` is skipped
/// to yield `N`.
fn param_name(param: &str) -> String {
    let head = param.split([':', '=']).next().unwrap_or(param).trim();
    let head = head.strip_prefix("const ").unwrap_or(head).trim();
    head.to_string()
}

fn marker_impl(input: TokenStream, trait_path: &str, de_lifetime: bool) -> TokenStream {
    let Some(item) = parse_item(input) else {
        return TokenStream::new();
    };
    let mut impl_params: Vec<String> = Vec::new();
    if de_lifetime {
        impl_params.push("'de".to_string());
    }
    impl_params.extend(item.params.iter().cloned());
    let ty_args: Vec<String> = item.params.iter().map(|p| param_name(p)).collect();

    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if ty_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", ty_args.join(", "))
    };
    let trait_generics = if de_lifetime { "<'de>" } else { "" };
    let name = &item.name;
    format!(
        "#[automatically_derived] impl{impl_generics} {trait_path}{trait_generics} \
         for {name}{ty_generics} {{}}"
    )
    .parse()
    .unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker `impl serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", false)
}

/// No-op `Deserialize` derive: emits a marker `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize", true)
}
