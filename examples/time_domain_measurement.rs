//! The bench-instrument measurement path: instead of reading |H(jω)| from
//! AC analysis, apply the two-tone test stimulus in the *time domain*
//! (transient simulation), digitise the output, and extract per-tone
//! amplitudes with the Goertzel single-bin DFT — then diagnose from those
//! measurements exactly as a production tester would.
//!
//! ```sh
//! cargo run --release --example time_domain_measurement
//! ```

use fault_trajectory::circuit::Waveform;
use fault_trajectory::numerics::dsp;
use fault_trajectory::prelude::*;

/// Measures |H| (dB) at the two test tones via transient + Goertzel.
fn measure_time_domain(
    circuit: &Circuit,
    tv: &TestVector,
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let f_hz: Vec<f64> = tv
        .omegas()
        .iter()
        .map(|w| w / std::f64::consts::TAU)
        .collect();

    // Drive with a unit-amplitude two-tone and simulate long enough to
    // reach steady state (the CUT's slowest pole is near ω = 1 rad/s).
    let mut driven = circuit.clone();
    replace_source_with_multitone(&mut driven, "V1", &f_hz)?;

    let t_settle = 60.0; // seconds of settling (≈ 10 time constants)
    let periods = 16.0; // measured window: whole periods of the slower tone
    let t_measure = periods / f_hz[0];
    let dt = 1.0 / (f_hz[1] * 400.0); // 400 samples per fast period
    let options = TransientOptions::new(t_settle + t_measure, dt)?;
    let result = fault_trajectory::circuit::transient(&driven, &options)?;

    let out = result.node_by_name(&driven, "lp")?;
    let fs = result.sample_rate();
    let skip = (t_settle / result.sample_interval()) as usize;
    let tail = &out[skip..];

    Ok(f_hz
        .iter()
        .map(|&f| {
            let amp = dsp::tone_amplitude(tail, f, fs, dsp::Window::Hann);
            20.0 * amp.log10() // input tones have unit amplitude
        })
        .collect())
}

fn replace_source_with_multitone(
    circuit: &mut Circuit,
    _name: &str,
    f_hz: &[f64],
) -> Result<(), Box<dyn std::error::Error>> {
    // The builder API keeps sources immutable except for DC value, so the
    // stimulated circuit is rebuilt with the waveform attached.
    let mut rebuilt = Circuit::new(circuit.name().to_string());
    rebuilt.voltage_source_full(
        "V1",
        "in",
        "0",
        0.0,
        1.0,
        0.0,
        Some(Waveform::MultiTone {
            amplitudes: vec![1.0; f_hz.len()],
            freqs_hz: f_hz.to_vec(),
            phases_rad: vec![0.0; f_hz.len()],
        }),
    )?;
    for comp in circuit.components() {
        if comp.name() == "V1" {
            continue;
        }
        let nodes: Vec<String> = comp
            .nodes()
            .iter()
            .map(|&n| circuit.node_name(n).to_string())
            .collect();
        match comp.element() {
            Element::Resistor { r } => {
                rebuilt.resistor(comp.name(), &nodes[0], &nodes[1], *r)?;
            }
            Element::Capacitor { c } => {
                rebuilt.capacitor(comp.name(), &nodes[0], &nodes[1], *c)?;
            }
            Element::IdealOpAmp => {
                rebuilt.ideal_opamp(comp.name(), &nodes[0], &nodes[1], &nodes[2])?;
            }
            other => return Err(format!("unhandled element {other:?}").into()),
        }
    }
    *circuit = rebuilt;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = tow_thomas_normalized(1.0)?;
    let tv = TestVector::pair(0.98, 2.5);

    // Reference: frequency-domain (AC) measurement.
    let ac_db: Vec<f64> = sample_at(&bench.circuit, &bench.input, &bench.probe, tv.omegas())?
        .iter()
        .map(|v| 20.0 * v.abs().log10())
        .collect();

    // Time-domain measurement of the same circuit.
    let td_db = measure_time_domain(&bench.circuit, &tv)?;

    println!("golden CUT, test vector {tv}");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "omega", "AC |H| dB", "tran+Goertzel", "delta"
    );
    for i in 0..tv.len() {
        println!(
            "{:>12.4} {:>14.4} {:>14.4} {:>10.4}",
            tv.omegas()[i],
            ac_db[i],
            td_db[i],
            td_db[i] - ac_db[i]
        );
    }

    let max_err = ac_db
        .iter()
        .zip(&td_db)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax discrepancy: {max_err:.4} dB");
    assert!(
        max_err < 0.1,
        "time-domain measurement should track AC analysis"
    );
    println!("time-domain measurement path agrees with AC analysis.");
    Ok(())
}
