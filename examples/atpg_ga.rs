//! GA-based test-vector generation (the paper's §2.4) compared against a
//! random search with the same evaluation budget.
//!
//! ```sh
//! cargo run --release --example atpg_ga
//! ```

use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = tow_thomas_normalized(1.0)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let dict = FaultDictionary::build(
        &bench.circuit,
        &universe,
        &bench.input,
        &bench.probe,
        &FrequencyGrid::log_space(0.01, 100.0, 41),
    )?;

    // The paper's GA: 128 individuals, 15 generations, 50% reproduction,
    // 40% mutation, roulette-wheel selection, fitness 1/(1+I).
    let config = AtpgConfig::paper_seeded(bench.search_band, 2005);
    let ga = select_test_vector(&dict, &config);

    println!("GA (§2.4 parameters):");
    println!("  test vector   : {}", ga.test_vector);
    println!("  intersections : {}", ga.intersections);
    println!("  fitness       : {:.5}", ga.fitness);
    println!("  evaluations   : {}", ga.evaluations);
    println!("  convergence   :");
    for s in &ga.history {
        println!(
            "    gen {:>2}  best {:.5}  mean {:.5}  worst {:.5}",
            s.generation, s.best, s.mean, s.worst
        );
    }

    // Fairness-matched random baseline.
    let random = random_search(
        &dict,
        2,
        bench.search_band,
        ga.evaluations,
        FitnessKind::Paper,
        &GeometryOptions::default(),
        2005,
    );
    println!("\nrandom search (same {} evaluations):", random.evaluations);
    println!("  test vector   : {}", random.test_vector);
    println!("  intersections : {}", random.intersections);
    println!("  fitness       : {:.5}", random.fitness);

    // Coarse exhaustive grid for reference.
    let grid = grid_search(
        &dict,
        2,
        bench.search_band,
        20,
        FitnessKind::Paper,
        &GeometryOptions::default(),
    );
    println!("\nexhaustive 20-point grid ({} pairs):", grid.evaluations);
    println!("  test vector   : {}", grid.test_vector);
    println!("  intersections : {}", grid.intersections);
    println!("  fitness       : {:.5}", grid.fitness);

    if ga.fitness >= random.fitness && ga.fitness >= grid.fitness {
        println!("\nthe GA matched or beat both baselines.");
    } else {
        println!("\nnote: a baseline won this seed — rerun with another seed.");
    }
    Ok(())
}
