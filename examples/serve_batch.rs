//! The full serving lifecycle: build a trajectory bank, persist it,
//! reload it, and answer a batch of 100 noisy observations through the
//! indexed diagnosis engine — then serve the same observations through
//! the sharded `BankStore` + persistent `ServeHandle` worker pool and
//! check both paths agree byte-for-byte.
//!
//! ```sh
//! cargo run --release --example serve_batch
//! ```

use fault_trajectory::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- offline phase: simulate once, persist the artifacts --------
    let bench = tow_thomas_normalized(1.0)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let dict = FaultDictionary::build(
        &bench.circuit,
        &universe,
        &bench.input,
        &bench.probe,
        &FrequencyGrid::log_space(0.01, 100.0, 41),
    )?;
    let tv = TestVector::pair(0.6, 1.6);
    let bank = TrajectoryBank::build(dict, &tv);

    let path = std::env::temp_dir().join("serve_batch_example.ftb");
    bank.save(&path)?;
    println!(
        "saved bank: {} trajectories / {} segments, {} bytes at {}",
        bank.trajectory_set().len(),
        bank.trajectory_set().total_segments(),
        std::fs::metadata(&path)?.len(),
        path.display()
    );

    // ---- online phase: load, index, serve ---------------------------
    let loaded = TrajectoryBank::load(&path)?;
    assert_eq!(loaded, bank, "disk round trip is lossless");
    let engine = DiagnosisEngine::new(loaded, EngineConfig::default());

    // 100 unknown faults, off the dictionary grid, with 0.1 dB of
    // instrument noise on every measured magnitude.
    let noise = MeasurementNoise::new(0.1);
    let mut rng = StdRng::seed_from_u64(2005);
    let mut faults = Vec::new();
    let mut observations = Vec::new();
    for _ in 0..100 {
        let fault = engine
            .bank()
            .expect("heap engine keeps its bank")
            .dictionary()
            .universe()
            .sample_unknown(&mut rng, 5.0);
        let faulty = fault.apply(&bench.circuit)?;
        let clean = measure_signature(&faulty, &bench.circuit, &bench.input, &bench.probe, &tv)?;
        let noisy = Signature::new(
            clean
                .coords()
                .iter()
                .map(|&db| noise.perturb(db, &mut rng))
                .collect::<Vec<f64>>(),
        );
        faults.push(fault);
        observations.push(noisy);
    }

    let started = std::time::Instant::now();
    let verdicts = engine.diagnose_batch(&observations);
    let elapsed = started.elapsed();

    // The indexed batch must agree with the exhaustive linear scan.
    let reference = engine.diagnose_batch_linear(&observations);
    assert_eq!(verdicts, reference, "index is exact");
    // And with the plain single-signature Diagnoser path.
    let diagnoser = Diagnoser::new(engine.trajectory_set().clone(), DiagnoserConfig::default());
    let single: Vec<_> = observations.iter().map(|s| diagnoser.diagnose(s)).collect();
    assert_eq!(verdicts, single, "batching preserves results and order");

    let mut top1 = 0;
    let mut in_set = 0;
    for (fault, verdict) in faults.iter().zip(&verdicts) {
        top1 += (verdict.best().component == fault.component()) as usize;
        in_set += verdict.ambiguity_set().contains(&fault.component()) as usize;
    }
    println!(
        "diagnosed {} noisy observations in {elapsed:.2?}: {top1}% top-1, {in_set}% within the ambiguity set",
        verdicts.len()
    );

    // ---- sharded front-end: same bank behind a CUT-id route ---------
    let store = std::sync::Arc::new(fault_trajectory::serve::BankStore::in_memory(
        EngineConfig::default(),
    ));
    store.insert_bank(
        "tow-thomas",
        engine.bank().expect("heap engine keeps its bank").clone(),
    )?;
    let mut handle = ServeHandle::new(store, 4);
    handle.submit(
        observations
            .iter()
            .map(|sig| DiagnosisRequest::new("tow-thomas", sig.clone()))
            .collect(),
    );
    let pooled: Vec<_> = handle
        .drain()
        .remove(0)
        .into_iter()
        .collect::<Result<_, _>>()?;
    assert_eq!(
        pooled, verdicts,
        "persistent pool is byte-identical to the scoped batch"
    );
    println!(
        "re-served the batch through BankStore + a {}-worker persistent pool: identical results",
        handle.worker_count()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
