//! Quickstart: build the paper's CUT, pick a test vector, and diagnose an
//! unknown parametric fault.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The circuit under test: normalized Tow-Thomas biquad low-pass
    //    (ω₀ = 1 rad/s, Q = 1), seven diagnosable passive components.
    let bench = tow_thomas_normalized(1.0)?;
    println!("CUT: {}", bench.description);
    println!("fault set: {:?}\n", bench.fault_set);

    // 2. Fault simulation: each component deviated ±40% in 10% steps.
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    println!("fault universe: {} faulty circuits", universe.len());
    let dict = FaultDictionary::build(
        &bench.circuit,
        &universe,
        &bench.input,
        &bench.probe,
        &FrequencyGrid::log_space(0.01, 100.0, 41),
    )?;

    // 3. Deploy a two-frequency test vector around the corner frequency.
    let tv = TestVector::pair(0.98, 2.5);
    let set = trajectories_from_dictionary(&dict, &tv);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
    println!("test vector: {tv}\n");

    // 4. Something breaks in the field: R2 drifts +25% (not a dictionary
    //    point). Measure the response and diagnose.
    let mut field_unit = bench.circuit.clone();
    field_unit.set_value("R2", 1.25)?;
    let observed = measure_signature(&field_unit, &bench.circuit, &bench.input, &bench.probe, &tv)?;
    println!("observed signature: {observed}");

    let verdict = diagnoser.diagnose(&observed);
    println!("\nranked diagnosis:");
    for (rank, c) in verdict.candidates().iter().enumerate() {
        println!(
            "  {}. {:<4} distance {:.4} dB, estimated deviation {:+.1}%",
            rank + 1,
            c.component,
            c.distance,
            c.deviation_pct
        );
    }
    println!(
        "\nverdict: {} at {:+.1}% (true fault: R2 at +25%)",
        verdict.best().component,
        verdict.best().deviation_pct
    );
    assert_eq!(verdict.best().component, "R2");
    Ok(())
}
