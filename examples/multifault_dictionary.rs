//! Multi-fault dictionaries on the Woodbury rank-k batch sweep.
//!
//! Builds the exhaustive pair-fault dictionary of the paper's biquad
//! (every unordered pair of single-fault universe entries on distinct
//! components) and spot-checks it against the `MultiFault::apply` +
//! `sweep_reference` oracle. With an output path the full-precision
//! dictionary is dumped as CSV — the CI determinism smoke builds it
//! twice with different worker counts and `cmp`s the files, the
//! multi-fault analogue of the `ftd build-bank` determinism check.
//!
//! ```sh
//! cargo run --release --example multifault_dictionary
//! cargo run --release --example multifault_dictionary -- /tmp/mfd.csv 4
//! ```

use std::fmt::Write as _;

use fault_trajectory::faults::{all_pairs, MultiFaultDictionary};
use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let out_path = args.next();
    let workers: usize = args.next().map(|w| w.parse()).transpose()?.unwrap_or(0);

    let bench = tow_thomas_normalized(1.0)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::new(40.0, 20.0));
    let pairs = all_pairs(&universe);
    let grid = FrequencyGrid::log_space(0.01, 100.0, 21);
    println!(
        "pair-fault universe: {} components -> {} double faults",
        universe.components().len(),
        pairs.len()
    );

    let dict = if workers > 0 {
        MultiFaultDictionary::build_with_workers(
            &bench.circuit,
            &pairs,
            &bench.input,
            &bench.probe,
            &grid,
            workers,
        )?
    } else {
        MultiFaultDictionary::build(&bench.circuit, &pairs, &bench.input, &bench.probe, &grid)?
    };
    println!(
        "built {} entries on {} grid points (workers: {})",
        dict.len(),
        dict.grid().len(),
        if workers > 0 {
            workers.to_string()
        } else {
            "auto".to_string()
        }
    );

    // Spot-check a few entries against the clone-and-reassemble oracle.
    for idx in [0, dict.len() / 2, dict.len() - 1] {
        let entry = &dict.entries()[idx];
        let faulty = entry.fault().apply(&bench.circuit)?;
        let oracle = sweep_reference(&faulty, &bench.input, &bench.probe, &grid)?.magnitude_db();
        let worst = entry
            .magnitude_db()
            .iter()
            .zip(&oracle)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("  {}: worst |Δ| vs oracle = {worst:.3e} dB", entry.fault());
        assert!(worst < 1e-9, "engine path diverged from the oracle");
    }

    if let Some(path) = out_path {
        // Full-precision dump (shortest round-trip f64 formatting): two
        // builds are byte-identical iff every response bit matches.
        let mut csv = String::from("omega_rad_s,golden_db");
        for e in dict.entries() {
            write!(csv, ",{}", e.fault())?;
        }
        csv.push('\n');
        for (j, w) in dict.grid().frequencies().iter().enumerate() {
            write!(csv, "{w},{}", dict.golden_db()[j])?;
            for e in dict.entries() {
                write!(csv, ",{}", e.magnitude_db()[j])?;
            }
            csv.push('\n');
        }
        std::fs::write(&path, csv)?;
        println!("wrote full-precision dictionary CSV to {path}");
    }
    Ok(())
}
