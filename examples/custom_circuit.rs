//! Applying the method to your own circuit, written as a SPICE-style
//! netlist: parse, pick a fault set, build the dictionary, search a test
//! vector, diagnose.
//!
//! ```sh
//! cargo run --release --example custom_circuit
//! ```

use fault_trajectory::circuit::parser::parse_netlist;
use fault_trajectory::prelude::*;

const NETLIST: &str = "
* Sallen-Key low-pass, unity gain, fc ≈ 1.59 kHz
V1 in 0 AC 1
R1 in a 10k
R2 a b 10k
C1 a out 14.14n
C2 b 0 7.07n
U1 b out out
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_netlist(NETLIST)?;
    circuit.validate()?;
    println!("parsed netlist:\n{circuit}");

    let probe = Probe::node("out");
    let fault_set: Vec<String> = circuit
        .passive_components()
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("fault set: {fault_set:?}");

    // This filter lives around ω₀ ≈ 10⁴ rad/s; search 10²–10⁶.
    let band = (1e2, 1e6);
    let universe = FaultUniverse::new(&fault_set, DeviationGrid::paper());
    let dict = FaultDictionary::build(
        &circuit,
        &universe,
        "V1",
        &probe,
        &FrequencyGrid::log_space(band.0, band.1, 41),
    )?;

    let mut config = AtpgConfig::paper_seeded(band, 7);
    config.ga.population = 64;
    config.ga.generations = 10;
    let atpg = select_test_vector(&dict, &config);
    println!(
        "\nselected test vector {} (I = {}, fitness {:.4})",
        atpg.test_vector, atpg.intersections, atpg.fitness
    );

    // Inject an off-grid fault on C2 and diagnose it.
    let diagnoser = Diagnoser::new(atpg.trajectories.clone(), DiagnoserConfig::default());
    let fault = ParametricFault::from_percent("C2", -28.0);
    let faulty = fault.apply(&circuit)?;
    let sig = measure_signature(&faulty, &circuit, "V1", &probe, &atpg.test_vector)?;
    let verdict = diagnoser.diagnose(&sig);

    println!("\ninjected: {fault}");
    for (rank, c) in verdict.candidates().iter().enumerate() {
        println!(
            "  {}. {:<4} distance {:.4} dB, estimate {:+.1}%",
            rank + 1,
            c.component,
            c.distance,
            c.deviation_pct
        );
    }
    Ok(())
}
