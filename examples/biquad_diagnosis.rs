//! Full paper pipeline on the Tow-Thomas CUT: dictionary → GA test vector
//! → trajectory diagnosis of a batch of unknown faults, with the
//! structural ambiguity classes ({R3,R5} and {R4,C2}) made explicit.
//!
//! ```sh
//! cargo run --release --example biquad_diagnosis
//! ```

use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = tow_thomas_normalized(1.0)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let dict = FaultDictionary::build(
        &bench.circuit,
        &universe,
        &bench.input,
        &bench.probe,
        &FrequencyGrid::log_space(0.01, 100.0, 41),
    )?;

    let atpg = select_test_vector(&dict, &AtpgConfig::paper_seeded(bench.search_band, 2005));
    println!("GA test vector: {}\n", atpg.test_vector);

    // The structural ambiguity classes at this test vector.
    let groups = ambiguity_groups(&atpg.trajectories, 1e-6, &GeometryOptions::default());
    println!("ambiguity classes ({}):", groups.len());
    for g in groups.groups() {
        println!("  {{{}}}", g.join(", "));
    }
    println!();

    let diagnoser = Diagnoser::new(atpg.trajectories.clone(), DiagnoserConfig::default());

    // Diagnose one off-grid fault per component.
    let cases: Vec<(&str, f64)> = vec![
        ("R1", 25.0),
        ("R2", -15.0),
        ("R3", 33.0),
        ("R4", -22.0),
        ("R5", 18.0),
        ("C1", -35.0),
        ("C2", 27.0),
    ];
    let mut component_hits = 0;
    let mut class_hits = 0;
    println!(
        "{:<12} {:<10} {:<22} class-correct",
        "true fault", "top-1", "estimate"
    );
    for (component, pct) in &cases {
        let fault = ParametricFault::from_percent(*component, *pct);
        let faulty = fault.apply(&bench.circuit)?;
        let sig = measure_signature(
            &faulty,
            &bench.circuit,
            &bench.input,
            &bench.probe,
            &atpg.test_vector,
        )?;
        let verdict = diagnoser.diagnose(&sig);
        let best = verdict.best();
        let class_ok = groups
            .group_of(component)
            .is_some_and(|g| g.iter().any(|c| c == &best.component));
        if best.component == *component {
            component_hits += 1;
        }
        if class_ok {
            class_hits += 1;
        }
        println!(
            "{:<12} {:<10} {:<22} {}",
            format!("{fault}"),
            best.component,
            format!("{:+.1}% (true {:+.0}%)", best.deviation_pct, pct),
            if class_ok { "yes" } else { "NO" },
        );
    }
    println!(
        "\ncomponent-level: {component_hits}/{} correct; class-level: {class_hits}/{} correct",
        cases.len(),
        cases.len()
    );
    println!(
        "(faults inside {{R3,R5}} and {{R4,C2}} are provably indistinguishable \
         from a single low-pass output — see DESIGN.md §4b)"
    );
    Ok(())
}
