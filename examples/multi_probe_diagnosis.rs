//! Multi-probe diagnosis: lifting the CUT's structural ambiguity ceiling
//! by observing more than one op-amp output.
//!
//! From the low-pass node alone, R3/R5 and R4/C2 enter the response only
//! as products and are provably indistinguishable. Observing the
//! inverter output as well separates R3 from R5 (R5 scales the inverter
//! gain directly); R4/C2 remain a true time-constant ambiguity at every
//! voltage node.
//!
//! ```sh
//! cargo run --release --example multi_probe_diagnosis
//! ```

use fault_trajectory::core::ProbeBank;
use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = tow_thomas_normalized(1.0)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let grid = FrequencyGrid::log_space(0.01, 100.0, 41);
    let tv = TestVector::pair(0.98, 2.5);

    for (label, probes) in [
        (
            "single probe (lp) — the paper's setup",
            vec![Probe::node("lp")],
        ),
        (
            "three probes (lp, bp, inv) — the extension",
            vec![Probe::node("lp"), Probe::node("bp"), Probe::node("inv")],
        ),
    ] {
        println!("=== {label} ===");
        let bank = ProbeBank::build(&bench.circuit, &universe, &bench.input, &probes, &grid)?;
        let set = bank.trajectories(&tv);
        let groups = ambiguity_groups(&set, 1e-6, &GeometryOptions::default());
        println!("ambiguity classes ({}):", groups.len());
        for g in groups.groups() {
            println!("  {{{}}}", g.join(", "));
        }

        let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
        // The decisive case: a fault on R5.
        let fault = ParametricFault::from_percent("R5", 25.0);
        let faulty = fault.apply(&bench.circuit)?;
        let sig = bank.measure(&faulty, &bench.circuit, &tv)?;
        let verdict = diagnoser.diagnose(&sig);
        println!(
            "diagnosing {fault}: top-1 = {} ({:+.1}%), runner-up = {}\n",
            verdict.best().component,
            verdict.best().deviation_pct,
            verdict.candidates()[1].component,
        );
    }

    println!(
        "R4/C2 stay merged even with every op-amp output observed: they \
         form the second integrator's time constant and only their product \
         reaches any voltage node — a genuine limit of voltage-only test."
    );
    Ok(())
}
