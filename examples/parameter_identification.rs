//! Parameter identification as a diagnosis cross-check: fit the faulty
//! unit's full response to a rational function, read off (K, ω₀, Q), and
//! invert the Tow-Thomas design equations to locate the fault.
//!
//! This is the "full information" alternative to the paper's method — it
//! needs a complete sweep (61 frequencies here) instead of two tones, and
//! it hits exactly the same structural wall: (K, ω₀, Q) has three degrees
//! of freedom, so only the five parameter *classes* are identifiable.
//!
//! ```sh
//! cargo run --release --example parameter_identification
//! ```

use fault_trajectory::circuit::fit_circuit;
use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = tow_thomas_normalized(1.0)?;
    let omegas = FrequencyGrid::log_space(0.01, 100.0, 61)
        .frequencies()
        .to_vec();

    // Golden reference descriptors.
    let golden = fit_circuit(&bench.circuit, &bench.input, &bench.probe, &omegas, 0, 2)?;
    let g = golden.second_order_descriptors().expect("second order");
    println!(
        "golden: K = {:.4}, ω₀ = {:.4}, Q = {:.4}\n",
        golden.dc_gain(),
        g.w0,
        g.q
    );

    println!(
        "{:<12} {:>8} {:>8} {:>8}   diagnosis from (ΔK, Δω₀, ΔQ)",
        "true fault", "ΔK%", "Δω₀%", "ΔQ%"
    );
    for (component, pct) in [
        ("R1", 25.0),
        ("R2", 25.0),
        ("C1", 25.0),
        ("R3", 25.0),
        ("R4", 25.0),
    ] {
        let fault = ParametricFault::from_percent(component, pct);
        let faulty = fault.apply(&bench.circuit)?;
        let tf = fit_circuit(&faulty, &bench.input, &bench.probe, &omegas, 0, 2)?;
        let so = tf.second_order_descriptors().expect("second order");

        let dk = 100.0 * (tf.dc_gain() / golden.dc_gain() - 1.0);
        let dw = 100.0 * (so.w0 / g.w0 - 1.0);
        let dq = 100.0 * (so.q / g.q - 1.0);

        // Invert the Tow-Thomas sensitivity pattern:
        //   R1: K only.           R2: Q only.
        //   C1: ω₀ down, Q up.    R3 (·R5): K up, ω₀ down, Q down.
        //   R4 (·C2): ω₀ down, Q down, K flat.
        let verdict = classify(dk, dw, dq);
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%   → {verdict}",
            format!("{fault}"),
            dk,
            dw,
            dq
        );
    }

    println!(
        "\nthe same five classes as the trajectory method — collapsing a \
         61-point sweep to three descriptors cannot beat the information \
         limit; the paper's two well-chosen tones already extract it."
    );
    Ok(())
}

/// Signature-pattern classifier on descriptor shifts (threshold 2%).
fn classify(dk: f64, dw: f64, dq: f64) -> &'static str {
    let sig = |x: f64| {
        if x > 2.0 {
            1i8
        } else if x < -2.0 {
            -1
        } else {
            0
        }
    };
    match (sig(dk), sig(dw), sig(dq)) {
        (_, 0, 0) if sig(dk) != 0 => "R1 (gain only)",
        (0, 0, _) if sig(dq) != 0 => "R2 (Q only)",
        (0, w, q) if w != 0 && q == -w => "C1 (ω₀ vs Q opposed)",
        (k, w, q) if k != 0 && w != 0 && q == w => "R3·R5 class",
        (0, w, q) if w != 0 && q == w => "R4·C2 class",
        _ => "nominal / unclassified",
    }
}
