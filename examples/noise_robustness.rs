//! How diagnosis accuracy degrades with measurement noise and component
//! tolerances — the deployment-realism study (extended table T-F).
//!
//! ```sh
//! cargo run --release --example noise_robustness
//! ```

use fault_trajectory::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = tow_thomas_normalized(1.0)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let dict = FaultDictionary::build(
        &bench.circuit,
        &universe,
        &bench.input,
        &bench.probe,
        &FrequencyGrid::log_space(0.01, 100.0, 41),
    )?;
    let atpg = select_test_vector(&dict, &AtpgConfig::paper_seeded(bench.search_band, 2005));
    let diagnoser = Diagnoser::new(atpg.trajectories.clone(), DiagnoserConfig::default());
    println!("test vector: {}\n", atpg.test_vector);

    println!(
        "{:>12} {:>12} {:>8} {:>8} {:>12}",
        "noise_dB", "tol_pct", "top1", "top2", "dev_err_pct"
    );
    for sigma in [0.0, 0.25, 0.5, 1.0, 2.0] {
        for tol in [0.0, 2.0, 5.0] {
            let config = EvalConfig {
                trials: 150,
                min_fault_pct: 10.0,
                tolerance: Tolerance::new(tol),
                noise: MeasurementNoise::new(sigma),
                seed: 17,
            };
            let report = evaluate_classifier(
                &bench.circuit,
                &universe,
                &diagnoser,
                &bench.input,
                &bench.probe,
                &config,
            )?;
            println!(
                "{:>12.2} {:>12.0} {:>7.1}% {:>7.1}% {:>12.2}",
                sigma,
                tol,
                100.0 * report.top1,
                100.0 * report.top2,
                report.mean_deviation_error_pct
            );
        }
    }
    println!(
        "\ninterpretation: small-deviation faults blur into the tolerance \
         band first; top-2 accuracy is the robust quantity, as the paper's \
         Fig. 3 (choosing between two candidate trajectories) suggests."
    );
    Ok(())
}
