//! End-to-end figure regeneration cost: how long each paper artifact
//! takes to produce from a prepared setup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_bench::{figures, paper_setup};
use ft_core::TestVector;

fn bench_figures(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);

    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig1_dictionary_curves", |b| {
        b.iter(|| figures::fig1_with(black_box(&setup), "R3"))
    });
    group.bench_function("fig2_transformation", |b| {
        b.iter(|| figures::fig2_with(black_box(&setup), &tv))
    });
    group.bench_function("fig3_trajectories", |b| {
        b.iter(|| figures::fig3_trajectories_with(black_box(&setup), &tv))
    });
    group.bench_function("fig3_diagnosis", |b| {
        b.iter(|| figures::fig3_diagnosis_with(black_box(&setup), &tv, "R2", 25.0))
    });
    group.finish();
}

fn bench_setup_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/setup");
    group.sample_size(10);
    group.bench_function("paper_setup_full", |b| b.iter(paper_setup));
    group.finish();
}

criterion_group!(benches, bench_figures, bench_setup_construction);
criterion_main!(benches);
