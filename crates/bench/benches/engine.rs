//! Stamp-split AC sweep engine vs the reference simulation path.
//!
//! Two workloads, both on the paper's Tow-Thomas biquad:
//!
//! * a single 256-point AC sweep (`engine/sweep_*`), isolating the
//!   per-frequency cost: copy+axpy+refactor-in-place vs
//!   assemble+allocate+factor;
//! * a full dictionary build over the 7-component × ±40% universe on the
//!   same 256-point grid (`engine/dictionary_build_*`), the offline-phase
//!   hot loop — the engine path replaces per-fault circuit clones and
//!   per-fault factorizations with the rank-1 batch fault sweep.
//!
//! Besides the criterion timings, the binary writes a
//! `BENCH_engine.json` summary (median wall times and the
//! dictionary-build speedup) to the current directory so CI and the
//! README can quote one number.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_circuit::{sweep_reference, tow_thomas_normalized, AcSweepEngine};
use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
use ft_numerics::FrequencyGrid;

const GRID_POINTS: usize = 256;

fn grid() -> FrequencyGrid {
    FrequencyGrid::log_space(0.01, 100.0, GRID_POINTS)
}

fn bench_single_sweep(c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let grid = grid();
    let mut engine = AcSweepEngine::new(&bench.circuit, &bench.input, &bench.probe).unwrap();
    let mut out = Vec::with_capacity(grid.len());
    c.bench_function("engine/sweep_biquad_256", |b| {
        b.iter(|| {
            engine
                .sweep_into(black_box(grid.frequencies()), &mut out)
                .unwrap();
            out.len()
        })
    });
    c.bench_function("engine/sweep_biquad_256_reference", |b| {
        b.iter(|| {
            sweep_reference(black_box(&bench.circuit), &bench.input, &bench.probe, &grid)
                .unwrap()
                .len()
        })
    });
}

fn bench_dictionary_build(c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let grid = grid();
    let mut group = c.benchmark_group("engine/dictionary_build_256");
    group.sample_size(10);
    group.bench_function("engine", |b| {
        b.iter(|| {
            FaultDictionary::build(
                black_box(&bench.circuit),
                &universe,
                &bench.input,
                &bench.probe,
                &grid,
            )
            .unwrap()
            .entries()
            .len()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            FaultDictionary::build_reference(
                black_box(&bench.circuit),
                &universe,
                &bench.input,
                &bench.probe,
                &grid,
            )
            .unwrap()
            .entries()
            .len()
        })
    });
    group.finish();
}

/// Median-of-N wall time of `f`, in seconds.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Emits `BENCH_engine.json`: the acceptance-criterion measurement
/// (dictionary build, full universe, 256-point grid, engine vs
/// reference) plus single-sweep medians. Runs as the last "benchmark" so
/// `cargo bench --bench engine` always refreshes the summary.
fn emit_summary(_c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let grid = grid();

    // Single-threaded sweep comparison.
    let mut engine = AcSweepEngine::new(&bench.circuit, &bench.input, &bench.probe).unwrap();
    let mut out = Vec::with_capacity(grid.len());
    let sweep_engine_s = median_secs(9, || {
        engine.sweep_into(grid.frequencies(), &mut out).unwrap();
    });
    let sweep_reference_s = median_secs(9, || {
        sweep_reference(&bench.circuit, &bench.input, &bench.probe, &grid).unwrap();
    });

    // Offline-phase comparison (the ≥3x acceptance criterion).
    let build_engine_s = median_secs(5, || {
        FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)
            .unwrap();
    });
    let build_reference_s = median_secs(5, || {
        FaultDictionary::build_reference(
            &bench.circuit,
            &universe,
            &bench.input,
            &bench.probe,
            &grid,
        )
        .unwrap();
    });

    let json = format!(
        "{{\n  \"circuit\": \"tow-thomas-biquad\",\n  \"grid_points\": {GRID_POINTS},\n  \
         \"faults\": {},\n  \"sweep_engine_s\": {sweep_engine_s:.6e},\n  \
         \"sweep_reference_s\": {sweep_reference_s:.6e},\n  \
         \"sweep_speedup\": {:.2},\n  \"dictionary_build_engine_s\": {build_engine_s:.6e},\n  \
         \"dictionary_build_reference_s\": {build_reference_s:.6e},\n  \
         \"dictionary_build_speedup\": {:.2}\n}}\n",
        universe.len(),
        sweep_reference_s / sweep_engine_s.max(1e-12),
        build_reference_s / build_engine_s.max(1e-12),
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!(
        "BENCH_engine.json: sweep {:.1}x, dictionary build {:.1}x (engine vs reference)",
        sweep_reference_s / sweep_engine_s.max(1e-12),
        build_reference_s / build_engine_s.max(1e-12),
    );
}

criterion_group!(
    benches,
    bench_single_sweep,
    bench_dictionary_build,
    emit_summary
);
criterion_main!(benches);
