//! GA throughput: single fitness evaluations and a down-scaled ATPG run
//! (the full §2.4 run is benchmarked once with a reduced sample count).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_bench::paper_setup;
use ft_core::{
    evaluate_fitness, select_test_vector, trajectories_from_dictionary, AtpgConfig, FitnessKind,
    GeometryOptions, TestVector,
};

fn bench_single_fitness_eval(c: &mut Criterion) {
    let setup = paper_setup();
    let opts = GeometryOptions::default();
    c.bench_function("ga/fitness_eval_one_vector", |b| {
        b.iter(|| {
            let tv = TestVector::pair(black_box(0.6), black_box(1.6));
            let set = trajectories_from_dictionary(&setup.dict, &tv);
            evaluate_fitness(&set, FitnessKind::Paper, &opts)
        })
    });
}

fn bench_small_atpg(c: &mut Criterion) {
    let setup = paper_setup();
    let mut group = c.benchmark_group("ga/atpg");
    group.sample_size(10);
    group.bench_function("pop16_gen4", |b| {
        let mut cfg = AtpgConfig::paper_seeded(setup.bench.search_band, 7);
        cfg.ga.population = 16;
        cfg.ga.generations = 4;
        b.iter(|| select_test_vector(black_box(&setup.dict), &cfg))
    });
    group.finish();
}

fn bench_paper_atpg(c: &mut Criterion) {
    let setup = paper_setup();
    let mut group = c.benchmark_group("ga/atpg_paper_full");
    group.sample_size(10);
    group.bench_function("pop128_gen15", |b| {
        let cfg = AtpgConfig::paper_seeded(setup.bench.search_band, 7);
        b.iter(|| select_test_vector(black_box(&setup.dict), &cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_fitness_eval,
    bench_small_atpg,
    bench_paper_atpg
);
criterion_main!(benches);
