//! Trajectory-geometry throughput: intersection counting is the inner
//! loop of every GA fitness evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_bench::paper_setup;
use ft_core::{
    count_intersections, min_separation, trajectories_from_dictionary, GeometryOptions, TestVector,
};

fn bench_intersection_count(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    let set = trajectories_from_dictionary(&setup.dict, &tv);
    let opts = GeometryOptions::default();
    c.bench_function("geometry/count_intersections_7x9", |b| {
        b.iter(|| count_intersections(black_box(&set), &opts))
    });
}

fn bench_min_separation(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    let set = trajectories_from_dictionary(&setup.dict, &tv);
    let opts = GeometryOptions::default();
    c.bench_function("geometry/min_separation_7x9", |b| {
        b.iter(|| min_separation(black_box(&set), &opts))
    });
}

fn bench_trajectory_build(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    c.bench_function("geometry/trajectories_from_dictionary", |b| {
        b.iter(|| trajectories_from_dictionary(black_box(&setup.dict), &tv))
    });
}

criterion_group!(
    benches,
    bench_intersection_count,
    bench_min_separation,
    bench_trajectory_build
);
criterion_main!(benches);
