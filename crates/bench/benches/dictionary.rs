//! Fault-dictionary construction throughput (the paper's FS process):
//! 56 faulty circuits × 41-point AC sweep, parallelised across threads.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_circuit::tow_thomas_normalized;
use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
use ft_numerics::FrequencyGrid;

fn bench_dictionary_build(c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let mut group = c.benchmark_group("dictionary/build");
    group.sample_size(20);
    for points in [21usize, 41, 81] {
        let grid = FrequencyGrid::log_space(0.01, 100.0, points);
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, _| {
            b.iter(|| {
                FaultDictionary::build(
                    black_box(&bench.circuit),
                    &universe,
                    &bench.input,
                    &bench.probe,
                    &grid,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dictionary_interpolation(c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let grid = FrequencyGrid::log_space(0.01, 100.0, 41);
    let dict = FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)
        .unwrap();
    c.bench_function("dictionary/sample_all_2freq", |b| {
        b.iter(|| dict.sample_all(black_box(&[0.6, 1.6])))
    });
}

criterion_group!(
    benches,
    bench_dictionary_build,
    bench_dictionary_interpolation
);
criterion_main!(benches);
