//! Diagnosis-query throughput: one observed signature against the full
//! trajectory set (paper classifier) and the nearest-neighbour baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_bench::paper_setup;
use ft_core::{
    measure_signature, trajectories_from_dictionary, Diagnoser, DiagnoserConfig, NnDictionary,
    TestVector,
};
use ft_faults::ParametricFault;

fn bench_trajectory_diagnosis(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    let set = trajectories_from_dictionary(&setup.dict, &tv);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());

    let faulty = ParametricFault::from_percent("R2", 25.0)
        .apply(&setup.bench.circuit)
        .unwrap();
    let sig = measure_signature(
        &faulty,
        &setup.bench.circuit,
        &setup.bench.input,
        &setup.bench.probe,
        &tv,
    )
    .unwrap();

    c.bench_function("diagnosis/trajectory_classifier", |b| {
        b.iter(|| diagnoser.diagnose(black_box(&sig)))
    });

    let nn = NnDictionary::build(&setup.dict, &tv);
    c.bench_function("diagnosis/nn_dictionary", |b| {
        b.iter(|| nn.classify(black_box(&sig)))
    });
}

fn bench_signature_measurement(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    let faulty = ParametricFault::from_percent("R2", 25.0)
        .apply(&setup.bench.circuit)
        .unwrap();
    c.bench_function("diagnosis/measure_signature_2freq", |b| {
        b.iter(|| {
            measure_signature(
                black_box(&faulty),
                &setup.bench.circuit,
                &setup.bench.input,
                &setup.bench.probe,
                &tv,
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_trajectory_diagnosis,
    bench_signature_measurement
);
criterion_main!(benches);
