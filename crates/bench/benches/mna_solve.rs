//! MNA solve throughput: single-frequency transfer-function evaluations
//! and transient stepping — the substrate cost under every experiment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_circuit::{
    rlc_ladder_lowpass, tow_thomas_normalized, transfer, transient, Probe, TransientOptions,
    Waveform,
};

fn bench_tow_thomas_transfer(c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    c.bench_function("mna/tow_thomas_transfer_1freq", |b| {
        b.iter(|| {
            transfer(
                black_box(&bench.circuit),
                &bench.input,
                &bench.probe,
                black_box(1.0),
            )
            .unwrap()
        })
    });
}

fn bench_ladder_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("mna/ladder_transfer_by_order");
    for order in [3usize, 5, 7, 9] {
        let bench = rlc_ladder_lowpass(order).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| {
                transfer(
                    black_box(&bench.circuit),
                    &bench.input,
                    &bench.probe,
                    black_box(1.0),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_transient_rc(c: &mut Criterion) {
    let mut ckt = ft_circuit::Circuit::new("rc");
    ckt.voltage_source_full(
        "V1",
        "in",
        "0",
        0.0,
        1.0,
        0.0,
        Some(Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            freq_hz: 100.0,
            phase_rad: 0.0,
        }),
    )
    .unwrap();
    ckt.resistor("R1", "in", "out", 1e3).unwrap();
    ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
    let options = TransientOptions::new(10e-3, 1e-5).unwrap(); // 1000 steps
    c.bench_function("mna/transient_rc_1000_steps", |b| {
        b.iter(|| transient(black_box(&ckt), &options).unwrap())
    });
    let _ = Probe::node("out");
}

criterion_group!(
    benches,
    bench_tow_thomas_transfer,
    bench_ladder_orders,
    bench_transient_rc
);
criterion_main!(benches);
