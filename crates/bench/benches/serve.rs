//! Serving-layer throughput: linear scan vs spatial index, single-query
//! vs batched, persistent worker pool vs per-batch scoped threads, plus
//! bank codec round-trip cost.
//!
//! The index's win is measured on a production-scale synthetic bank
//! (8 trajectories × 128 segments = 1024 segments — the paper CUT's
//! component count with a production-dense deviation sweep) and
//! sanity-checked on the real paper bank (56 segments), where the
//! linear scan is expected to stay competitive. The front-end comparison
//! (pool vs scoped) runs over a simulated RLC-ladder bank and also
//! writes a `BENCH_serve.json` summary so CI and the README can quote
//! one number.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_bench::paper_setup;
use ft_core::{Diagnoser, DiagnoserConfig, Signature, TestVector};
use ft_serve::{
    diagnose_batch_with, run_loadgen, synthetic_circuit_bank, synthetic_queries,
    synthetic_trajectory_set, BankStore, DiagnosisEngine, DiagnosisRequest, EngineConfig,
    LoadgenConfig, MetricsRegistry, NetConfig, NetServer, SegmentIndex, ServeHandle,
    TrajectoryBank,
};

/// Sustained-traffic workload for the front-end comparison: one batch
/// of this many requests, served repeatedly.
const FRONTEND_BATCH: usize = 256;

/// Builds the front-end workload: a simulated order-3 ladder bank
/// (5 trajectories × 320 segments), a scoped-thread engine, a pooled
/// handle over the same bank, and the request batch.
fn frontend_setup(
    workers: usize,
) -> (
    DiagnosisEngine,
    ServeHandle,
    Vec<Signature>,
    Vec<DiagnosisRequest>,
) {
    let tv = TestVector::pair(0.5, 2.0);
    let bank = synthetic_circuit_bank(3, 0.25, 21, &tv).expect("ladder bank simulates");
    let queries = synthetic_queries(bank.trajectory_set(), FRONTEND_BATCH, 13);
    let requests: Vec<DiagnosisRequest> = queries
        .iter()
        .map(|q| DiagnosisRequest::new("ladder", q.clone()))
        .collect();
    let config = EngineConfig {
        diagnoser: DiagnoserConfig::default(),
        workers: Some(workers),
        topk: None,
    };
    let engine = DiagnosisEngine::new(bank.clone(), config);
    let store = Arc::new(BankStore::in_memory(config));
    store.insert_bank("ladder", bank).expect("valid cut id");
    let handle = ServeHandle::new(store, workers);
    (engine, handle, queries, requests)
}

fn bench_pool_vs_scoped(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    let (engine, mut handle, queries, requests) = frontend_setup(workers);

    // The two paths must agree before any timing is worth reporting.
    let scoped = engine.diagnose_batch(&queries);
    handle.submit(requests.clone());
    let pooled: Vec<_> = handle
        .drain()
        .remove(0)
        .into_iter()
        .map(|r| r.expect("request serves"))
        .collect();
    assert_eq!(scoped, pooled, "pool must be byte-identical to scoped");

    let mut group = c.benchmark_group("serve/frontend_256");
    group.bench_function("scoped_threads", |b| {
        b.iter(|| engine.diagnose_batch(black_box(&queries)).len())
    });
    group.bench_function("persistent_pool", |b| {
        b.iter(|| {
            handle.submit(black_box(&requests).clone());
            handle.drain_one().expect("batch completes").len()
        })
    });
    group.finish();
}

/// Median-of-N wall time of `f`, in seconds.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Emits `BENCH_serve.json`: sustained-traffic batch throughput of the
/// persistent worker pool vs per-batch scoped-thread spin-up on the
/// same bank, same worker count, same requests — plus the cold-load
/// comparison of the zero-copy mmap path against the full heap decode
/// on a multi-MB dictionary-heavy bank (the mapped engine decodes only
/// the trajectory section; the dictionary stays as cold mapped bytes).
fn emit_summary(_c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    let (engine, mut handle, queries, requests) = frontend_setup(workers);
    let segments = engine.trajectory_set().total_segments();

    let scoped_s = median_secs(15, || {
        engine.diagnose_batch(&queries);
    });
    let pooled_s = median_secs(15, || {
        handle.submit(requests.clone());
        handle.drain_one().expect("batch completes");
    });

    // The same pool with live metrics attached: the observability
    // acceptance bound says this must sit within noise of `pooled_s`.
    let registry = Arc::new(MetricsRegistry::new());
    let bank = engine.bank().expect("heap-built engine has a bank").clone();
    let config = EngineConfig {
        diagnoser: DiagnoserConfig::default(),
        workers: Some(workers),
        topk: None,
    };
    let store = Arc::new(BankStore::in_memory(config).with_metrics(&registry));
    store.insert_bank("ladder", bank).expect("valid cut id");
    let mut instrumented = ServeHandle::with_metrics(store, workers, &registry);
    let instrumented_s = median_secs(15, || {
        instrumented.submit(requests.clone());
        instrumented.drain_one().expect("batch completes");
    });

    // Cold load: a dense dictionary (161 grid points × 320 deviations
    // per branch) makes the bank file multi-MB and dictionary-dominated,
    // the shape where out-of-core serving matters.
    let tv = TestVector::pair(0.5, 2.0);
    let big = synthetic_circuit_bank(3, 0.25, 161, &tv).expect("dictionary-heavy bank simulates");
    let path = std::env::temp_dir().join("bench_serve_cold_load.ftb");
    big.save(&path).expect("saves cold-load bank");
    let bank_bytes = std::fs::metadata(&path).expect("stat").len();
    let config = EngineConfig::default();
    let heap_s = median_secs(9, || {
        DiagnosisEngine::load(&path, config).expect("heap load");
    });
    let mapped_s = median_secs(9, || {
        DiagnosisEngine::load_mapped(&path, config).expect("mapped load");
    });
    // Bare v3 open: structural parse only — no trajectory decode, no
    // checksum, no index build. This is the O(header) piece the aligned
    // format buys; the engine load above adds the (deliberate)
    // verification pass and index build on top.
    let open_s = median_secs(9, || {
        ft_serve::MappedBank::open(&path).expect("v3 open");
    });
    std::fs::remove_file(&path).ok();

    // TCP tier: an in-process `NetServer` over the same ladder bank,
    // driven by the pipelined load generator at two connection counts
    // (the acceptance criterion asks for measured throughput and
    // latency percentiles at ≥2 configurations).
    let net_registry = Arc::new(MetricsRegistry::new());
    let bank = engine.bank().expect("heap-built engine has a bank").clone();
    let net_store = Arc::new(
        BankStore::in_memory(EngineConfig {
            diagnoser: DiagnoserConfig::default(),
            workers: Some(workers),
            topk: None,
        })
        .with_metrics(&net_registry),
    );
    net_store.insert_bank("ladder", bank).expect("valid cut id");
    let server = NetServer::bind(
        "127.0.0.1:0",
        net_store,
        &net_registry,
        NetConfig {
            workers,
            refresh_interval: Duration::ZERO,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound addr").to_string();
    let net_shutdown = server.shutdown_handle();
    let net_join = std::thread::spawn(move || server.run().expect("event loop"));
    const TCP_TOTAL: usize = 20_000;
    let tcp = |connections: usize| {
        run_loadgen(
            &addr,
            &requests,
            &LoadgenConfig {
                connections,
                depth: 32,
                total: TCP_TOTAL,
                capture: false,
            },
        )
        .expect("loadgen run")
    };
    let tcp2 = tcp(2);
    let tcp8 = tcp(8);
    net_shutdown.shutdown();
    net_join.join().expect("server thread");

    let json = format!(
        "{{\n  \"bank\": \"rlc-ladder-order-3\",\n  \"segments\": {segments},\n  \
         \"batch\": {FRONTEND_BATCH},\n  \"workers\": {workers},\n  \
         \"scoped_batch_s\": {scoped_s:.6e},\n  \"pooled_batch_s\": {pooled_s:.6e},\n  \
         \"pooled_vs_scoped\": {:.2},\n  \
         \"instrumented_batch_s\": {instrumented_s:.6e},\n  \
         \"instrumented_vs_pooled\": {:.3},\n  \
         \"cold_load_bank_bytes\": {bank_bytes},\n  \
         \"heap_cold_load_s\": {heap_s:.6e},\n  \"mapped_cold_load_s\": {mapped_s:.6e},\n  \
         \"mapped_vs_heap_cold_load\": {:.3},\n  \
         \"v3_open_s\": {open_s:.6e},\n  \
         \"v3_open_vs_heap_cold_load\": {:.5},\n  \
         \"tcp_requests_per_config\": {TCP_TOTAL},\n  \"tcp_depth\": 32,\n  \
         \"tcp_2conn_rps\": {:.0},\n  \"tcp_2conn_p50_us\": {},\n  \
         \"tcp_2conn_p90_us\": {},\n  \"tcp_2conn_p99_us\": {},\n  \
         \"tcp_8conn_rps\": {:.0},\n  \"tcp_8conn_p50_us\": {},\n  \
         \"tcp_8conn_p90_us\": {},\n  \"tcp_8conn_p99_us\": {}\n}}\n",
        scoped_s / pooled_s.max(1e-12),
        instrumented_s / pooled_s.max(1e-12),
        mapped_s / heap_s.max(1e-12),
        open_s / heap_s.max(1e-12),
        tcp2.rps,
        tcp2.p50_us,
        tcp2.p90_us,
        tcp2.p99_us,
        tcp8.rps,
        tcp8.p50_us,
        tcp8.p90_us,
        tcp8.p99_us,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "BENCH_serve.json: persistent pool {:.1}x vs scoped threads \
         ({FRONTEND_BATCH}-request batches, {workers} workers, {segments} segments); \
         metrics overhead {:.3}x; \
         mmap cold load {:.2}x heap decode on a {:.1} MB bank \
         (bare v3 open {:.5}x: O(header), no trajectory decode); \
         TCP tier {:.0} req/s at 2 conns (p50 {:.0}us p99 {:.0}us), \
         {:.0} req/s at 8 conns (p50 {:.0}us p99 {:.0}us), depth 32",
        scoped_s / pooled_s.max(1e-12),
        instrumented_s / pooled_s.max(1e-12),
        mapped_s / heap_s.max(1e-12),
        bank_bytes as f64 / (1024.0 * 1024.0),
        open_s / heap_s.max(1e-12),
        tcp2.rps,
        tcp2.p50_us,
        tcp2.p99_us,
        tcp8.rps,
        tcp8.p50_us,
        tcp8.p99_us,
    );
}

fn bench_scan_vs_index_1k(c: &mut Criterion) {
    let set = synthetic_trajectory_set(8, 64, 2, 7);
    assert!(set.total_segments() >= 1000);
    let index = SegmentIndex::build(&set);
    let queries = synthetic_queries(&set, 64, 8);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());

    let mut group = c.benchmark_group("serve");
    group.bench_function("linear_scan_1k_segments", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose(black_box(&queries[i]))
        })
    });
    group.bench_function("indexed_1k_segments", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose_with(&index, black_box(&queries[i]))
        })
    });
    group.bench_function("batch64_linear_1k_segments", |b| {
        b.iter(|| diagnose_batch_with(&diagnoser, &ft_core::LinearScan, black_box(&queries), None))
    });
    group.bench_function("batch64_indexed_1k_segments", |b| {
        b.iter(|| diagnose_batch_with(&diagnoser, &index, black_box(&queries), None))
    });
    group.finish();
}

fn bench_paper_bank(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    let bank = TrajectoryBank::build(setup.dict, &tv);
    let index = SegmentIndex::build(bank.trajectory_set());
    let queries = synthetic_queries(bank.trajectory_set(), 16, 11);
    let diagnoser = Diagnoser::new(bank.trajectory_set().clone(), DiagnoserConfig::default());

    let mut group = c.benchmark_group("serve");
    group.bench_function("linear_scan_paper_bank", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose(black_box(&queries[i]))
        })
    });
    group.bench_function("indexed_paper_bank", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose_with(&index, black_box(&queries[i]))
        })
    });
    group.bench_function("bank_encode_paper", |b| {
        b.iter(|| black_box(&bank).to_bytes())
    });
    let bytes = bank.to_bytes();
    group.bench_function("bank_decode_paper", |b| {
        b.iter(|| TrajectoryBank::from_bytes(black_box(&bytes)).expect("valid bank"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scan_vs_index_1k,
    bench_paper_bank,
    bench_pool_vs_scoped,
    emit_summary
);
criterion_main!(benches);
