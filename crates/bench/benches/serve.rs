//! Serving-layer throughput: linear scan vs spatial index, single-query
//! vs batched, plus bank codec round-trip cost.
//!
//! The index's win is measured on a production-scale synthetic bank
//! (8 trajectories × 128 segments = 1024 segments — the paper CUT's
//! component count with a production-dense deviation sweep) and
//! sanity-checked on the real paper bank (56 segments), where the
//! linear scan is expected to stay competitive.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_bench::paper_setup;
use ft_core::{Diagnoser, DiagnoserConfig, TestVector};
use ft_serve::{
    diagnose_batch_with, synthetic_queries, synthetic_trajectory_set, SegmentIndex, TrajectoryBank,
};

fn bench_scan_vs_index_1k(c: &mut Criterion) {
    let set = synthetic_trajectory_set(8, 64, 2, 7);
    assert!(set.total_segments() >= 1000);
    let index = SegmentIndex::build(&set);
    let queries = synthetic_queries(&set, 64, 8);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());

    let mut group = c.benchmark_group("serve");
    group.bench_function("linear_scan_1k_segments", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose(black_box(&queries[i]))
        })
    });
    group.bench_function("indexed_1k_segments", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose_with(&index, black_box(&queries[i]))
        })
    });
    group.bench_function("batch64_linear_1k_segments", |b| {
        b.iter(|| diagnose_batch_with(&diagnoser, &ft_core::LinearScan, black_box(&queries), None))
    });
    group.bench_function("batch64_indexed_1k_segments", |b| {
        b.iter(|| diagnose_batch_with(&diagnoser, &index, black_box(&queries), None))
    });
    group.finish();
}

fn bench_paper_bank(c: &mut Criterion) {
    let setup = paper_setup();
    let tv = TestVector::pair(0.6, 1.6);
    let bank = TrajectoryBank::build(setup.dict, &tv);
    let index = SegmentIndex::build(bank.trajectory_set());
    let queries = synthetic_queries(bank.trajectory_set(), 16, 11);
    let diagnoser = Diagnoser::new(bank.trajectory_set().clone(), DiagnoserConfig::default());

    let mut group = c.benchmark_group("serve");
    group.bench_function("linear_scan_paper_bank", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose(black_box(&queries[i]))
        })
    });
    group.bench_function("indexed_paper_bank", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            diagnoser.diagnose_with(&index, black_box(&queries[i]))
        })
    });
    group.bench_function("bank_encode_paper", |b| {
        b.iter(|| black_box(&bank).to_bytes())
    });
    let bytes = bank.to_bytes();
    group.bench_function("bank_decode_paper", |b| {
        b.iter(|| TrajectoryBank::from_bytes(black_box(&bytes)).expect("valid bank"))
    });
    group.finish();
}

criterion_group!(benches, bench_scan_vs_index_1k, bench_paper_bank);
criterion_main!(benches);
