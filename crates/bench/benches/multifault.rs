//! Woodbury rank-k multi-fault sweep vs the clone-and-reassemble path.
//!
//! Workload: the exhaustive pair-fault universe of the paper's
//! Tow-Thomas biquad (21 component pairs × 8² deviation combinations =
//! 1344 double faults) priced on a 64-point grid. The engine path
//! (`MultiFaultDictionary::build`) factors the nominal system once per
//! grid point, spends one solve per distinct component, and one 2×2
//! dense solve per pair; the reference path (`build_reference`) clones
//! the circuit and re-assembles + re-factors per pair per frequency.
//!
//! Besides the criterion timings, the binary writes a
//! `BENCH_multifault.json` summary (median wall times and the
//! pair-dictionary speedup) so CI and the README can quote one number.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft_circuit::tow_thomas_normalized;
use ft_faults::{all_pairs, DeviationGrid, FaultUniverse, MultiFaultDictionary};
use ft_numerics::FrequencyGrid;

const GRID_POINTS: usize = 64;

fn grid() -> FrequencyGrid {
    FrequencyGrid::log_space(0.01, 100.0, GRID_POINTS)
}

fn bench_pair_dictionary(c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let pairs = all_pairs(&universe);
    let grid = grid();
    let mut group = c.benchmark_group("multifault/pair_dictionary_64");
    group.sample_size(10);
    group.bench_function("engine", |b| {
        b.iter(|| {
            MultiFaultDictionary::build(
                black_box(&bench.circuit),
                &pairs,
                &bench.input,
                &bench.probe,
                &grid,
            )
            .unwrap()
            .len()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            MultiFaultDictionary::build_reference(
                black_box(&bench.circuit),
                &pairs,
                &bench.input,
                &bench.probe,
                &grid,
            )
            .unwrap()
            .len()
        })
    });
    group.finish();
}

/// Median-of-N wall time of `f`, in seconds.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Emits `BENCH_multifault.json`: the acceptance-criterion measurement
/// (pair-fault dictionary on the biquad, engine vs clone-and-reassemble)
/// with single-worker engine numbers so the comparison is core-for-core.
fn emit_summary(_c: &mut Criterion) {
    let bench = tow_thomas_normalized(1.0).unwrap();
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let pairs = all_pairs(&universe);
    let grid = grid();

    let build_engine_s = median_secs(5, || {
        MultiFaultDictionary::build_with_workers(
            &bench.circuit,
            &pairs,
            &bench.input,
            &bench.probe,
            &grid,
            1,
        )
        .unwrap();
    });
    let build_reference_s = median_secs(3, || {
        MultiFaultDictionary::build_reference(
            &bench.circuit,
            &pairs,
            &bench.input,
            &bench.probe,
            &grid,
        )
        .unwrap();
    });

    let json = format!(
        "{{\n  \"circuit\": \"tow-thomas-biquad\",\n  \"grid_points\": {GRID_POINTS},\n  \
         \"pair_faults\": {},\n  \"pair_dictionary_engine_s\": {build_engine_s:.6e},\n  \
         \"pair_dictionary_reference_s\": {build_reference_s:.6e},\n  \
         \"pair_dictionary_speedup\": {:.2}\n}}\n",
        pairs.len(),
        build_reference_s / build_engine_s.max(1e-12),
    );
    std::fs::write("BENCH_multifault.json", &json).expect("write BENCH_multifault.json");
    println!(
        "BENCH_multifault.json: pair dictionary {:.1}x (engine vs clone-and-reassemble, \
         single-core, {} pairs)",
        build_reference_s / build_engine_s.max(1e-12),
        pairs.len(),
    );
}

criterion_group!(benches, bench_pair_dictionary, emit_summary);
criterion_main!(benches);
