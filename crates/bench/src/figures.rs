//! Regeneration of the paper's figures (Figs. 1–3 and the §2.4 GA run).
//!
//! Each function returns the printable artifact; the `repro` binary
//! writes it to stdout. Axes and series mirror the paper: magnitude
//! responses in dB over a log-frequency grid (Fig. 1), the sampling
//! transformation into XY coordinate data (Fig. 2), the R3 fault
//! trajectory with a diagnosis example (Fig. 3), and the GA fitness
//! history (§2.4).

use ft_core::{
    measure_signature, sample_response_db, trajectories_from_dictionary, Diagnoser,
    DiagnoserConfig, TestVector,
};
use ft_faults::ParametricFault;

use crate::report::{num, Table};
use crate::setup::{ga_paper_result, paper_setup, PaperSetup};

/// Figure 1: golden behaviour and the fault-dictionary items of one
/// component (default: R3, the component the paper plots).
///
/// Output: one row per grid frequency; columns: golden plus each
/// deviation of `component`.
pub fn fig1(component: &str) -> Table {
    let setup = paper_setup();
    fig1_with(&setup, component)
}

/// [`fig1`] with a shared setup (avoids rebuilding the dictionary).
pub fn fig1_with(setup: &PaperSetup, component: &str) -> Table {
    let entries = setup.dict.entries_of(component);
    let mut headers: Vec<String> = vec!["omega_rad_s".into(), "golden_dB".into()];
    for e in &entries {
        headers.push(format!("{}_dB", e.fault()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Figure 1 — golden behaviour & fault dictionary items ({component})"),
        &header_refs,
    );
    for (j, &w) in setup.dict.grid().frequencies().iter().enumerate() {
        let mut row = vec![format!("{w:.5e}"), num(setup.dict.golden_db()[j], 3)];
        for e in &entries {
            row.push(num(e.magnitude_db()[j], 3));
        }
        table.push_row(row);
    }
    table
}

/// Figure 2: the transformation of two curves (golden `H`, faulty `K`)
/// sampled at `f1`, `f2` into XY coordinate points.
///
/// The faulty curve is R3 at +30% (a dictionary item). The test vector is
/// the §2.4 GA result so the figure reflects the deployed frequencies.
pub fn fig2() -> Table {
    let setup = paper_setup();
    let tv = ga_paper_result(&setup).test_vector;
    fig2_with(&setup, &tv)
}

/// [`fig2`] with explicit setup and test vector.
///
/// # Panics
///
/// Panics if the CUT cannot be simulated (never for the stock setup).
pub fn fig2_with(setup: &PaperSetup, tv: &TestVector) -> Table {
    let fault = ParametricFault::from_percent("R3", 30.0);
    let faulty = fault.apply(&setup.bench.circuit).expect("R3 exists");

    let h = sample_response_db(
        &setup.bench.circuit,
        &setup.bench.input,
        &setup.bench.probe,
        tv,
    )
    .expect("golden samples");
    let k = sample_response_db(&faulty, &setup.bench.input, &setup.bench.probe, tv)
        .expect("faulty samples");

    let mut table = Table::new(
        "Figure 2 — sampling transformation into coordinate data",
        &[
            "curve",
            "f1_rad_s",
            "f2_rad_s",
            "X_dB",
            "Y_dB",
            "X-origin_dB",
            "Y-origin_dB",
        ],
    );
    let (f1, f2) = (tv.omegas()[0], tv.omegas()[1]);
    table.push_row(vec![
        "H (golden)".into(),
        num(f1, 4),
        num(f2, 4),
        num(h[0], 3),
        num(h[1], 3),
        num(0.0, 3),
        num(0.0, 3),
    ]);
    table.push_row(vec![
        format!("K ({fault})"),
        num(f1, 4),
        num(f2, 4),
        num(k[0], 3),
        num(k[1], 3),
        num(k[0] - h[0], 3),
        num(k[1] - h[1], 3),
    ]);
    table
}

/// Figure 3 (left): every component's fault trajectory at the GA test
/// vector, as (component, deviation, X, Y) rows.
pub fn fig3_trajectories() -> Table {
    let setup = paper_setup();
    let tv = ga_paper_result(&setup).test_vector;
    fig3_trajectories_with(&setup, &tv)
}

/// [`fig3_trajectories`] with explicit setup and test vector.
pub fn fig3_trajectories_with(setup: &PaperSetup, tv: &TestVector) -> Table {
    let set = trajectories_from_dictionary(&setup.dict, tv);
    let mut table = Table::new(
        format!("Figure 3 (left) — fault trajectories at {tv}"),
        &["component", "deviation_pct", "X_dB", "Y_dB"],
    );
    for t in set.trajectories() {
        for (dev, point) in t.deviations_pct().iter().zip(t.points()) {
            table.push_row(vec![
                t.component().to_string(),
                num(*dev, 0),
                num(point.coords()[0], 4),
                num(point.coords()[1], 4),
            ]);
        }
    }
    table
}

/// Figure 3 (right): diagnosis of an unknown fault (R3 +25%, off the
/// dictionary grid) by perpendicular distance to the trajectories.
pub fn fig3_diagnosis() -> Table {
    let setup = paper_setup();
    let tv = ga_paper_result(&setup).test_vector;
    fig3_diagnosis_with(&setup, &tv, "R3", 25.0)
}

/// [`fig3_diagnosis`] with explicit unknown fault.
///
/// # Panics
///
/// Panics if `component` is not in the CUT.
pub fn fig3_diagnosis_with(
    setup: &PaperSetup,
    tv: &TestVector,
    component: &str,
    deviation_pct: f64,
) -> Table {
    let fault = ParametricFault::from_percent(component, deviation_pct);
    let faulty = fault.apply(&setup.bench.circuit).expect("fault applies");
    let observed = measure_signature(
        &faulty,
        &setup.bench.circuit,
        &setup.bench.input,
        &setup.bench.probe,
        tv,
    )
    .expect("measurement");

    let set = trajectories_from_dictionary(&setup.dict, tv);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
    let verdict = diagnoser.diagnose(&observed);

    let mut table = Table::new(
        format!(
            "Figure 3 (right) — diagnosis of unknown fault {fault}: observed point ({}, {}) dB",
            num(observed.coords()[0], 4),
            num(observed.coords()[1], 4),
        ),
        &[
            "rank",
            "component",
            "perp_distance_dB",
            "estimated_deviation_pct",
            "in_ambiguity_set",
        ],
    );
    let ambiguity: Vec<&str> = verdict.ambiguity_set();
    for (rank, c) in verdict.candidates().iter().enumerate() {
        table.push_row(vec![
            format!("{}", rank + 1),
            c.component.clone(),
            num(c.distance, 4),
            num(c.deviation_pct, 1),
            if ambiguity.contains(&c.component.as_str()) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table
}

/// Section 2.4: the GA run itself — per-generation fitness statistics and
/// the selected test vector.
pub fn ga24() -> (Table, Table) {
    let setup = paper_setup();
    ga24_with(&setup)
}

/// [`ga24`] with a shared setup.
pub fn ga24_with(setup: &PaperSetup) -> (Table, Table) {
    let result = ga_paper_result(setup);

    let mut history = Table::new(
        "Section 2.4 — GA fitness history (128 ind., 15 gen., 50% repr., 40% mut., roulette)",
        &["generation", "best", "mean", "worst"],
    );
    for s in &result.history {
        history.push_row(vec![
            format!("{}", s.generation),
            num(s.best, 6),
            num(s.mean, 6),
            num(s.worst, 6),
        ]);
    }

    let mut summary = Table::new(
        "Section 2.4 — selected test vector",
        &[
            "f1_rad_s",
            "f2_rad_s",
            "intersections_I",
            "fitness_1/(1+I)",
            "evaluations",
        ],
    );
    summary.push_row(vec![
        num(result.test_vector.omegas()[0], 4),
        num(result.test_vector.omegas()[1], 4),
        format!("{}", result.intersections),
        num(result.fitness, 6),
        format!("{}", result.evaluations),
    ]);
    (history, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::DICT_GRID_POINTS;

    #[test]
    fn fig1_shape() {
        let setup = paper_setup();
        let t = fig1_with(&setup, "R3");
        assert_eq!(t.len(), DICT_GRID_POINTS);
        let text = t.to_text();
        assert!(text.contains("R3+40%"));
        assert!(text.contains("golden_dB"));
    }

    #[test]
    fn fig2_has_golden_and_faulty_rows() {
        let setup = paper_setup();
        let tv = TestVector::pair(0.6, 1.6);
        let t = fig2_with(&setup, &tv);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("H (golden)"));
        assert!(text.contains("K (R3+30%)"));
        // Golden origin-shifted coordinates are zero.
        assert!(text.contains("0.000"));
    }

    #[test]
    fn fig3_trajectory_rows() {
        let setup = paper_setup();
        let tv = TestVector::pair(0.6, 1.6);
        let t = fig3_trajectories_with(&setup, &tv);
        // 7 components × 9 points.
        assert_eq!(t.len(), 63);
    }

    #[test]
    fn fig3_diagnosis_ranks_all_components() {
        let setup = paper_setup();
        let tv = TestVector::pair(0.6, 1.6);
        let t = fig3_diagnosis_with(&setup, &tv, "R2", 25.0);
        assert_eq!(t.len(), 7);
        // R2 is a singleton class: it must be rank 1.
        let text = t.to_text();
        let first_row = text.lines().nth(3).unwrap();
        assert!(first_row.contains("R2"), "{first_row}");
    }

    #[test]
    fn ga24_tables() {
        let setup = paper_setup();
        let (history, summary) = ga24_with(&setup);
        assert_eq!(history.len(), 16);
        assert_eq!(summary.len(), 1);
    }
}
