//! Regenerates every figure and table of the DATE 2005 fault-trajectory
//! paper (plus the extended tables of DESIGN.md).
//!
//! ```text
//! repro <experiment> [--csv]
//!
//! experiments:
//!   fig1             Figure 1 — golden + fault dictionary curves (R3)
//!   fig2             Figure 2 — sampling transformation to XY points
//!   fig3             Figure 3 — trajectories + diagnosis example
//!   ga               Section 2.4 GA run (128×15, roulette, 1/(1+I))
//!   table-accuracy   T-A GA vs baseline selectors
//!   table-nfreq      T-B number of test frequencies
//!   table-circuits   T-C across the circuit library
//!   table-fitness    T-D fitness formulation ablation
//!   table-step       T-E dictionary grid ablation
//!   table-noise      T-F noise & tolerance robustness
//!   table-methods    T-G trajectory vs nearest-neighbour diagnosis
//!   table-multiprobe T-H multi-probe observation extension
//!   table-encoding   T-I GA genome encoding ablation
//!   table-double     T-J double faults vs single-fault model
//!   all              everything above, in order
//! ```

use std::process::ExitCode;

use ft_bench::{figures, paper_setup, tables, Table};

fn print_table(table: &Table, csv: bool) {
    if csv {
        println!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

fn run(experiment: &str, csv: bool) -> Result<(), String> {
    match experiment {
        "fig1" => {
            let setup = paper_setup();
            print_table(&figures::fig1_with(&setup, "R3"), csv);
        }
        "fig2" => print_table(&figures::fig2(), csv),
        "fig3" => {
            print_table(&figures::fig3_trajectories(), csv);
            print_table(&figures::fig3_diagnosis(), csv);
        }
        "ga" => {
            let (history, summary) = figures::ga24();
            print_table(&history, csv);
            print_table(&summary, csv);
        }
        "table-accuracy" => print_table(&tables::table_accuracy(), csv),
        "table-nfreq" => print_table(&tables::table_nfreq(), csv),
        "table-circuits" => print_table(&tables::table_circuits(), csv),
        "table-fitness" => print_table(&tables::table_fitness(), csv),
        "table-step" => print_table(&tables::table_step(), csv),
        "table-noise" => print_table(&tables::table_noise(), csv),
        "table-methods" => print_table(&tables::table_diagnosis_methods(), csv),
        "table-multiprobe" => print_table(&tables::table_multiprobe(), csv),
        "table-encoding" => print_table(&tables::table_encoding(), csv),
        "table-double" => print_table(&tables::table_double_faults(), csv),
        "all" => {
            for name in [
                "fig1",
                "fig2",
                "fig3",
                "ga",
                "table-accuracy",
                "table-nfreq",
                "table-circuits",
                "table-fitness",
                "table-step",
                "table-noise",
                "table-methods",
                "table-multiprobe",
                "table-encoding",
                "table-double",
            ] {
                eprintln!("=== {name} ===");
                run(name, csv)?;
            }
        }
        other => {
            return Err(format!(
                "unknown experiment `{other}` (run with no arguments for usage)"
            ));
        }
    }
    Ok(())
}

const USAGE: &str = "usage: repro <experiment> [--csv]\n\
     experiments: fig1 fig2 fig3 ga table-accuracy table-nfreq \
     table-circuits table-fitness table-step table-noise table-methods \
     table-multiprobe table-encoding table-double all";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let csv = args.iter().any(|a| a == "--csv");
    let experiments: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if experiments.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    for experiment in experiments {
        if let Err(msg) = run(experiment, csv) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
