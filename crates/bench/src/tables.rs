//! Extended experiment tables (T-A … T-G of DESIGN.md).
//!
//! The paper's evaluation is qualitative (figures); these tables quantify
//! its claims: GA versus baseline selectors, number of test frequencies,
//! behaviour across circuits, fitness-formulation ablation, dictionary
//! resolution, noise robustness, and trajectory versus nearest-neighbour
//! diagnosis.

use ft_circuit::all_benchmarks;
use ft_core::{
    ambiguity_groups, evaluate_classifier, grid_search, random_search, select_test_vector,
    sensitivity_heuristic, trajectories_from_dictionary, AccuracyReport, AmbiguityGroups,
    AtpgConfig, ConfusionMatrix, Diagnoser, DiagnoserConfig, EvalConfig, FitnessKind,
    GeometryOptions, NnDictionary, SignatureClassifier, TestVector,
};
use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse, MeasurementNoise, Tolerance};
use ft_numerics::FrequencyGrid;

use crate::report::{num, pct, Table};
use crate::setup::{ga_paper_result, paper_setup, PaperSetup, DICT_GRID_POINTS, PAPER_SEED};

/// Monte Carlo trials used by the accuracy tables.
pub const TRIALS: usize = 200;

/// Accuracy of predictions counted at ambiguity-class granularity: a
/// prediction is correct when it lands in the true component's group.
pub fn class_accuracy(confusion: &ConfusionMatrix, groups: &AmbiguityGroups) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for t in confusion.components() {
        let Some(group) = groups.group_of(t) else {
            continue;
        };
        for p in confusion.components() {
            let count = confusion.count(t, p);
            total += count;
            if group.iter().any(|g| g == p) {
                correct += count;
            }
        }
    }
    if total == 0 {
        f64::NAN
    } else {
        correct as f64 / total as f64
    }
}

/// Structural ambiguity classes of a trajectory set: groups whose
/// pairwise separation is numerically zero (coincident pathways).
pub fn structural_classes(dict: &FaultDictionary, tv: &TestVector) -> AmbiguityGroups {
    let set = trajectories_from_dictionary(dict, tv);
    ambiguity_groups(&set, 1e-6, &GeometryOptions::default())
}

fn evaluate_tv(
    setup: &PaperSetup,
    tv: &TestVector,
    config: &EvalConfig,
) -> (AccuracyReport, AmbiguityGroups) {
    let set = trajectories_from_dictionary(&setup.dict, tv);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
    let report = evaluate_classifier(
        &setup.bench.circuit,
        &setup.universe,
        &diagnoser,
        &setup.bench.input,
        &setup.bench.probe,
        config,
    )
    .expect("evaluation runs");
    let classes = structural_classes(&setup.dict, tv);
    (report, classes)
}

fn accuracy_row(
    method: &str,
    tv: &TestVector,
    intersections: usize,
    fitness: f64,
    evaluations: usize,
    report: &AccuracyReport,
    classes: &AmbiguityGroups,
) -> Vec<String> {
    vec![
        method.to_string(),
        num(tv.omegas()[0], 4),
        num(tv.omegas().get(1).copied().unwrap_or(f64::NAN), 4),
        format!("{intersections}"),
        num(fitness, 4),
        format!("{evaluations}"),
        pct(report.top1),
        pct(report.top2),
        pct(class_accuracy(&report.confusion, classes)),
        num(report.mean_deviation_error_pct, 1),
    ]
}

/// T-A: GA versus baseline test-vector selectors, clean conditions.
pub fn table_accuracy() -> Table {
    let setup = paper_setup();
    let eval = EvalConfig::clean(TRIALS, PAPER_SEED);
    let geo = GeometryOptions::default();
    let band = setup.bench.search_band;

    let mut table = Table::new(
        "T-A — test-vector selectors on the Tow-Thomas CUT (clean measurements)",
        &[
            "method",
            "f1_rad_s",
            "f2_rad_s",
            "I",
            "fitness",
            "evals",
            "top1",
            "top2",
            "class_acc",
            "dev_err_pct",
        ],
    );

    let ga = ga_paper_result(&setup);
    let (report, classes) = evaluate_tv(&setup, &ga.test_vector, &eval);
    table.push_row(accuracy_row(
        "GA (paper 2.4)",
        &ga.test_vector,
        ga.intersections,
        ga.fitness,
        ga.evaluations,
        &report,
        &classes,
    ));

    let random = random_search(
        &setup.dict,
        2,
        band,
        ga.evaluations,
        FitnessKind::Paper,
        &geo,
        PAPER_SEED,
    );
    let (report, classes) = evaluate_tv(&setup, &random.test_vector, &eval);
    table.push_row(accuracy_row(
        "random (same budget)",
        &random.test_vector,
        random.intersections,
        random.fitness,
        random.evaluations,
        &report,
        &classes,
    ));

    let grid = grid_search(&setup.dict, 2, band, 20, FitnessKind::Paper, &geo);
    let (report, classes) = evaluate_tv(&setup, &grid.test_vector, &eval);
    table.push_row(accuracy_row(
        "grid 20pt exhaustive",
        &grid.test_vector,
        grid.intersections,
        grid.fitness,
        grid.evaluations,
        &report,
        &classes,
    ));

    let sens = sensitivity_heuristic(&setup.dict, 2, band, 20, &geo);
    let (report, classes) = evaluate_tv(&setup, &sens.test_vector, &eval);
    table.push_row(accuracy_row(
        "sensitivity heuristic",
        &sens.test_vector,
        sens.intersections,
        sens.fitness,
        sens.evaluations,
        &report,
        &classes,
    ));

    table
}

/// T-B: accuracy versus the number of test frequencies.
pub fn table_nfreq() -> Table {
    let setup = paper_setup();
    let eval = EvalConfig::clean(TRIALS, PAPER_SEED);
    let mut table = Table::new(
        "T-B — number of test frequencies",
        &[
            "n_freqs",
            "I",
            "fitness",
            "classes",
            "top1",
            "top2",
            "class_acc",
            "dev_err_pct",
        ],
    );
    for n in 1..=4 {
        let mut cfg = AtpgConfig::paper_seeded(setup.bench.search_band, PAPER_SEED + n as u64);
        cfg.n_frequencies = n;
        let result = select_test_vector(&setup.dict, &cfg);
        let (report, classes) = evaluate_tv(&setup, &result.test_vector, &eval);
        table.push_row(vec![
            format!("{n}"),
            format!("{}", result.intersections),
            num(result.fitness, 4),
            format!("{}", classes.len()),
            pct(report.top1),
            pct(report.top2),
            pct(class_accuracy(&report.confusion, &classes)),
            num(report.mean_deviation_error_pct, 1),
        ]);
    }
    table
}

/// T-C: the method across the benchmark circuit library.
pub fn table_circuits() -> Table {
    let mut table = Table::new(
        "T-C — fault-trajectory diagnosis across circuits",
        &[
            "circuit",
            "faults",
            "classes",
            "I",
            "fitness",
            "top1",
            "top2",
            "class_acc",
        ],
    );
    for bench in all_benchmarks().expect("stock benchmarks build") {
        let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
        let grid =
            FrequencyGrid::log_space(bench.search_band.0, bench.search_band.1, DICT_GRID_POINTS);
        let dict =
            FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)
                .expect("dictionary builds");
        let cfg = AtpgConfig::paper_seeded(bench.search_band, PAPER_SEED);
        let result = select_test_vector(&dict, &cfg);

        let set = trajectories_from_dictionary(&dict, &result.test_vector);
        let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
        let report = evaluate_classifier(
            &bench.circuit,
            &universe,
            &diagnoser,
            &bench.input,
            &bench.probe,
            &EvalConfig::clean(TRIALS, PAPER_SEED),
        )
        .expect("evaluation runs");
        let classes = structural_classes(&dict, &result.test_vector);
        table.push_row(vec![
            bench.circuit.name().to_string(),
            format!("{}", bench.fault_set.len()),
            format!("{}", classes.len()),
            format!("{}", result.intersections),
            num(result.fitness, 4),
            pct(report.top1),
            pct(report.top2),
            pct(class_accuracy(&report.confusion, &classes)),
        ]);
    }
    table
}

/// T-D: fitness-formulation ablation.
pub fn table_fitness() -> Table {
    let setup = paper_setup();
    let eval = EvalConfig::clean(TRIALS, PAPER_SEED);
    let mut table = Table::new(
        "T-D — fitness formulation ablation",
        &[
            "fitness_kind",
            "I",
            "min_sep_dB",
            "top1",
            "top2",
            "class_acc",
        ],
    );
    let kinds: [(&str, FitnessKind); 3] = [
        ("paper 1/(1+I)", FitnessKind::Paper),
        ("margin", FitnessKind::Margin { scale: 1.0 }),
        ("hybrid (w=0.5)", FitnessKind::Hybrid { margin_weight: 0.5 }),
    ];
    for (name, kind) in kinds {
        let mut cfg = AtpgConfig::paper_seeded(setup.bench.search_band, PAPER_SEED);
        cfg.fitness = kind;
        let result = select_test_vector(&setup.dict, &cfg);
        let set = trajectories_from_dictionary(&setup.dict, &result.test_vector);
        let sep = ft_core::min_separation(&set, &cfg.geometry);
        let (report, classes) = evaluate_tv(&setup, &result.test_vector, &eval);
        table.push_row(vec![
            name.to_string(),
            format!("{}", result.intersections),
            num(sep, 4),
            pct(report.top1),
            pct(report.top2),
            pct(class_accuracy(&report.confusion, &classes)),
        ]);
    }
    table
}

/// T-E: dictionary deviation range/step ablation.
pub fn table_step() -> Table {
    let bench = ft_circuit::tow_thomas_normalized(1.0).expect("benchmark builds");
    let mut table = Table::new(
        "T-E — dictionary deviation grid ablation",
        &[
            "range_pct",
            "step_pct",
            "dict_size",
            "I",
            "top1",
            "top2",
            "class_acc",
        ],
    );
    for (range, step) in [
        (40.0, 5.0),
        (40.0, 10.0),
        (40.0, 20.0),
        (20.0, 10.0),
        (20.0, 5.0),
    ] {
        let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::new(range, step));
        let grid =
            FrequencyGrid::log_space(bench.search_band.0, bench.search_band.1, DICT_GRID_POINTS);
        let dict =
            FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)
                .expect("dictionary builds");
        let cfg = AtpgConfig::paper_seeded(bench.search_band, PAPER_SEED);
        let result = select_test_vector(&dict, &cfg);
        let set = trajectories_from_dictionary(&dict, &result.test_vector);
        let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());
        let eval = EvalConfig {
            min_fault_pct: (step / 2.0).max(5.0),
            ..EvalConfig::clean(TRIALS, PAPER_SEED)
        };
        let report = evaluate_classifier(
            &bench.circuit,
            &universe,
            &diagnoser,
            &bench.input,
            &bench.probe,
            &eval,
        )
        .expect("evaluation runs");
        let classes = structural_classes(&dict, &result.test_vector);
        table.push_row(vec![
            num(range, 0),
            num(step, 0),
            format!("{}", universe.len()),
            format!("{}", result.intersections),
            pct(report.top1),
            pct(report.top2),
            pct(class_accuracy(&report.confusion, &classes)),
        ]);
    }
    table
}

/// T-F: robustness to measurement noise and component tolerance.
pub fn table_noise() -> Table {
    let setup = paper_setup();
    let tv = ga_paper_result(&setup).test_vector;
    let mut table = Table::new(
        "T-F — noise & tolerance robustness at the GA test vector",
        &[
            "noise_sigma_dB",
            "tolerance_pct",
            "top1",
            "top2",
            "class_acc",
            "dev_err_pct",
        ],
    );
    for sigma in [0.0, 0.1, 0.5, 1.0, 2.0] {
        for tol in [0.0, 1.0, 5.0] {
            let eval = EvalConfig {
                noise: MeasurementNoise::new(sigma),
                tolerance: Tolerance::new(tol),
                ..EvalConfig::clean(TRIALS, PAPER_SEED)
            };
            let (report, classes) = evaluate_tv(&setup, &tv, &eval);
            table.push_row(vec![
                num(sigma, 1),
                num(tol, 0),
                pct(report.top1),
                pct(report.top2),
                pct(class_accuracy(&report.confusion, &classes)),
                num(report.mean_deviation_error_pct, 1),
            ]);
        }
    }
    table
}

/// T-G: trajectory diagnosis versus classic nearest-neighbour dictionary
/// lookup at the same test vector.
pub fn table_diagnosis_methods() -> Table {
    let setup = paper_setup();
    let tv = ga_paper_result(&setup).test_vector;
    let eval = EvalConfig::clean(TRIALS, PAPER_SEED);

    let mut table = Table::new(
        "T-G — trajectory classifier vs nearest-neighbour dictionary",
        &["method", "top1", "top2", "class_acc", "dev_err_pct"],
    );

    let set = trajectories_from_dictionary(&setup.dict, &tv);
    let trajectory = Diagnoser::new(set, DiagnoserConfig::default());
    let nn = NnDictionary::build(&setup.dict, &tv);
    let classes = structural_classes(&setup.dict, &tv);

    let mut push = |name: &str, classifier: &dyn DynClassifier| {
        let report = classifier.eval(&setup, &eval);
        table.push_row(vec![
            name.to_string(),
            pct(report.top1),
            pct(report.top2),
            pct(class_accuracy(&report.confusion, &classes)),
            num(report.mean_deviation_error_pct, 1),
        ]);
    };
    push("fault trajectory (paper)", &trajectory);
    push("nearest-neighbour dictionary", &nn);
    table
}

/// T-H: multi-probe observation — the extension that lifts the CUT's
/// structural ambiguity ceiling. Clean measurements; the probe stacks
/// grow from the paper's single LP output to all three op-amp outputs.
pub fn table_multiprobe() -> Table {
    use ft_circuit::Probe;
    use ft_core::ProbeBank;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let setup = paper_setup();
    let grid = FrequencyGrid::log_space(
        setup.bench.search_band.0,
        setup.bench.search_band.1,
        DICT_GRID_POINTS,
    );
    let tv = ga_paper_result(&setup).test_vector;

    let mut table = Table::new(
        "T-H — multi-probe observation at the GA test vector (clean)",
        &[
            "probes",
            "classes",
            "I",
            "top1",
            "top2",
            "class_acc",
            "dev_err_pct",
        ],
    );

    let probe_stacks: Vec<(&str, Vec<Probe>)> = vec![
        ("lp (paper)", vec![Probe::node("lp")]),
        ("lp+bp", vec![Probe::node("lp"), Probe::node("bp")]),
        (
            "lp+bp+inv",
            vec![Probe::node("lp"), Probe::node("bp"), Probe::node("inv")],
        ),
    ];

    for (label, probes) in probe_stacks {
        let bank = ProbeBank::build(
            &setup.bench.circuit,
            &setup.universe,
            &setup.bench.input,
            &probes,
            &grid,
        )
        .expect("bank builds");
        let set = bank.trajectories(&tv);
        let intersections = ft_core::count_intersections(&set, &GeometryOptions::default());
        let classes = ambiguity_groups(&set, 1e-6, &GeometryOptions::default());
        let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());

        // Clean Monte Carlo over the stacked measurement path.
        let mut rng = StdRng::seed_from_u64(PAPER_SEED);
        let mut confusion = ConfusionMatrix::new(setup.universe.components().to_vec());
        let (mut top1, mut top2, mut dev_err_sum, mut dev_err_n) = (0usize, 0usize, 0.0, 0usize);
        for _ in 0..TRIALS {
            let fault = setup.universe.sample_unknown(&mut rng, 10.0);
            let faulty = fault.apply(&setup.bench.circuit).expect("applies");
            let sig = bank
                .measure(&faulty, &setup.bench.circuit, &tv)
                .expect("measures");
            let verdict = diagnoser.diagnose(&sig);
            confusion.record(fault.component(), &verdict.best().component);
            if verdict.best().component == fault.component() {
                top1 += 1;
                dev_err_sum += (verdict.best().deviation_pct - fault.percent()).abs();
                dev_err_n += 1;
            }
            if verdict
                .candidates()
                .iter()
                .take(2)
                .any(|c| c.component == fault.component())
            {
                top2 += 1;
            }
        }
        table.push_row(vec![
            label.to_string(),
            format!("{}", classes.len()),
            format!("{intersections}"),
            pct(top1 as f64 / TRIALS as f64),
            pct(top2 as f64 / TRIALS as f64),
            pct(class_accuracy(&confusion, &classes)),
            num(
                if dev_err_n > 0 {
                    dev_err_sum / dev_err_n as f64
                } else {
                    f64::NAN
                },
                1,
            ),
        ]);
    }
    table
}

/// T-I: genome-encoding ablation — real-coded BLX-α versus the canonical
/// Holland binary encoding the paper cites.
pub fn table_encoding() -> Table {
    use ft_core::select_test_vector_binary;

    let setup = paper_setup();
    let eval = EvalConfig::clean(TRIALS, PAPER_SEED);
    let mut table = Table::new(
        "T-I — GA genome encoding ablation (paper §2.4 parameters)",
        &[
            "encoding", "f1_rad_s", "f2_rad_s", "I", "fitness", "top1", "top2",
        ],
    );

    let cfg = AtpgConfig::paper_seeded(setup.bench.search_band, PAPER_SEED);
    let real = select_test_vector(&setup.dict, &cfg);
    let (report, _) = evaluate_tv(&setup, &real.test_vector, &eval);
    table.push_row(vec![
        "real (BLX-0.5)".into(),
        num(real.test_vector.omegas()[0], 4),
        num(real.test_vector.omegas()[1], 4),
        format!("{}", real.intersections),
        num(real.fitness, 4),
        pct(report.top1),
        pct(report.top2),
    ]);

    for bits in [8usize, 16] {
        let result = select_test_vector_binary(&setup.dict, &cfg, bits);
        let (report, _) = evaluate_tv(&setup, &result.test_vector, &eval);
        table.push_row(vec![
            format!("binary {bits}-bit"),
            num(result.test_vector.omegas()[0], 4),
            num(result.test_vector.omegas()[1], 4),
            format!("{}", result.intersections),
            num(result.fitness, 4),
            pct(report.top1),
            pct(report.top2),
        ]);
    }
    table
}

/// T-J: double faults against the single-fault trajectory model — the
/// paper's "one component faulty at a time" assumption quantified.
pub fn table_double_faults() -> Table {
    use ft_core::measure_signature;
    use ft_faults::sample_double;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let setup = paper_setup();
    let tv = ga_paper_result(&setup).test_vector;
    let set = trajectories_from_dictionary(&setup.dict, &tv);
    let classes = structural_classes(&setup.dict, &tv);
    let diagnoser = Diagnoser::new(set, DiagnoserConfig::default());

    let mut table = Table::new(
        "T-J — double faults vs the single-fault trajectory model",
        &[
            "fault_order",
            "top1_any_true",
            "top2_any_true",
            "class_any_true",
            "mean_residual_dB",
        ],
    );

    let mut rng = StdRng::seed_from_u64(PAPER_SEED);

    // Reference: single faults through the same scoring.
    let mut single = (0usize, 0usize, 0usize, 0.0f64);
    for _ in 0..TRIALS {
        let fault = setup.universe.sample_unknown(&mut rng, 10.0);
        let faulty = fault.apply(&setup.bench.circuit).expect("applies");
        let sig = measure_signature(
            &faulty,
            &setup.bench.circuit,
            &setup.bench.input,
            &setup.bench.probe,
            &tv,
        )
        .expect("measures");
        let verdict = diagnoser.diagnose(&sig);
        score_any(&mut single, &verdict, &[fault.component()], &classes);
    }
    push_any_row(&mut table, "single (reference)", single, TRIALS);

    let mut double = (0usize, 0usize, 0usize, 0.0f64);
    for _ in 0..TRIALS {
        let mf = sample_double(&setup.universe, &mut rng, 10.0);
        let faulty = mf.apply(&setup.bench.circuit).expect("applies");
        let sig = measure_signature(
            &faulty,
            &setup.bench.circuit,
            &setup.bench.input,
            &setup.bench.probe,
            &tv,
        )
        .expect("measures");
        let verdict = diagnoser.diagnose(&sig);
        let components = mf.components();
        score_any(&mut double, &verdict, &components, &classes);
    }
    push_any_row(&mut table, "double", double, TRIALS);
    table
}

fn score_any(
    acc: &mut (usize, usize, usize, f64),
    verdict: &ft_core::Diagnosis,
    truths: &[&str],
    classes: &AmbiguityGroups,
) {
    let best = verdict.best();
    if truths.contains(&best.component.as_str()) {
        acc.0 += 1;
    }
    if verdict
        .candidates()
        .iter()
        .take(2)
        .any(|c| truths.contains(&c.component.as_str()))
    {
        acc.1 += 1;
    }
    let class_hit = truths.iter().any(|t| {
        classes
            .group_of(t)
            .is_some_and(|g| g.iter().any(|m| m == &best.component))
    });
    if class_hit {
        acc.2 += 1;
    }
    acc.3 += best.distance;
}

fn push_any_row(table: &mut Table, label: &str, acc: (usize, usize, usize, f64), trials: usize) {
    table.push_row(vec![
        label.to_string(),
        pct(acc.0 as f64 / trials as f64),
        pct(acc.1 as f64 / trials as f64),
        pct(acc.2 as f64 / trials as f64),
        num(acc.3 / trials as f64, 4),
    ]);
}

/// Object-safe evaluation shim for [`table_diagnosis_methods`].
trait DynClassifier {
    fn eval(&self, setup: &PaperSetup, config: &EvalConfig) -> AccuracyReport;
}

impl<C: SignatureClassifier> DynClassifier for C {
    fn eval(&self, setup: &PaperSetup, config: &EvalConfig) -> AccuracyReport {
        evaluate_classifier(
            &setup.bench.circuit,
            &setup.universe,
            self,
            &setup.bench.input,
            &setup.bench.probe,
            config,
        )
        .expect("evaluation runs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accuracy_counts_groups() {
        let mut m =
            ConfusionMatrix::new(vec!["R3".to_string(), "R5".to_string(), "R2".to_string()]);
        m.record("R3", "R5"); // same class: counts as correct
        m.record("R3", "R3");
        m.record("R2", "R3"); // wrong class
        m.record("R2", "R2");
        let groups = AmbiguityGroups::from_groups(
            vec![
                vec!["R3".to_string(), "R5".to_string()],
                vec!["R2".to_string()],
            ],
            1e-6,
        );
        let acc = class_accuracy(&m, &groups);
        assert!((acc - 0.75).abs() < 1e-12, "{acc}");
    }

    #[test]
    fn structural_classes_match_algebra() {
        let setup = paper_setup();
        let tv = TestVector::pair(0.6, 1.6);
        let classes = structural_classes(&setup.dict, &tv);
        // Expect exactly 5 classes: {R1} {R2} {C1} {R3,R5} {R4,C2}.
        assert_eq!(classes.len(), 5, "{:?}", classes.groups());
        let r3 = classes.group_of("R3").unwrap();
        assert!(r3.contains(&"R5".to_string()));
        let r4 = classes.group_of("R4").unwrap();
        assert!(r4.contains(&"C2".to_string()));
        assert_eq!(classes.group_of("R1").unwrap().len(), 1);
        assert_eq!(classes.group_of("R2").unwrap().len(), 1);
        assert_eq!(classes.group_of("C1").unwrap().len(), 1);
    }
}
