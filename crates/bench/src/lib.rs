//! # ft-bench
//!
//! Benchmark harness for the fault-trajectory reproduction: shared
//! experiment setup, the figure/table regeneration functions consumed by
//! the `repro` binary, and plain-text/CSV reporting. Criterion
//! performance benches live under `benches/`.

#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod setup;
pub mod tables;

pub use report::{num, pct, Table};
pub use setup::{ga_paper_result, paper_setup, PaperSetup, DICT_GRID_POINTS, PAPER_SEED};
