//! Plain-text table and CSV rendering for experiment output.
//!
//! The `repro` binary prints each figure/table of the paper as aligned
//! text plus CSV rows so results can be piped into plotting tools.

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned text with the title on top.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header row first, title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// Formats a float with fixed precision, rendering NaN as `-`.
pub fn num(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Formats a probability/rate as a percentage string.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22.5".into()]);
        let text = t.to_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("alpha"));
        // Right-aligned columns: the short name is padded.
        assert!(text.contains("    b"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# demo\n"));
        assert!(csv.contains("a,b\n"));
        assert!(csv.contains("1,2\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(f64::NAN), "-");
    }
}
