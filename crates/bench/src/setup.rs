//! Shared experiment setup: the paper's CUT, fault universe, dictionary,
//! and the seeded Section 2.4 GA run reused by several experiments.

use ft_circuit::{tow_thomas_normalized, Benchmark};
use ft_core::{select_test_vector, AtpgConfig, AtpgResult};
use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
use ft_numerics::FrequencyGrid;

/// Deterministic seed used by every headline experiment (the year of the
/// paper).
pub const PAPER_SEED: u64 = 2005;

/// Number of grid points in the dictionary sweep.
pub const DICT_GRID_POINTS: usize = 41;

/// Everything needed to run the paper's experiments on the CUT.
#[derive(Debug, Clone)]
pub struct PaperSetup {
    /// The CUT packaged with input/probe/fault set.
    pub bench: Benchmark,
    /// The 56-fault universe (7 components × ±40% in 10% steps).
    pub universe: FaultUniverse,
    /// The fault dictionary on a 41-point log grid over the search band.
    pub dict: FaultDictionary,
}

/// Builds the paper setup: normalized Tow-Thomas (Q = 1), paper deviation
/// grid, dictionary over 0.01–100 rad/s.
///
/// # Panics
///
/// Panics only on internal inconsistency (the stock benchmark always
/// builds).
pub fn paper_setup() -> PaperSetup {
    let bench = tow_thomas_normalized(1.0).expect("stock benchmark builds");
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let grid = FrequencyGrid::log_space(bench.search_band.0, bench.search_band.1, DICT_GRID_POINTS);
    let dict = FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)
        .expect("dictionary builds for the stock benchmark");
    PaperSetup {
        bench,
        universe,
        dict,
    }
}

/// Runs the paper's GA (§2.4 parameters, seeded) on a setup.
pub fn ga_paper_result(setup: &PaperSetup) -> AtpgResult {
    let config = AtpgConfig::paper_seeded(setup.bench.search_band, PAPER_SEED);
    select_test_vector(&setup.dict, &config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_paper_universe() {
        let s = paper_setup();
        assert_eq!(s.universe.len(), 56);
        assert_eq!(s.dict.entries().len(), 56);
        assert_eq!(s.dict.grid().len(), DICT_GRID_POINTS);
        assert_eq!(s.bench.fault_set.len(), 7);
    }

    #[test]
    fn ga_run_is_reproducible() {
        let s = paper_setup();
        let a = ga_paper_result(&s);
        let b = ga_paper_result(&s);
        assert_eq!(a.test_vector, b.test_vector);
        assert_eq!(a.intersections, b.intersections);
        assert_eq!(a.history.len(), 16); // initial + 15 generations
    }
}
