//! DC operating-point analysis.
//!
//! All elements are linear, so the operating point is one MNA solve at
//! `s = 0`: capacitors vanish from the matrix (open) and inductors reduce
//! to shorts through their branch equations.

use std::collections::HashMap;

use ft_numerics::Complex64;

use crate::error::Result;
use crate::mna::{solve, Excitation, MnaLayout};
use crate::netlist::{Circuit, ComponentId, NodeId};

/// DC operating point: real node voltages and branch currents.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    currents: HashMap<ComponentId, f64>,
}

impl OperatingPoint {
    /// Node voltage (ground reads 0).
    #[inline]
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// Node voltage by name.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::UnknownNode`] when absent.
    pub fn voltage_by_name(&self, circuit: &Circuit, name: &str) -> Result<f64> {
        let id = circuit
            .find_node(name)
            .ok_or_else(|| crate::error::CircuitError::UnknownNode(name.to_string()))?;
        Ok(self.voltage(id))
    }

    /// Branch current of a component with a branch unknown.
    #[inline]
    pub fn current(&self, id: ComponentId) -> Option<f64> {
        self.currents.get(&id).copied()
    }

    /// All node voltages indexed by node id.
    #[inline]
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }
}

/// Computes the DC operating point.
///
/// # Errors
///
/// Returns [`crate::CircuitError::Singular`] for ill-posed circuits and
/// layout errors for bad controlled-source references.
pub fn operating_point(circuit: &Circuit) -> Result<OperatingPoint> {
    let layout = MnaLayout::new(circuit)?;
    operating_point_with_layout(circuit, &layout)
}

/// [`operating_point`] with a pre-built layout.
///
/// # Errors
///
/// As [`operating_point`].
pub fn operating_point_with_layout(
    circuit: &Circuit,
    layout: &MnaLayout,
) -> Result<OperatingPoint> {
    let sol = solve(circuit, layout, Complex64::ZERO, &Excitation::Dc)?;
    let voltages = (0..circuit.node_count())
        .map(|i| sol.voltage(NodeId(i)).re)
        .collect();
    let mut currents = HashMap::new();
    for idx in 0..circuit.component_count() {
        let id = ComponentId(idx);
        if let Some(i) = sol.current(id) {
            currents.insert(id, i.re);
        }
    }
    Ok(OperatingPoint { voltages, currents })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_operating_point() {
        let mut ckt = Circuit::new("div");
        ckt.voltage_source("V1", "in", "0", 9.0).unwrap();
        ckt.resistor("R1", "in", "mid", 2e3).unwrap();
        ckt.resistor("R2", "mid", "0", 1e3).unwrap();
        let op = operating_point(&ckt).unwrap();
        assert!((op.voltage_by_name(&ckt, "mid").unwrap() - 3.0).abs() < 1e-9);
        assert!((op.voltage_by_name(&ckt, "in").unwrap() - 9.0).abs() < 1e-9);
        assert_eq!(op.voltage(NodeId::GROUND), 0.0);
    }

    #[test]
    fn capacitor_blocks_dc() {
        let mut ckt = Circuit::new("c-block");
        ckt.voltage_source("V1", "in", "0", 5.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        // A bleeder so "out" is not floating at DC.
        ckt.resistor("R2", "out", "0", 1e6).unwrap();
        let op = operating_point(&ckt).unwrap();
        let v = op.voltage_by_name(&ckt, "out").unwrap();
        // Divider 1e6/(1e6+1e3): nearly the full 5 V, no cap current.
        assert!((v - 5.0 * 1e6 / 1.001e6).abs() < 1e-9);
    }

    #[test]
    fn inductor_short_at_dc() {
        let mut ckt = Circuit::new("l-short");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "a", 100.0).unwrap();
        ckt.inductor("L1", "a", "b", 10.0).unwrap();
        ckt.resistor("R2", "b", "0", 100.0).unwrap();
        let op = operating_point(&ckt).unwrap();
        let va = op.voltage_by_name(&ckt, "a").unwrap();
        let vb = op.voltage_by_name(&ckt, "b").unwrap();
        assert!((va - vb).abs() < 1e-12, "inductor should be a DC short");
        assert!((va - 0.5).abs() < 1e-9);
        let il = op.current(ckt.find("L1").unwrap()).unwrap();
        assert!((il - 5e-3).abs() < 1e-9);
    }

    #[test]
    fn currents_reported_for_branch_elements() {
        let mut ckt = Circuit::new("i");
        ckt.voltage_source("V1", "a", "0", 10.0).unwrap();
        ckt.resistor("R1", "a", "0", 1e3).unwrap();
        let op = operating_point(&ckt).unwrap();
        let iv = op.current(ckt.find("V1").unwrap()).unwrap();
        assert!((iv + 0.01).abs() < 1e-9);
        // Resistors have no branch current unknown.
        assert_eq!(op.current(ckt.find("R1").unwrap()), None);
    }
}
