//! The stamp-split AC sweep engine — the hot path of the workspace.
//!
//! # The `G + jω·B` decomposition
//!
//! Every element this simulator knows stamps entries into the MNA system
//! matrix `A(s)` that are either frequency-independent (resistor
//! conductances, source/op-amp branch patterns, controlled-source gains)
//! or *linear in `s`* (capacitor admittances `s·C`, inductor branch
//! impedances `−s·L`). The whole system therefore splits exactly as
//!
//! ```text
//! A(ω) = G + jω·B
//! ```
//!
//! with `G` and `B` stamped **once** per circuit. A sweep then forms
//! `A(ω)` per grid point by a copy plus an axpy into a reused workspace,
//! refactors it in place ([`Lu::factor_into`]), and solves into a reused
//! buffer ([`Lu::solve_into`]) — zero heap allocation after warm-up,
//! where the reference path ([`crate::sweep_reference`], `assemble` +
//! [`Lu::factor`]) re-walks the netlist and allocates a fresh matrix,
//! factorisation, and solution at every frequency.
//!
//! # The delta restamp path
//!
//! A parametric fault deviates one component's principal value. Each
//! value enters its stamps through a single scalar (`1/R` for resistors,
//! the value itself for everything else), so
//! [`AcSweepEngine::restamp_component`] updates only the handful of
//! touched entries instead of cloning and re-walking the whole circuit.
//! The prior entry values are kept on an undo log and
//! [`AcSweepEngine::reset`] restores them **verbatim**, so a
//! fault → sweep → reset cycle returns bit-for-bit to the golden
//! response: dictionary builds are reproducible byte-identically no
//! matter how faults are chunked across worker threads.
//!
//! # The rank-1 batch fault sweep
//!
//! Every single-component deviation is a rank-1 update of the nominal
//! system (the stamp patterns factor as `u·vᵀ` for all ten element
//! kinds), so [`AcSweepEngine::sweep_faults_into`] prices a whole fault
//! universe with **one factorization per grid point plus one solve per
//! distinct component**, answering each deviation in O(1) via the
//! Sherman–Morrison identity — the closed form of the delta path, and
//! the reason `FaultDictionary::build` beats the pre-refactor
//! clone-and-reassemble build by an order of magnitude even on one core.
//!
//! # When the reference path is still used
//!
//! The engine serves the single-input transfer-function workload
//! (`AcUnit` excitation). DC operating points, transient stepping, and
//! full multi-source AC excitation keep using `assemble`/`solve`, and
//! [`crate::transfer`] / [`crate::sweep_reference`] remain the oracle the
//! engine is property-tested against (`tests/engine_property.rs`).

use ft_numerics::{CMatrix, Complex64, FrequencyGrid, Lu};

use crate::analysis::ac::{AcSweep, Probe};
use crate::element::Element;
use crate::error::{CircuitError, Result};
use crate::mna::MnaLayout;
use crate::netlist::{Circuit, ComponentId};

/// How a component's principal value enters its matrix entries.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ValueMap {
    /// Entries scale with `1/value` (resistors).
    Inverse,
    /// Entries scale with `value` (C, L, and controlled-source gains).
    Linear,
}

/// The value-dependent entries of one component's stamp.
///
/// For every element kind this simulator knows, the value-dependent part
/// of the stamp is the **rank-1** outer product `m(value) · u · vᵀ` of
/// two sparse sign vectors (e.g. `u = v = e_p − e_n` for a two-terminal
/// admittance, `u = e_k, v = e_cn − e_cp` for a VCVS): `entries` is that
/// outer product materialised for the delta restamp path, while `u`/`v`
/// feed the Sherman–Morrison batch fault sweep.
#[derive(Debug, Clone)]
struct ValueStamp {
    /// `true` when the entries live in the susceptance part `B`
    /// (capacitors, inductors); `false` for the conductance part `G`.
    in_b: bool,
    map: ValueMap,
    /// Sparse row factor of the rank-1 stamp, as `(row, sign)`.
    u: Vec<(usize, f64)>,
    /// Sparse column factor, as `(col, sign)`.
    v: Vec<(usize, f64)>,
    /// `(row, col, sign)` positions the mapped value accumulates into —
    /// the outer product `u ⊗ v`.
    entries: Vec<(usize, usize, f64)>,
}

impl ValueStamp {
    fn from_factors(in_b: bool, map: ValueMap, u: Vec<(usize, f64)>, v: Vec<(usize, f64)>) -> Self {
        let mut entries = Vec::with_capacity(u.len() * v.len());
        for &(row, su) in &u {
            for &(col, sv) in &v {
                entries.push((row, col, su * sv));
            }
        }
        ValueStamp {
            in_b,
            map,
            u,
            v,
            entries,
        }
    }

    fn empty() -> Self {
        ValueStamp::from_factors(false, ValueMap::Linear, Vec::new(), Vec::new())
    }
}

/// Sparse `e_p − e_n` over the matrix rows of two nodes (grounds drop
/// out).
fn node_pair(layout: &MnaLayout, p: crate::NodeId, n: crate::NodeId) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(2);
    if let Some(i) = layout.node_row(p) {
        out.push((i, 1.0));
    }
    if let Some(j) = layout.node_row(n) {
        out.push((j, -1.0));
    }
    out
}

/// Sparse dot product `Σ sign·x[row]`.
fn sparse_dot(sparse: &[(usize, f64)], x: &[Complex64]) -> Complex64 {
    let mut acc = Complex64::ZERO;
    for &(row, sign) in sparse {
        acc += x[row].scale(sign);
    }
    acc
}

/// Per-component restamp metadata.
#[derive(Debug, Clone)]
struct EngineComponent {
    name: String,
    /// Current principal value; `None` for sources and ideal op amps.
    value: Option<f64>,
    /// R/C/L values must stay positive (mirrors `Circuit::set_value`).
    must_be_positive: bool,
    stamp: ValueStamp,
}

/// One saved matrix entry of the undo log.
#[derive(Debug, Clone, Copy)]
struct UndoEntry {
    in_b: bool,
    row: usize,
    col: usize,
    prev: Complex64,
}

/// One [`AcSweepEngine::restamp_component`] call of the undo log.
#[derive(Debug, Clone, Copy)]
struct UndoFrame {
    component: usize,
    prev_value: f64,
    entries_from: usize,
}

/// A reusable, allocation-free AC sweep pipeline for one
/// circuit / input / probe triple (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use ft_circuit::{AcSweepEngine, Circuit, Probe};
///
/// let mut ckt = Circuit::new("rc");
/// ckt.voltage_source("V1", "in", "0", 1.0)?;
/// ckt.resistor("R1", "in", "out", 1_000.0)?;
/// ckt.capacitor("C1", "out", "0", 1e-6)?;
///
/// let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("out"))?;
/// let h = engine.response_at(1_000.0)?;
/// assert!((h.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
///
/// // Delta path: deviate R1 by +50% without touching the netlist…
/// let r1 = ckt.find("R1").unwrap();
/// let nominal = engine.restamp_component(r1, 1_500.0)?;
/// assert_eq!(nominal, 1_000.0);
/// assert!(engine.response_at(1_000.0)?.abs() < h.abs());
/// // …and return to the golden circuit bit-for-bit.
/// engine.reset();
/// assert_eq!(engine.response_at(1_000.0)?, h);
/// # Ok::<(), ft_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcSweepEngine {
    /// Frequency-independent (conductance) part of the system matrix.
    g: CMatrix,
    /// Susceptance part; the assembled system is `G + jω·B`.
    b: CMatrix,
    /// Right-hand side under unit excitation of the input source.
    rhs: Vec<Complex64>,
    /// Probe rows: `V(probe) = x[pos] − x[neg]` (`None` reads ground).
    probe_pos: Option<usize>,
    probe_neg: Option<usize>,
    components: Vec<EngineComponent>,
    // --- reused workspaces (warm after the first solve) ---------------
    work: CMatrix,
    lu: Lu<Complex64>,
    x: Vec<Complex64>,
    // --- restamp undo log ---------------------------------------------
    undo_entries: Vec<UndoEntry>,
    undo_frames: Vec<UndoFrame>,
}

impl AcSweepEngine {
    /// Builds an engine for `circuit`, driving `input` with `1∠0` and
    /// observing `probe`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] / [`CircuitError::NotASource`]
    /// for a bad input, [`CircuitError::UnknownNode`] for a bad probe, and
    /// layout errors per [`MnaLayout::new`].
    pub fn new(circuit: &Circuit, input: &str, probe: &Probe) -> Result<Self> {
        let layout = MnaLayout::new(circuit)?;
        Self::with_layout(circuit, &layout, input, probe)
    }

    /// [`AcSweepEngine::new`] with a pre-built layout (shared across
    /// engines of the same circuit, e.g. one per worker thread).
    ///
    /// # Errors
    ///
    /// As [`AcSweepEngine::new`].
    pub fn with_layout(
        circuit: &Circuit,
        layout: &MnaLayout,
        input: &str,
        probe: &Probe,
    ) -> Result<Self> {
        let dim = layout.dim();
        let mut g = CMatrix::zeros(dim, dim);
        let mut b = CMatrix::zeros(dim, dim);
        let mut rhs = vec![Complex64::ZERO; dim];

        let input_id = circuit
            .find(input)
            .ok_or_else(|| CircuitError::UnknownComponent(input.to_string()))?;
        if !circuit
            .component(input_id)
            .element()
            .is_independent_source()
        {
            return Err(CircuitError::NotASource(input.to_string()));
        }

        let (probe_pos, probe_neg) = resolve_probe(circuit, layout, probe)?;

        let mut components = Vec::with_capacity(circuit.component_count());
        for (idx, comp) in circuit.components().iter().enumerate() {
            let id = ComponentId(idx);
            let nodes = comp.nodes();
            let value = comp.element().principal_value();
            let mut must_be_positive = false;
            let mut stamp = ValueStamp::empty();
            match comp.element() {
                Element::Resistor { .. } => {
                    must_be_positive = true;
                    let pair = node_pair(layout, nodes[0], nodes[1]);
                    stamp = ValueStamp::from_factors(false, ValueMap::Inverse, pair.clone(), pair);
                }
                Element::Capacitor { .. } => {
                    must_be_positive = true;
                    let pair = node_pair(layout, nodes[0], nodes[1]);
                    stamp = ValueStamp::from_factors(true, ValueMap::Linear, pair.clone(), pair);
                }
                Element::Inductor { .. } => {
                    must_be_positive = true;
                    let k = layout.branch_row(id).expect("inductor has branch");
                    branch_voltage_pattern(&mut g, layout, nodes[0], nodes[1], k);
                    stamp = ValueStamp::from_factors(
                        true,
                        ValueMap::Linear,
                        vec![(k, 1.0)],
                        vec![(k, -1.0)],
                    );
                }
                Element::VoltageSource { .. } => {
                    let k = layout.branch_row(id).expect("vsource has branch");
                    branch_voltage_pattern(&mut g, layout, nodes[0], nodes[1], k);
                    if id == input_id {
                        rhs[k] = Complex64::ONE;
                    }
                }
                Element::CurrentSource { .. } => {
                    if id == input_id {
                        // Positive current flows p→n through the source.
                        if let Some(rp) = layout.node_row(nodes[0]) {
                            rhs[rp] -= Complex64::ONE;
                        }
                        if let Some(rn) = layout.node_row(nodes[1]) {
                            rhs[rn] += Complex64::ONE;
                        }
                    }
                }
                Element::Vcvs { .. } => {
                    let k = layout.branch_row(id).expect("vcvs has branch");
                    branch_voltage_pattern(&mut g, layout, nodes[0], nodes[1], k);
                    stamp = ValueStamp::from_factors(
                        false,
                        ValueMap::Linear,
                        vec![(k, 1.0)],
                        node_pair(layout, nodes[3], nodes[2]),
                    );
                }
                Element::Vccs { .. } => {
                    stamp = ValueStamp::from_factors(
                        false,
                        ValueMap::Linear,
                        node_pair(layout, nodes[0], nodes[1]),
                        node_pair(layout, nodes[2], nodes[3]),
                    );
                }
                Element::Cccs { control, .. } => {
                    let ctrl_id = circuit.find(control).expect("validated by layout");
                    let j = layout
                        .branch_row(ctrl_id)
                        .expect("control vsource has branch");
                    stamp = ValueStamp::from_factors(
                        false,
                        ValueMap::Linear,
                        node_pair(layout, nodes[0], nodes[1]),
                        vec![(j, 1.0)],
                    );
                }
                Element::Ccvs { control, .. } => {
                    let ctrl_id = circuit.find(control).expect("validated by layout");
                    let j = layout
                        .branch_row(ctrl_id)
                        .expect("control vsource has branch");
                    let k = layout.branch_row(id).expect("ccvs has branch");
                    branch_voltage_pattern(&mut g, layout, nodes[0], nodes[1], k);
                    stamp = ValueStamp::from_factors(
                        false,
                        ValueMap::Linear,
                        vec![(k, 1.0)],
                        vec![(j, -1.0)],
                    );
                }
                Element::IdealOpAmp => {
                    // nodes = [in_p, in_n, out]; branch = output current.
                    let k = layout.branch_row(id).expect("opamp has branch");
                    if let Some(o) = layout.node_row(nodes[2]) {
                        g[(o, k)] += Complex64::ONE;
                    }
                    if let Some(ip) = layout.node_row(nodes[0]) {
                        g[(k, ip)] += Complex64::ONE;
                    }
                    if let Some(inn) = layout.node_row(nodes[1]) {
                        g[(k, inn)] -= Complex64::ONE;
                    }
                }
            }
            // Apply the value-dependent entries at the nominal value.
            // (A component whose entries all land on ground keeps its
            // value — restamping it is then a tracked no-op, matching
            // `Circuit::set_value` semantics.)
            if let Some(v) = value {
                let mapped = match stamp.map {
                    ValueMap::Inverse => 1.0 / v,
                    ValueMap::Linear => v,
                };
                let target = if stamp.in_b { &mut b } else { &mut g };
                for &(row, col, sign) in &stamp.entries {
                    target[(row, col)] += Complex64::from_real(sign * mapped);
                }
            }
            components.push(EngineComponent {
                name: comp.name().to_string(),
                value,
                must_be_positive,
                stamp,
            });
        }

        Ok(AcSweepEngine {
            work: CMatrix::zeros(dim, dim),
            lu: Lu::workspace(dim),
            x: Vec::with_capacity(dim),
            g,
            b,
            rhs,
            probe_pos,
            probe_neg,
            components,
            undo_entries: Vec::new(),
            undo_frames: Vec::new(),
        })
    }

    /// System dimension (non-ground nodes + branch currents).
    #[inline]
    pub fn dim(&self) -> usize {
        self.g.rows()
    }

    /// Current principal value of a component, if it has one.
    pub fn value_of(&self, id: ComponentId) -> Option<f64> {
        self.components.get(id.index()).and_then(|c| c.value)
    }

    /// `true` when no restamp is outstanding (the engine represents the
    /// circuit it was built from).
    #[inline]
    pub fn is_nominal(&self) -> bool {
        self.undo_frames.is_empty()
    }

    /// Complex transfer function `probe / input` at angular frequency
    /// `omega` (rad/s): assembles `G + jω·B` into the reused workspace,
    /// refactors in place, and solves — no heap allocation after the
    /// first call.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Singular`] for an ill-posed system at this
    /// frequency.
    pub fn response_at(&mut self, omega: f64) -> Result<Complex64> {
        self.work.copy_from(&self.g);
        self.work.add_scaled(&self.b, Complex64::jw(omega));
        self.lu.factor_into(&self.work)?;
        self.lu.solve_into(&self.rhs, &mut self.x);
        let vp = self.probe_pos.map_or(Complex64::ZERO, |r| self.x[r]);
        let vn = self.probe_neg.map_or(Complex64::ZERO, |r| self.x[r]);
        Ok(vp - vn)
    }

    /// Sweeps `omegas` into a caller-owned buffer (cleared first): the
    /// bulk entry point that keeps the whole pipeline allocation-free.
    ///
    /// # Errors
    ///
    /// As [`AcSweepEngine::response_at`]; a singular system at any point
    /// aborts the sweep.
    pub fn sweep_into(&mut self, omegas: &[f64], out: &mut Vec<Complex64>) -> Result<()> {
        out.clear();
        out.reserve(omegas.len());
        for &w in omegas {
            out.push(self.response_at(w)?);
        }
        Ok(())
    }

    /// Sweeps a frequency grid into a fresh [`AcSweep`].
    ///
    /// # Errors
    ///
    /// As [`AcSweepEngine::sweep_into`].
    pub fn sweep(&mut self, grid: &FrequencyGrid) -> Result<AcSweep> {
        let mut values = Vec::with_capacity(grid.len());
        self.sweep_into(grid.frequencies(), &mut values)?;
        Ok(AcSweep::from_raw(grid.frequencies().to_vec(), values))
    }

    /// Samples the response at arbitrary frequencies.
    ///
    /// # Errors
    ///
    /// As [`AcSweepEngine::sweep_into`].
    pub fn sample_at(&mut self, omegas: &[f64]) -> Result<Vec<Complex64>> {
        let mut out = Vec::with_capacity(omegas.len());
        self.sweep_into(omegas, &mut out)?;
        Ok(out)
    }

    /// Sweeps a whole batch of single-component deviations in one pass —
    /// the offline-phase hot loop behind `FaultDictionary::build`.
    ///
    /// Every parametric deviation of one component is a **rank-1 update**
    /// `A(ω) + c(ω)·u·vᵀ` of the nominal system (the `u`/`v` factors are
    /// the component's stamp pattern, `c(ω)` its mapped value delta, times
    /// `jω` for reactive elements). Per grid point this method therefore
    /// factors the nominal system **once**, takes one extra solve per
    /// *distinct component*, and prices every deviation of that component
    /// in O(1) by the Sherman–Morrison identity
    ///
    /// ```text
    /// H = s₀ − c·(vᵀx₀) / (1 + c·vᵀA⁻¹u) · (pᵀA⁻¹u)
    /// ```
    ///
    /// (`x₀` the nominal solution, `p` the probe read vector). For the
    /// paper's 7-component × 8-deviation universe that is 8 solves per
    /// grid point instead of 56 factorizations. The result is
    /// algebraically identical to restamp-and-solve and agrees with the
    /// reference path within the property-test bound; outputs are
    /// deterministic and independent of how callers chunk `faults`.
    ///
    /// `golden` receives the nominal response at every frequency; `out`
    /// is filled fault-major (`out[f * omegas.len() + w]`). Outstanding
    /// restamps are respected: deviations are relative to the engine's
    /// *current* values.
    ///
    /// # Errors
    ///
    /// Validates every fault as [`AcSweepEngine::restamp_component`]
    /// does; returns [`CircuitError::Singular`] when the *nominal* system
    /// is singular at some grid point and [`CircuitError::SingularFault`]
    /// (identifying the batch index and frequency) when a *deviated*
    /// system is — healthy entries are never blamed for a sick one.
    pub fn sweep_faults_into(
        &mut self,
        omegas: &[f64],
        faults: &[(ComponentId, f64)],
        golden: &mut Vec<Complex64>,
        out: &mut Vec<Complex64>,
    ) -> Result<()> {
        let dim = self.dim();
        // Validate faults; map each to (unique-component slot, mapped
        // value delta, reactive?).
        let mut uniq: Vec<usize> = Vec::new();
        let mut fault_info: Vec<(usize, f64, bool)> = Vec::with_capacity(faults.len());
        for &(id, value) in faults {
            let (idx, m, in_b) = self.fault_update(id, value)?;
            let slot = uniq.iter().position(|&c| c == idx).unwrap_or_else(|| {
                uniq.push(idx);
                uniq.len() - 1
            });
            fault_info.push((slot, m, in_b));
        }

        // Dense u columns, one per distinct component (frequency-free).
        // Accumulated, not assigned: a degenerate stamp with both
        // terminals on one node (e.g. a VCCS output across `d`,`d`) has
        // u-entries that must cancel to zero, as they do in the outer-
        // product entries the restamp path uses.
        let mut ucols = vec![Complex64::ZERO; uniq.len() * dim];
        for (slot, &idx) in uniq.iter().enumerate() {
            for &(row, sign) in &self.components[idx].stamp.u {
                ucols[slot * dim + row] += Complex64::from_real(sign);
            }
        }

        golden.clear();
        golden.reserve(omegas.len());
        out.clear();
        out.resize(faults.len() * omegas.len(), Complex64::ZERO);
        let mut y: Vec<Complex64> = Vec::with_capacity(dim);
        // Per-slot (s₁, s₂, s₃) scalars of the current frequency.
        let mut scalars = vec![(Complex64::ZERO, Complex64::ZERO, Complex64::ZERO); uniq.len()];

        for (wi, &w) in omegas.iter().enumerate() {
            self.work.copy_from(&self.g);
            self.work.add_scaled(&self.b, Complex64::jw(w));
            self.lu.factor_into(&self.work)?;
            self.lu.solve_into(&self.rhs, &mut self.x);
            let s0 = self.probe_pos.map_or(Complex64::ZERO, |r| self.x[r])
                - self.probe_neg.map_or(Complex64::ZERO, |r| self.x[r]);
            golden.push(s0);
            for (slot, &idx) in uniq.iter().enumerate() {
                self.lu
                    .solve_into(&ucols[slot * dim..(slot + 1) * dim], &mut y);
                let v = &self.components[idx].stamp.v;
                let s3 = self.probe_pos.map_or(Complex64::ZERO, |r| y[r])
                    - self.probe_neg.map_or(Complex64::ZERO, |r| y[r]);
                scalars[slot] = (sparse_dot(v, &self.x), sparse_dot(v, &y), s3);
            }
            for (fi, &(slot, m, in_b)) in fault_info.iter().enumerate() {
                let c = if in_b {
                    Complex64::jw(w).scale(m)
                } else {
                    Complex64::from_real(m)
                };
                let (s1, s2, s3) = scalars[slot];
                let denom = Complex64::ONE + c * s2;
                if denom.abs() <= 1e-13 * (1.0 + (c * s2).abs()) {
                    // The deviated system is (numerically) singular here;
                    // identify the offending batch entry instead of
                    // poisoning the whole batch with a blind error.
                    return Err(CircuitError::SingularFault {
                        fault: fi,
                        omega: w,
                    });
                }
                out[fi * omegas.len() + wi] = s0 - c * s1 / denom * s3;
            }
        }
        Ok(())
    }

    /// Validates one batch deviation exactly as
    /// [`AcSweepEngine::restamp_component`] does and maps it to its
    /// update data: the component index, the mapped value delta `m`
    /// (`1/value − 1/old` for resistors, `value − old` otherwise), and
    /// whether the stamp lives in the susceptance part `B`.
    fn fault_update(&self, id: ComponentId, value: f64) -> Result<(usize, f64, bool)> {
        let idx = id.index();
        let Some(comp) = self.components.get(idx) else {
            return Err(CircuitError::UnknownComponent(format!("component #{idx}")));
        };
        let Some(old) = comp.value else {
            return Err(CircuitError::InvalidValue {
                component: comp.name.clone(),
                value,
                reason: "component has no principal value to deviate",
            });
        };
        if !value.is_finite() || (comp.must_be_positive && value <= 0.0) {
            return Err(CircuitError::InvalidValue {
                component: comp.name.clone(),
                value,
                reason: if comp.must_be_positive {
                    "value must be positive and finite"
                } else {
                    "value must be finite"
                },
            });
        }
        let m = match comp.stamp.map {
            ValueMap::Inverse => 1.0 / value - 1.0 / old,
            ValueMap::Linear => value - old,
        };
        Ok((idx, m, comp.stamp.in_b))
    }

    /// Sweeps a whole batch of **multi-faults** (simultaneous deviations
    /// of `k` distinct components) in one pass — the Woodbury (rank-k)
    /// generalisation of [`AcSweepEngine::sweep_faults_into`] and the
    /// offline-phase hot loop behind multi-fault dictionaries.
    ///
    /// An order-`k` multi-fault deviates the nominal system by a rank-k
    /// update `A(ω) + U·C·Vᵀ` (`U`/`V` the stamp factors of the touched
    /// components, `C = diag(c₁…c_k)` the mapped value deltas, times `jω`
    /// for reactive elements). Per grid point this method factors the
    /// nominal system **once**, takes one extra solve per *distinct
    /// component across the whole batch* (the shared `U`-columns), and
    /// prices each multi-fault with one k×k dense complex solve of the
    /// Woodbury capacitance system
    ///
    /// ```text
    /// (I_k + C·Vᵀ A⁻¹ U) · w = C·Vᵀ x₀,   H = s₀ − pᵀ A⁻¹ U · w
    /// ```
    ///
    /// (`x₀` the nominal solution, `p` the probe read vector, the k×k
    /// solve via [`Lu::solve_dense_into`]). For k = 1 this reduces
    /// algebraically to the Sherman–Morrison identity of the rank-1
    /// sweep. `MultiFault::apply` (clone + reassemble, in `ft-faults`)
    /// stays as the oracle this path is property-tested against.
    ///
    /// `golden` receives the nominal response at every frequency; `out`
    /// is filled fault-major (`out[f * omegas.len() + w]`). An empty
    /// tuple is priced as the golden response (a rank-0 update).
    /// Outstanding restamps are respected, and outputs are deterministic
    /// and independent of how callers chunk `multifaults`.
    ///
    /// # Errors
    ///
    /// Validates every deviation as [`AcSweepEngine::restamp_component`]
    /// does, plus [`CircuitError::InvalidValue`] when one tuple deviates
    /// the same component twice; returns [`CircuitError::Singular`] when
    /// the nominal system is singular at some grid point and
    /// [`CircuitError::SingularFault`] (batch index + frequency) when a
    /// deviated system is.
    pub fn sweep_multifaults_into(
        &mut self,
        omegas: &[f64],
        multifaults: &[Vec<(ComponentId, f64)>],
        golden: &mut Vec<Complex64>,
        out: &mut Vec<Complex64>,
    ) -> Result<()> {
        let dim = self.dim();
        // Validate every deviation; map each tuple to (unique-component
        // slot, mapped value delta, reactive?) triples.
        let mut uniq: Vec<usize> = Vec::new();
        let mut tuples: Vec<Vec<(usize, f64, bool)>> = Vec::with_capacity(multifaults.len());
        for mf in multifaults {
            let mut infos = Vec::with_capacity(mf.len());
            for (j, &(id, value)) in mf.iter().enumerate() {
                let (idx, m, in_b) = self.fault_update(id, value)?;
                if mf[..j].iter().any(|&(prev, _)| prev == id) {
                    return Err(CircuitError::InvalidValue {
                        component: self.components[idx].name.clone(),
                        value,
                        reason: "duplicate component in multi-fault",
                    });
                }
                let slot = uniq.iter().position(|&c| c == idx).unwrap_or_else(|| {
                    uniq.push(idx);
                    uniq.len() - 1
                });
                infos.push((slot, m, in_b));
            }
            tuples.push(infos);
        }
        let k_u = uniq.len();

        // Dense U columns, one per distinct component (accumulated so
        // degenerate same-node stamps cancel — see sweep_faults_into).
        let mut ucols = vec![Complex64::ZERO; k_u * dim];
        for (slot, &idx) in uniq.iter().enumerate() {
            for &(row, sign) in &self.components[idx].stamp.u {
                ucols[slot * dim + row] += Complex64::from_real(sign);
            }
        }

        golden.clear();
        golden.reserve(omegas.len());
        out.clear();
        out.resize(multifaults.len() * omegas.len(), Complex64::ZERO);

        // Per-frequency slot data: y_s = A⁻¹u_s (stacked in `ys`), probe
        // reads p_s = pᵀy_s, projections t_s = v_sᵀx₀, and the Gram
        // matrix S[i·k_u + j] = v_iᵀ y_j.
        let mut ys = vec![Complex64::ZERO; k_u * dim];
        let mut y: Vec<Complex64> = Vec::with_capacity(dim);
        let mut p = vec![Complex64::ZERO; k_u];
        let mut t = vec![Complex64::ZERO; k_u];
        let mut gram = vec![Complex64::ZERO; k_u * k_u];
        // Reused k×k Woodbury capacitance systems, one per tuple order
        // seen, so mixed-order batches also stay allocation-free after
        // the first frequency.
        let max_k = tuples.iter().map(Vec::len).max().unwrap_or(0);
        let mut cap_ws: Vec<Option<(CMatrix, Lu<Complex64>)>> = vec![None; max_k + 1];
        let mut rhs_small: Vec<Complex64> = Vec::new();
        let mut w_small: Vec<Complex64> = Vec::new();

        for (wi, &w) in omegas.iter().enumerate() {
            self.work.copy_from(&self.g);
            self.work.add_scaled(&self.b, Complex64::jw(w));
            self.lu.factor_into(&self.work)?;
            self.lu.solve_into(&self.rhs, &mut self.x);
            let s0 = self.probe_pos.map_or(Complex64::ZERO, |r| self.x[r])
                - self.probe_neg.map_or(Complex64::ZERO, |r| self.x[r]);
            golden.push(s0);
            for (slot, &idx) in uniq.iter().enumerate() {
                self.lu
                    .solve_into(&ucols[slot * dim..(slot + 1) * dim], &mut y);
                p[slot] = self.probe_pos.map_or(Complex64::ZERO, |r| y[r])
                    - self.probe_neg.map_or(Complex64::ZERO, |r| y[r]);
                t[slot] = sparse_dot(&self.components[idx].stamp.v, &self.x);
                ys[slot * dim..(slot + 1) * dim].copy_from_slice(&y);
            }
            for (i, &idx) in uniq.iter().enumerate() {
                let v = &self.components[idx].stamp.v;
                for j in 0..k_u {
                    gram[i * k_u + j] = sparse_dot(v, &ys[j * dim..(j + 1) * dim]);
                }
            }
            for (fi, infos) in tuples.iter().enumerate() {
                let k = infos.len();
                if k == 0 {
                    out[fi * omegas.len() + wi] = s0;
                    continue;
                }
                let (cap, cap_lu) =
                    cap_ws[k].get_or_insert_with(|| (CMatrix::zeros(k, k), Lu::workspace(k)));
                rhs_small.clear();
                // Conditioning scale: Π over rows of (1 + Σ|c_a·S_ab|),
                // the rank-k analogue of the Sherman–Morrison check
                // |1 + c·s₂| ≤ 1e-13·(1 + |c·s₂|) (equal to it at k=1).
                let mut scale = 1.0_f64;
                for (a, &(slot_a, m, in_b)) in infos.iter().enumerate() {
                    let c = if in_b {
                        Complex64::jw(w).scale(m)
                    } else {
                        Complex64::from_real(m)
                    };
                    let mut row_mag = 1.0_f64;
                    for (b, &(slot_b, _, _)) in infos.iter().enumerate() {
                        let cs = c * gram[slot_a * k_u + slot_b];
                        row_mag += cs.abs();
                        let delta = if a == b {
                            Complex64::ONE
                        } else {
                            Complex64::ZERO
                        };
                        cap[(a, b)] = delta + cs;
                    }
                    scale *= row_mag;
                    rhs_small.push(c * t[slot_a]);
                }
                let solved = cap_lu.solve_dense_into(cap, &rhs_small, &mut w_small);
                if solved.is_err() || cap_lu.det().abs() <= 1e-13 * scale {
                    // The deviated system is (numerically) singular here:
                    // det(A + U·C·Vᵀ) = det(A)·det(I + C·VᵀA⁻¹U).
                    return Err(CircuitError::SingularFault {
                        fault: fi,
                        omega: w,
                    });
                }
                let mut h = s0;
                for (&(slot_a, _, _), &wa) in infos.iter().zip(&w_small) {
                    h -= p[slot_a] * wa;
                }
                out[fi * omegas.len() + wi] = h;
            }
        }
        Ok(())
    }

    /// Sets component `id`'s principal value to `value` by updating only
    /// its touched stamp entries — the parametric-fault delta path.
    /// Returns the previous value. Restamps compose; [`AcSweepEngine::reset`]
    /// undoes all of them exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] for an id that is not
    /// part of this engine's circuit and [`CircuitError::InvalidValue`]
    /// for components without a principal value or out-of-range values
    /// (R/C/L must stay positive), mirroring `Circuit::set_value`.
    pub fn restamp_component(&mut self, id: ComponentId, value: f64) -> Result<f64> {
        let (idx, delta, in_b) = self.fault_update(id, value)?;
        let old = self.components[idx]
            .value
            .expect("validated by fault_update");
        let entries_from = self.undo_entries.len();
        for i in 0..self.components[idx].stamp.entries.len() {
            let (row, col, sign) = self.components[idx].stamp.entries[i];
            let target = if in_b { &mut self.b } else { &mut self.g };
            let prev = target[(row, col)];
            self.undo_entries.push(UndoEntry {
                in_b,
                row,
                col,
                prev,
            });
            target[(row, col)] = prev + Complex64::from_real(sign * delta);
        }
        self.undo_frames.push(UndoFrame {
            component: idx,
            prev_value: old,
            entries_from,
        });
        self.components[idx].value = Some(value);
        Ok(old)
    }

    /// Undoes every outstanding [`AcSweepEngine::restamp_component`],
    /// restoring the saved matrix entries verbatim (bit-for-bit) in
    /// reverse order — the engine is then exactly the one built from the
    /// original circuit, regardless of how many faults it has simulated.
    pub fn reset(&mut self) {
        while let Some(frame) = self.undo_frames.pop() {
            for i in (frame.entries_from..self.undo_entries.len()).rev() {
                let e = self.undo_entries[i];
                let target = if e.in_b { &mut self.b } else { &mut self.g };
                target[(e.row, e.col)] = e.prev;
            }
            self.undo_entries.truncate(frame.entries_from);
            self.components[frame.component].value = Some(frame.prev_value);
        }
    }
}

/// Resolves a probe to its matrix rows (`None` = ground, reads 0).
fn resolve_probe(
    circuit: &Circuit,
    layout: &MnaLayout,
    probe: &Probe,
) -> Result<(Option<usize>, Option<usize>)> {
    let node_of = |name: &str| {
        circuit
            .find_node(name)
            .ok_or_else(|| CircuitError::UnknownNode(name.to_string()))
    };
    match probe {
        Probe::Node(name) => Ok((layout.node_row(node_of(name)?), None)),
        Probe::Differential(p, n) => {
            Ok((layout.node_row(node_of(p)?), layout.node_row(node_of(n)?)))
        }
    }
}

/// Stamps the constant branch-voltage pattern shared by V sources,
/// inductors, VCVS, and CCVS into `g`.
fn branch_voltage_pattern(
    g: &mut CMatrix,
    layout: &MnaLayout,
    p: crate::NodeId,
    n: crate::NodeId,
    k: usize,
) {
    if let Some(i) = layout.node_row(p) {
        g[(i, k)] += Complex64::ONE;
        g[(k, i)] += Complex64::ONE;
    }
    if let Some(i) = layout.node_row(n) {
        g[(i, k)] -= Complex64::ONE;
        g[(k, i)] -= Complex64::ONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ac::{sweep_reference, transfer};
    use crate::library::{tow_thomas_normalized, twin_t_notch};
    use ft_numerics::FrequencyGrid;

    fn rc() -> Circuit {
        let mut ckt = Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        ckt
    }

    #[test]
    fn engine_matches_analytic_rc() {
        let ckt = rc();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("out")).unwrap();
        for &w in &[1.0, 100.0, 1000.0, 1e4, 1e6] {
            let h = engine.response_at(w).unwrap();
            let expected = Complex64::ONE / (Complex64::ONE + Complex64::jw(w * 1e-3));
            assert!((h - expected).abs() < 1e-12, "mismatch at ω={w}");
        }
    }

    #[test]
    fn engine_matches_reference_on_biquad() {
        let bench = tow_thomas_normalized(1.0).unwrap();
        let grid = FrequencyGrid::log_space(0.01, 100.0, 61);
        let mut engine = AcSweepEngine::new(&bench.circuit, &bench.input, &bench.probe).unwrap();
        let fast = engine.sweep(&grid).unwrap();
        let oracle = sweep_reference(&bench.circuit, &bench.input, &bench.probe, &grid).unwrap();
        for (a, b) in fast.values().iter().zip(oracle.values()) {
            assert!((*a - *b).abs() <= 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn engine_handles_notch_and_differential_probe() {
        let bench = twin_t_notch().unwrap();
        let mut engine = AcSweepEngine::new(&bench.circuit, "V1", &bench.probe).unwrap();
        assert!(engine.response_at(1.0).unwrap().abs() < 1e-9);
        let mut diff =
            AcSweepEngine::new(&bench.circuit, "V1", &Probe::differential("in", "out")).unwrap();
        let h_in_out = diff.response_at(3.0).unwrap();
        let h_out = engine.response_at(3.0).unwrap();
        assert!((h_in_out - (Complex64::ONE - h_out)).abs() < 1e-12);
    }

    #[test]
    fn restamp_matches_rebuilt_circuit() {
        let bench = tow_thomas_normalized(1.0).unwrap();
        let r2 = bench.circuit.find("R2").unwrap();
        let mut engine = AcSweepEngine::new(&bench.circuit, &bench.input, &bench.probe).unwrap();
        let old = engine.restamp_component(r2, 1.3).unwrap();
        assert_eq!(old, 1.0);
        assert_eq!(engine.value_of(r2), Some(1.3));
        assert!(!engine.is_nominal());

        let mut faulty = bench.circuit.clone();
        faulty.set_value("R2", 1.3).unwrap();
        for &w in &[0.1, 0.7, 1.0, 1.4, 10.0] {
            let a = engine.response_at(w).unwrap();
            let b = transfer(&faulty, &bench.input, &bench.probe, w).unwrap();
            assert!((a - b).abs() < 1e-12, "ω={w}: {a} vs {b}");
        }
    }

    #[test]
    fn reset_round_trips_bit_exactly() {
        let bench = tow_thomas_normalized(1.0).unwrap();
        let grid = FrequencyGrid::log_space(0.01, 100.0, 31);
        let mut engine = AcSweepEngine::new(&bench.circuit, &bench.input, &bench.probe).unwrap();
        let golden = engine.sweep(&grid).unwrap();
        // Stack several deviations (including two on the same component)
        // and undo them all.
        for (name, value) in [("R2", 1.3), ("C1", 0.6), ("R2", 0.9), ("R4", 2.0)] {
            let id = bench.circuit.find(name).unwrap();
            engine.restamp_component(id, value).unwrap();
        }
        assert!(!engine.is_nominal());
        engine.reset();
        assert!(engine.is_nominal());
        let back = engine.sweep(&grid).unwrap();
        // Bit-for-bit, not just within tolerance.
        assert_eq!(golden.values(), back.values());
    }

    #[test]
    fn batch_fault_sweep_matches_restamp_path() {
        // Exercise every element kind with a principal value: R, C, L,
        // E (VCVS), G (VCCS), F (CCCS), H (CCVS).
        let mut ckt = Circuit::new("menagerie");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "a", 1.0).unwrap();
        ckt.capacitor("C1", "a", "0", 0.5).unwrap();
        ckt.inductor("L1", "a", "b", 0.7).unwrap();
        ckt.resistor("R2", "b", "0", 2.0).unwrap();
        ckt.vcvs("E1", "c", "0", "b", "0", 1.5).unwrap();
        ckt.resistor("R3", "c", "d", 1.0).unwrap();
        ckt.vccs("G1", "d", "0", "a", "0", 0.3).unwrap();
        ckt.cccs("F1", "d", "0", "V1", 0.2).unwrap();
        ckt.ccvs("H1", "e", "0", "V1", 0.8).unwrap();
        ckt.resistor("R4", "e", "0", 1.0).unwrap();
        ckt.resistor("R5", "d", "0", 3.0).unwrap();
        let probe = Probe::node("d");

        let omegas = [0.3, 1.0, 4.0];
        let faults: Vec<(ComponentId, f64)> = [
            ("R1", 1.4),
            ("C1", 0.3),
            ("L1", 1.0),
            ("E1", 1.8),
            ("G1", 0.45),
            ("F1", 0.1),
            ("H1", 1.2),
            ("R1", 0.6), // second deviation of the same component
        ]
        .iter()
        .map(|&(name, value)| (ckt.find(name).unwrap(), value))
        .collect();

        let mut engine = AcSweepEngine::new(&ckt, "V1", &probe).unwrap();
        let mut golden = Vec::new();
        let mut out = Vec::new();
        engine
            .sweep_faults_into(&omegas, &faults, &mut golden, &mut out)
            .unwrap();
        assert_eq!(golden.len(), omegas.len());
        assert_eq!(out.len(), faults.len() * omegas.len());
        assert_eq!(golden, engine.sample_at(&omegas).unwrap());

        for (fi, &(id, value)) in faults.iter().enumerate() {
            engine.restamp_component(id, value).unwrap();
            let exact = engine.sample_at(&omegas).unwrap();
            engine.reset();
            for (wi, (a, b)) in out[fi * omegas.len()..(fi + 1) * omegas.len()]
                .iter()
                .zip(&exact)
                .enumerate()
            {
                assert!(
                    (*a - *b).abs() <= 1e-11 * (1.0 + b.abs()),
                    "fault {fi} at ω={}: {a} vs {b}",
                    omegas[wi]
                );
            }
        }
        // The batch sweep leaves the engine at nominal.
        assert!(engine.is_nominal());
    }

    #[test]
    fn batch_fault_sweep_cancels_degenerate_same_node_stamps() {
        // A VCCS whose output terminals land on the same node stamps
        // nothing (its outer-product entries cancel); the batch sweep's
        // dense u column must cancel the same way, so deviating it
        // changes nothing on either path.
        let mut ckt = Circuit::new("degenerate");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "d", 1.0).unwrap();
        ckt.resistor("R2", "d", "0", 2.0).unwrap();
        ckt.vccs("G1", "d", "d", "in", "0", 0.3).unwrap();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("d")).unwrap();
        let omegas = [0.5, 2.0];
        let nominal = engine.sample_at(&omegas).unwrap();
        let g1 = ckt.find("G1").unwrap();
        let (mut golden, mut out) = (Vec::new(), Vec::new());
        engine
            .sweep_faults_into(&omegas, &[(g1, 0.9)], &mut golden, &mut out)
            .unwrap();
        assert_eq!(golden, nominal);
        assert_eq!(out, nominal, "degenerate deviation must be a no-op");
        engine.restamp_component(g1, 0.9).unwrap();
        assert_eq!(engine.sample_at(&omegas).unwrap(), nominal);
    }

    /// The menagerie circuit of `batch_fault_sweep_matches_restamp_path`:
    /// every element kind with a principal value.
    fn menagerie() -> (Circuit, Probe) {
        let mut ckt = Circuit::new("menagerie");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "a", 1.0).unwrap();
        ckt.capacitor("C1", "a", "0", 0.5).unwrap();
        ckt.inductor("L1", "a", "b", 0.7).unwrap();
        ckt.resistor("R2", "b", "0", 2.0).unwrap();
        ckt.vcvs("E1", "c", "0", "b", "0", 1.5).unwrap();
        ckt.resistor("R3", "c", "d", 1.0).unwrap();
        ckt.vccs("G1", "d", "0", "a", "0", 0.3).unwrap();
        ckt.cccs("F1", "d", "0", "V1", 0.2).unwrap();
        ckt.ccvs("H1", "e", "0", "V1", 0.8).unwrap();
        ckt.resistor("R4", "e", "0", 1.0).unwrap();
        ckt.resistor("R5", "d", "0", 3.0).unwrap();
        (ckt, Probe::node("d"))
    }

    #[test]
    fn multifault_sweep_matches_restamp_path() {
        let (ckt, probe) = menagerie();
        let omegas = [0.3, 1.0, 4.0];
        let tuple = |names: &[(&str, f64)]| -> Vec<(ComponentId, f64)> {
            names
                .iter()
                .map(|&(n, v)| (ckt.find(n).unwrap(), v))
                .collect()
        };
        // Doubles, a triple, a quad across G and B stamps, a rank-1
        // tuple, a tuple reusing components of earlier tuples, and an
        // empty tuple (priced as golden).
        let multifaults: Vec<Vec<(ComponentId, f64)>> = vec![
            tuple(&[("R1", 1.4), ("C1", 0.3)]),
            tuple(&[("L1", 1.0), ("E1", 1.8)]),
            tuple(&[("R2", 2.6), ("G1", 0.45), ("H1", 1.2)]),
            tuple(&[("R1", 0.6), ("C1", 0.7), ("L1", 0.5), ("F1", 0.1)]),
            tuple(&[("R5", 2.2)]),
            tuple(&[]),
        ];

        let mut engine = AcSweepEngine::new(&ckt, "V1", &probe).unwrap();
        let (mut golden, mut out) = (Vec::new(), Vec::new());
        engine
            .sweep_multifaults_into(&omegas, &multifaults, &mut golden, &mut out)
            .unwrap();
        assert_eq!(golden.len(), omegas.len());
        assert_eq!(out.len(), multifaults.len() * omegas.len());
        assert_eq!(golden, engine.sample_at(&omegas).unwrap());
        assert!(engine.is_nominal());

        for (fi, mf) in multifaults.iter().enumerate() {
            for &(id, value) in mf {
                engine.restamp_component(id, value).unwrap();
            }
            let exact = engine.sample_at(&omegas).unwrap();
            engine.reset();
            for (wi, (a, b)) in out[fi * omegas.len()..(fi + 1) * omegas.len()]
                .iter()
                .zip(&exact)
                .enumerate()
            {
                assert!(
                    (*a - *b).abs() <= 1e-11 * (1.0 + b.abs()),
                    "multi-fault {fi} at ω={}: {a} vs {b}",
                    omegas[wi]
                );
            }
        }
    }

    #[test]
    fn multifault_sweep_reduces_to_rank1() {
        let (ckt, probe) = menagerie();
        let omegas = [0.5, 2.0];
        let faults: Vec<(ComponentId, f64)> = [("R1", 1.3), ("C1", 0.4), ("E1", 1.1)]
            .iter()
            .map(|&(n, v)| (ckt.find(n).unwrap(), v))
            .collect();
        let singles: Vec<Vec<(ComponentId, f64)>> = faults.iter().map(|&f| vec![f]).collect();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &probe).unwrap();
        let (mut g1, mut rank1) = (Vec::new(), Vec::new());
        engine
            .sweep_faults_into(&omegas, &faults, &mut g1, &mut rank1)
            .unwrap();
        let (mut g2, mut rankk) = (Vec::new(), Vec::new());
        engine
            .sweep_multifaults_into(&omegas, &singles, &mut g2, &mut rankk)
            .unwrap();
        assert_eq!(g1, g2);
        for (a, b) in rank1.iter().zip(&rankk) {
            assert!(
                (*a - *b).abs() <= 1e-12 * (1.0 + b.abs()),
                "rank-1 vs Woodbury k=1: {a} vs {b}"
            );
        }
    }

    #[test]
    fn multifault_sweep_validates_like_restamp() {
        let ckt = rc();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("out")).unwrap();
        let r1 = ckt.find("R1").unwrap();
        let c1 = ckt.find("C1").unwrap();
        let v1 = ckt.find("V1").unwrap();
        let (mut golden, mut out) = (Vec::new(), Vec::new());
        // Duplicate component within one tuple.
        assert!(matches!(
            engine
                .sweep_multifaults_into(
                    &[1.0],
                    &[vec![(r1, 2e3), (r1, 3e3)]],
                    &mut golden,
                    &mut out
                )
                .unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        // Out-of-range value, no principal value, unknown component.
        assert!(matches!(
            engine
                .sweep_multifaults_into(
                    &[1.0],
                    &[vec![(r1, -2.0), (c1, 1e-6)]],
                    &mut golden,
                    &mut out
                )
                .unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine
                .sweep_multifaults_into(&[1.0], &[vec![(v1, 1.0)]], &mut golden, &mut out)
                .unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine
                .sweep_multifaults_into(
                    &[1.0],
                    &[vec![(ComponentId(42), 1.0)]],
                    &mut golden,
                    &mut out
                )
                .unwrap_err(),
            CircuitError::UnknownComponent(_)
        ));
        // The same component in *different* tuples is fine.
        engine
            .sweep_multifaults_into(
                &[1.0],
                &[vec![(r1, 2e3)], vec![(r1, 3e3), (c1, 2e-6)]],
                &mut golden,
                &mut out,
            )
            .unwrap();
    }

    /// A VCVS positive-feedback stage that is singular exactly at gain 3:
    /// node x sees `(3 − K)·v_x = v_in` with R1 = R2 = R3 = 1.
    fn feedback_gain_circuit(k: f64) -> Circuit {
        let mut ckt = Circuit::new("feedback");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "x", 1.0).unwrap();
        ckt.resistor("R2", "x", "0", 1.0).unwrap();
        ckt.vcvs("E1", "y", "0", "x", "0", k).unwrap();
        ckt.resistor("R3", "y", "x", 1.0).unwrap();
        // A load on the (ideal) VCVS output: its current is absorbed by
        // the E1 branch equation, so deviating R4 never moves the
        // singular point — handy for multi-fault tuples.
        ckt.resistor("R4", "y", "0", 1.0).unwrap();
        ckt
    }

    #[test]
    fn singular_deviation_is_attributed_to_its_batch_entry() {
        let ckt = feedback_gain_circuit(2.5);
        let e1 = ckt.find("E1").unwrap();
        let r1 = ckt.find("R1").unwrap();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("x")).unwrap();
        // Healthy entries before and after the sick one (E1 → 3.0).
        let faults = [(r1, 1.2), (e1, 3.0), (r1, 0.8)];
        let (mut golden, mut out) = (Vec::new(), Vec::new());
        let err = engine
            .sweep_faults_into(&[1.0, 2.0], &faults, &mut golden, &mut out)
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::SingularFault {
                fault: 1,
                omega: 1.0
            }
        );
        // Same attribution through the Woodbury path (tuple #1 is sick:
        // R4 rides along but cannot move the singular point).
        let r4 = ckt.find("R4").unwrap();
        let multifaults = vec![vec![(r1, 1.2)], vec![(r4, 1.3), (e1, 3.0)]];
        let err = engine
            .sweep_multifaults_into(&[2.0], &multifaults, &mut golden, &mut out)
            .unwrap_err();
        assert!(
            matches!(err, CircuitError::SingularFault { fault: 1, .. }),
            "wrong attribution: {err:?}"
        );
        // The sweep errored out cleanly: the engine still answers.
        assert!(engine.is_nominal());
        engine.response_at(1.0).unwrap();
    }

    #[test]
    fn batch_fault_sweep_validates_like_restamp() {
        let ckt = rc();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("out")).unwrap();
        let r1 = ckt.find("R1").unwrap();
        let v1 = ckt.find("V1").unwrap();
        let (mut golden, mut out) = (Vec::new(), Vec::new());
        assert!(matches!(
            engine
                .sweep_faults_into(&[1.0], &[(r1, -2.0)], &mut golden, &mut out)
                .unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine
                .sweep_faults_into(&[1.0], &[(v1, 1.0)], &mut golden, &mut out)
                .unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine
                .sweep_faults_into(&[1.0], &[(ComponentId(42), 1.0)], &mut golden, &mut out)
                .unwrap_err(),
            CircuitError::UnknownComponent(_)
        ));
    }

    #[test]
    fn restamp_validation_mirrors_set_value() {
        let ckt = rc();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("out")).unwrap();
        let r1 = ckt.find("R1").unwrap();
        let v1 = ckt.find("V1").unwrap();
        assert!(matches!(
            engine.restamp_component(r1, -1.0).unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine.restamp_component(r1, f64::NAN).unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine.restamp_component(v1, 2.0).unwrap_err(),
            CircuitError::InvalidValue { .. }
        ));
        assert!(matches!(
            engine.restamp_component(ComponentId(99), 1.0).unwrap_err(),
            CircuitError::UnknownComponent(_)
        ));
        // Failed restamps leave the engine untouched.
        assert!(engine.is_nominal());
    }

    #[test]
    fn engine_rejects_bad_input_and_probe() {
        let ckt = rc();
        assert!(matches!(
            AcSweepEngine::new(&ckt, "V9", &Probe::node("out")).unwrap_err(),
            CircuitError::UnknownComponent(_)
        ));
        assert!(matches!(
            AcSweepEngine::new(&ckt, "R1", &Probe::node("out")).unwrap_err(),
            CircuitError::NotASource(_)
        ));
        assert!(matches!(
            AcSweepEngine::new(&ckt, "V1", &Probe::node("zz")).unwrap_err(),
            CircuitError::UnknownNode(_)
        ));
    }

    #[test]
    fn current_source_input_excites() {
        let mut ckt = Circuit::new("norton");
        ckt.current_source("I1", "0", "a", 1.0).unwrap();
        ckt.resistor("R1", "a", "0", 5.0).unwrap();
        let mut engine = AcSweepEngine::new(&ckt, "I1", &Probe::node("a")).unwrap();
        let h = engine.response_at(1.0).unwrap();
        assert!((h - Complex64::from_real(5.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_at_frequency_reports_singular() {
        // A floating capacitor node is singular at every frequency in
        // this formulation only at DC; drive ω = 0 equivalent via a
        // disconnected node: easiest is an L-C tank resonance with zero
        // damping measured exactly at resonance (matrix stays regular),
        // so instead build a true source loop.
        let mut ckt = Circuit::new("loop");
        ckt.voltage_source("V1", "a", "0", 1.0).unwrap();
        ckt.voltage_source("V2", "a", "0", 1.0).unwrap();
        ckt.resistor("R1", "a", "0", 1.0).unwrap();
        let mut engine = AcSweepEngine::new(&ckt, "V1", &Probe::node("a")).unwrap();
        assert!(matches!(
            engine.response_at(1.0).unwrap_err(),
            CircuitError::Singular { .. }
        ));
    }
}
