//! Circuit analyses: AC sweep, DC operating point, transient, and
//! sensitivity.

pub mod ac;
pub mod dc;
pub mod fit;
pub mod sensitivity;
pub mod tran;

pub use ac::{sample_at, sweep, transfer, AcSweep, Probe};
pub use dc::{operating_point, OperatingPoint};
pub use fit::{fit_circuit, fit_rational, FitError};
pub use tran::{transient, TransientOptions, TransientResult};
