//! Circuit analyses: AC sweep (engine-backed, with a reference oracle),
//! DC operating point, transient, and sensitivity.

pub mod ac;
pub mod dc;
pub mod engine;
pub mod fit;
pub mod sensitivity;
pub mod tran;

pub use ac::{sample_at, sweep, sweep_reference, transfer, AcSweep, Probe};
pub use dc::{operating_point, OperatingPoint};
pub use engine::AcSweepEngine;
pub use fit::{fit_circuit, fit_rational, FitError};
pub use tran::{transient, TransientOptions, TransientResult};
