//! Component sensitivity of the frequency response.
//!
//! The tangent direction of a fault trajectory at the origin is the
//! gradient of the sampled response with respect to the component value.
//! Central-difference sensitivities computed here are used by the
//! sensitivity-based baseline test-frequency selector and by testability
//! analysis (components with near-parallel sensitivity vectors form
//! ambiguity groups).

use crate::analysis::ac::Probe;
use crate::analysis::engine::AcSweepEngine;
use crate::error::Result;
use crate::netlist::Circuit;

/// Relative perturbation used by central differences.
const REL_STEP: f64 = 1e-4;

/// One sensitivity row on a shared engine: central difference of the dB
/// magnitude under a ±`REL_STEP` restamp of `component`.
fn sensitivity_row(
    engine: &mut AcSweepEngine,
    circuit: &Circuit,
    component: &str,
    omegas: &[f64],
) -> Result<Vec<f64>> {
    let nominal =
        circuit
            .value(component)?
            .ok_or_else(|| crate::error::CircuitError::InvalidValue {
                component: component.to_string(),
                value: f64::NAN,
                reason: "component has no principal value to perturb",
            })?;
    let id = circuit
        .find(component)
        .expect("value() above resolved the component");

    engine.restamp_component(id, nominal * (1.0 + REL_STEP))?;
    let plus = engine.sample_at(omegas)?;
    engine.reset();
    engine.restamp_component(id, nominal * (1.0 - REL_STEP))?;
    let minus = engine.sample_at(omegas)?;
    engine.reset();

    Ok(plus
        .iter()
        .zip(&minus)
        .map(|(hp, hm)| {
            let dhp = 20.0 * hp.abs().max(1e-300).log10();
            let dhm = 20.0 * hm.abs().max(1e-300).log10();
            (dhp - dhm) / (2.0 * REL_STEP)
        })
        .collect())
}

/// Sensitivity of the magnitude response (in dB) at a set of frequencies
/// with respect to one component's value, normalised per unit *relative*
/// deviation: `∂|H|_dB / ∂(Δp/p)`.
///
/// # Errors
///
/// Propagates unknown-component and analysis errors. Components without a
/// principal value (sources, ideal op amps) yield
/// [`crate::CircuitError::InvalidValue`].
pub fn magnitude_db_sensitivity(
    circuit: &Circuit,
    component: &str,
    input: &str,
    probe: &Probe,
    omegas: &[f64],
) -> Result<Vec<f64>> {
    // One engine, two delta restamps: no circuit clones and no
    // per-frequency reassembly.
    let mut engine = AcSweepEngine::new(circuit, input, probe)?;
    sensitivity_row(&mut engine, circuit, component, omegas)
}

/// Sensitivity matrix: rows = faultable components (insertion order),
/// columns = frequencies. Entry `(i, j)` is the dB-magnitude sensitivity
/// of component `i` at frequency `j`.
///
/// Returns the component names alongside the matrix rows.
///
/// # Errors
///
/// Propagates analysis errors from [`magnitude_db_sensitivity`].
pub fn sensitivity_matrix(
    circuit: &Circuit,
    components: &[&str],
    input: &str,
    probe: &Probe,
    omegas: &[f64],
) -> Result<Vec<(String, Vec<f64>)>> {
    // One shared engine for the whole matrix; each row is a ± restamp pair.
    let mut engine = AcSweepEngine::new(circuit, input, probe)?;
    components
        .iter()
        .map(|&name| {
            sensitivity_row(&mut engine, circuit, name, omegas).map(|row| (name.to_string(), row))
        })
        .collect()
}

/// Cosine of the angle between two sensitivity vectors; values near ±1
/// indicate components that are hard to distinguish (their trajectories
/// leave the origin in nearly the same or opposite directions).
///
/// Returns 0 when either vector is (numerically) zero.
pub fn alignment(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sensitivity vectors must match in length");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-300 || nb < 1e-300 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Circuit {
        let mut ckt = Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        ckt
    }

    #[test]
    fn rc_sensitivity_matches_analytic() {
        // |H|² = 1/(1+(ωRC)²); d|H|dB/d(lnR) = −20/ln10 · (ωRC)²/(1+(ωRC)²).
        let ckt = rc();
        let probe = Probe::node("out");
        let w = 1000.0; // at the corner, (ωRC)² = 1 → expected −10/ln10·ln(10)=−...
        let s = magnitude_db_sensitivity(&ckt, "R1", "V1", &probe, &[w]).unwrap()[0];
        let x: f64 = 1.0; // (ωRC)²
        let expected = -20.0 / 10f64.ln() * x / (1.0 + x);
        assert!(
            (s - expected).abs() < 1e-3,
            "sensitivity {s} expected {expected}"
        );
    }

    #[test]
    fn r_and_c_symmetric_in_rc_network() {
        // H depends on the product RC only, so sensitivities match.
        let ckt = rc();
        let probe = Probe::node("out");
        let omegas = [100.0, 1000.0, 1e4];
        let sr = magnitude_db_sensitivity(&ckt, "R1", "V1", &probe, &omegas).unwrap();
        let sc = magnitude_db_sensitivity(&ckt, "C1", "V1", &probe, &omegas).unwrap();
        for (a, b) in sr.iter().zip(&sc) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Perfectly aligned → an ambiguity pair.
        assert!((alignment(&sr, &sc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_matrix_shape() {
        let ckt = rc();
        let m = sensitivity_matrix(
            &ckt,
            &["R1", "C1"],
            "V1",
            &Probe::node("out"),
            &[10.0, 1000.0],
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "R1");
        assert_eq!(m[0].1.len(), 2);
    }

    #[test]
    fn low_frequency_sensitivity_is_small() {
        // Far below the corner the response is ~1 regardless of R.
        let ckt = rc();
        let s =
            magnitude_db_sensitivity(&ckt, "R1", "V1", &Probe::node("out"), &[0.01]).unwrap()[0];
        assert!(s.abs() < 1e-3, "{s}");
    }

    #[test]
    fn source_has_no_sensitivity() {
        let ckt = rc();
        assert!(magnitude_db_sensitivity(&ckt, "V1", "V1", &Probe::node("out"), &[1.0]).is_err());
    }

    #[test]
    fn alignment_degenerate_cases() {
        assert_eq!(alignment(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((alignment(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert!((alignment(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
    }
}
