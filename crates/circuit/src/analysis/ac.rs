//! AC (frequency-domain) analysis.
//!
//! The workhorse of the fault-trajectory method: frequency responses of
//! golden and faulty circuits are computed here by solving the complex MNA
//! system across a frequency grid.

use ft_numerics::{decibel, Complex64, FrequencyGrid};
use serde::{Deserialize, Serialize};

use crate::error::{CircuitError, Result};
use crate::mna::{solve, Excitation, MnaLayout};
use crate::netlist::Circuit;

/// What to observe at the circuit output.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Probe {
    /// A single node voltage referred to ground.
    Node(String),
    /// A differential voltage `V(p) − V(n)`.
    Differential(String, String),
}

impl Probe {
    /// Convenience constructor for a node probe.
    pub fn node(name: impl Into<String>) -> Self {
        Probe::Node(name.into())
    }

    /// Convenience constructor for a differential probe.
    pub fn differential(p: impl Into<String>, n: impl Into<String>) -> Self {
        Probe::Differential(p.into(), n.into())
    }

    /// Evaluates the probe on a solved system.
    pub(crate) fn read(
        &self,
        circuit: &Circuit,
        sol: &crate::mna::MnaSolution,
    ) -> Result<Complex64> {
        match self {
            Probe::Node(name) => {
                let id = circuit
                    .find_node(name)
                    .ok_or_else(|| CircuitError::UnknownNode(name.clone()))?;
                Ok(sol.voltage(id))
            }
            Probe::Differential(p, n) => {
                let pid = circuit
                    .find_node(p)
                    .ok_or_else(|| CircuitError::UnknownNode(p.clone()))?;
                let nid = circuit
                    .find_node(n)
                    .ok_or_else(|| CircuitError::UnknownNode(n.clone()))?;
                Ok(sol.voltage_between(pid, nid))
            }
        }
    }
}

/// Complex transfer function `probe / input` at angular frequency
/// `omega` (rad/s), with `input` driven at `1∠0` and all other sources
/// zeroed.
///
/// # Errors
///
/// Propagates layout, probe, and singularity errors.
pub fn transfer(circuit: &Circuit, input: &str, probe: &Probe, omega: f64) -> Result<Complex64> {
    let layout = MnaLayout::new(circuit)?;
    transfer_with_layout(circuit, &layout, input, probe, omega)
}

/// [`transfer`] with a pre-built layout (avoids rebuilding per frequency).
///
/// The input source is resolved to a [`crate::ComponentId`] per call, so
/// no per-frequency allocation remains; even so, each call re-assembles
/// and re-factors the full MNA system — loops over frequencies should use
/// [`AcSweepEngine`](crate::analysis::engine::AcSweepEngine) instead.
///
/// # Errors
///
/// Propagates probe and singularity errors.
pub fn transfer_with_layout(
    circuit: &Circuit,
    layout: &MnaLayout,
    input: &str,
    probe: &Probe,
    omega: f64,
) -> Result<Complex64> {
    let excitation = Excitation::ac_unit(circuit, input)?;
    let sol = solve(circuit, layout, Complex64::jw(omega), &excitation)?;
    probe.read(circuit, &sol)
}

/// A completed AC sweep: the complex response at each grid frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcSweep {
    omegas: Vec<f64>,
    values: Vec<Complex64>,
}

impl AcSweep {
    /// Packages a completed sweep (used by the AC sweep engine).
    pub(crate) fn from_raw(omegas: Vec<f64>, values: Vec<Complex64>) -> Self {
        debug_assert_eq!(omegas.len(), values.len());
        AcSweep { omegas, values }
    }

    /// Grid frequencies (rad/s).
    #[inline]
    pub fn omegas(&self) -> &[f64] {
        &self.omegas
    }

    /// Complex responses, one per frequency.
    #[inline]
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.omegas.len()
    }

    /// `true` when the sweep has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.omegas.is_empty()
    }

    /// Magnitudes in dB (clamped at −300 dB so notches stay finite).
    pub fn magnitude_db(&self) -> Vec<f64> {
        self.values
            .iter()
            .map(|v| decibel::clamp_db(v.abs_db(), -300.0))
            .collect()
    }

    /// Linear magnitudes.
    pub fn magnitude(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.abs()).collect()
    }

    /// Phases in degrees.
    pub fn phase_deg(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.arg_deg()).collect()
    }

    /// Peak magnitude and the frequency where it occurs.
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.values
            .iter()
            .zip(&self.omegas)
            .map(|(v, &w)| (w, v.abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite magnitudes"))
    }
}

/// Sweeps the transfer function `probe / input` across `grid`.
///
/// Runs on the stamp-split
/// [`AcSweepEngine`](crate::analysis::engine::AcSweepEngine): the system
/// is stamped once and only refactored per frequency, with zero heap
/// allocation after warm-up. [`sweep_reference`] keeps the
/// assemble-per-frequency path as the verification oracle.
///
/// # Errors
///
/// Propagates layout, probe, and singularity errors (a singular system at
/// any grid point aborts the sweep).
pub fn sweep(
    circuit: &Circuit,
    input: &str,
    probe: &Probe,
    grid: &FrequencyGrid,
) -> Result<AcSweep> {
    let mut engine = crate::analysis::engine::AcSweepEngine::new(circuit, input, probe)?;
    engine.sweep(grid)
}

/// [`sweep`] on the reference path: the MNA system is re-assembled and a
/// fresh LU factorisation taken at every grid point. This is the oracle
/// the engine is property-tested against — slower, but with no stamp
/// bookkeeping that could drift from the netlist.
///
/// # Errors
///
/// As [`sweep`].
pub fn sweep_reference(
    circuit: &Circuit,
    input: &str,
    probe: &Probe,
    grid: &FrequencyGrid,
) -> Result<AcSweep> {
    let layout = MnaLayout::new(circuit)?;
    let mut values = Vec::with_capacity(grid.len());
    for omega in grid.iter() {
        values.push(transfer_with_layout(circuit, &layout, input, probe, omega)?);
    }
    Ok(AcSweep {
        omegas: grid.frequencies().to_vec(),
        values,
    })
}

/// Samples the transfer function at an arbitrary list of angular
/// frequencies (not necessarily sorted) — the signature-extraction entry
/// point used by the fault-trajectory method. Engine-backed, like
/// [`sweep`].
///
/// # Errors
///
/// Propagates layout, probe, and singularity errors.
pub fn sample_at(
    circuit: &Circuit,
    input: &str,
    probe: &Probe,
    omegas: &[f64],
) -> Result<Vec<Complex64>> {
    let mut engine = crate::analysis::engine::AcSweepEngine::new(circuit, input, probe)?;
    let mut out = Vec::with_capacity(omegas.len());
    engine.sweep_into(omegas, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Circuit {
        let mut ckt = Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        ckt
    }

    #[test]
    fn transfer_matches_analytic_rc() {
        let ckt = rc();
        let probe = Probe::node("out");
        // H(jω) = 1 / (1 + jωRC), RC = 1e-3.
        for &w in &[1.0, 100.0, 1000.0, 1e4, 1e6] {
            let h = transfer(&ckt, "V1", &probe, w).unwrap();
            let expected = Complex64::ONE / (Complex64::ONE + Complex64::jw(w * 1e-3));
            assert!((h - expected).abs() < 1e-12, "mismatch at ω={w}");
        }
    }

    #[test]
    fn sweep_collects_grid() {
        let ckt = rc();
        let grid = FrequencyGrid::log_space(1.0, 1e6, 25);
        let sw = sweep(&ckt, "V1", &Probe::node("out"), &grid).unwrap();
        assert_eq!(sw.len(), 25);
        assert!(!sw.is_empty());
        assert_eq!(sw.omegas().len(), sw.values().len());
        // Monotone decreasing magnitude for a first-order low-pass.
        let mags = sw.magnitude();
        for pair in mags.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
        // dB and linear agree.
        let db = sw.magnitude_db();
        assert!((db[0] - 20.0 * mags[0].log10()).abs() < 1e-9);
    }

    #[test]
    fn phase_behaviour() {
        let ckt = rc();
        let sw = sweep(
            &ckt,
            "V1",
            &Probe::node("out"),
            &FrequencyGrid::log_space(1.0, 1e6, 13),
        )
        .unwrap();
        let ph = sw.phase_deg();
        assert!(ph[0] > -1.0); // ≈0° well below the corner
        assert!(*ph.last().unwrap() < -89.0); // →−90° far above
    }

    #[test]
    fn differential_probe() {
        let ckt = rc();
        // V(in) − V(out) across the resistor.
        let h = transfer(&ckt, "V1", &Probe::differential("in", "out"), 1000.0).unwrap();
        let out = transfer(&ckt, "V1", &Probe::node("out"), 1000.0).unwrap();
        assert!((h + out - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn unknown_probe_node_rejected() {
        let ckt = rc();
        let err = transfer(&ckt, "V1", &Probe::node("missing"), 1.0).unwrap_err();
        assert!(matches!(err, CircuitError::UnknownNode(_)));
        let err = transfer(&ckt, "V1", &Probe::differential("in", "zz"), 1.0).unwrap_err();
        assert!(matches!(err, CircuitError::UnknownNode(_)));
    }

    #[test]
    fn sample_at_arbitrary_frequencies() {
        let ckt = rc();
        let samples = sample_at(&ckt, "V1", &Probe::node("out"), &[2000.0, 10.0, 500.0]).unwrap();
        assert_eq!(samples.len(), 3);
        // Order preserved: first sample is the highest frequency (lowest gain).
        assert!(samples[0].abs() < samples[1].abs());
    }

    #[test]
    fn peak_detection() {
        let ckt = rc();
        let sw = sweep(
            &ckt,
            "V1",
            &Probe::node("out"),
            &FrequencyGrid::log_space(1.0, 1e6, 7),
        )
        .unwrap();
        let (w, m) = sw.peak().unwrap();
        assert_eq!(w, 1.0); // low-pass peaks at the lowest frequency
        assert!((m - 1.0).abs() < 1e-6);
    }
}
