//! Transient analysis with trapezoidal integration.
//!
//! Reactive elements are replaced by their trapezoidal companion models
//! (Norton form for capacitors, branch form for inductors). With a fixed
//! timestep the conductance matrix is constant, so it is LU-factored once
//! and only the right-hand side is rebuilt per step — the standard fast
//! path for linear circuits.
//!
//! This is the workspace's *measurement path*: the multi-tone test
//! stimulus of the fault-trajectory method can be applied in the time
//! domain and the per-frequency response recovered with
//! [`ft_numerics::dsp::goertzel`], exactly as a bench instrument would.

use ft_numerics::{Lu, RMatrix};

use crate::element::Element;
use crate::error::{CircuitError, Result};
use crate::mna::MnaLayout;
use crate::netlist::{Circuit, ComponentId, NodeId};

/// Transient run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Total simulated time in seconds.
    pub t_stop: f64,
    /// Fixed timestep in seconds.
    pub dt: f64,
    /// Record every `record_every`-th step (1 = every step).
    pub record_every: usize,
}

impl TransientOptions {
    /// Creates options with validation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] when `t_stop` or `dt` is not
    /// positive/finite or `record_every` is zero.
    pub fn new(t_stop: f64, dt: f64) -> Result<Self> {
        if !t_stop.is_finite() || t_stop <= 0.0 {
            return Err(CircuitError::InvalidValue {
                component: "transient".into(),
                value: t_stop,
                reason: "t_stop must be positive and finite",
            });
        }
        if !dt.is_finite() || dt <= 0.0 || dt > t_stop {
            return Err(CircuitError::InvalidValue {
                component: "transient".into(),
                value: dt,
                reason: "dt must be positive, finite, and not exceed t_stop",
            });
        }
        Ok(TransientOptions {
            t_stop,
            dt,
            record_every: 1,
        })
    }

    /// Sets the recording decimation factor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] when `every` is zero.
    pub fn record_every(mut self, every: usize) -> Result<Self> {
        if every == 0 {
            return Err(CircuitError::InvalidValue {
                component: "transient".into(),
                value: 0.0,
                reason: "record_every must be at least 1",
            });
        }
        self.record_every = every;
        Ok(self)
    }
}

/// Recorded transient waveforms.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[node_id][sample]`.
    voltages: Vec<Vec<f64>>,
    dt_effective: f64,
}

impl TransientResult {
    /// Recorded time points (seconds).
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampling interval of the recorded points (seconds).
    #[inline]
    pub fn sample_interval(&self) -> f64 {
        self.dt_effective
    }

    /// Effective sampling rate of the recorded points (Hz).
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        1.0 / self.dt_effective
    }

    /// Waveform of a node by id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &[f64] {
        &self.voltages[id.index()]
    }

    /// Waveform of a node by name.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] when absent.
    pub fn node_by_name(&self, circuit: &Circuit, name: &str) -> Result<&[f64]> {
        let id = circuit
            .find_node(name)
            .ok_or_else(|| CircuitError::UnknownNode(name.to_string()))?;
        Ok(self.node(id))
    }
}

struct CapState {
    p: NodeId,
    n: NodeId,
    geq: f64,
    v_prev: f64,
    i_prev: f64,
}

struct IndState {
    branch_row: usize,
    p: NodeId,
    n: NodeId,
    req: f64,
    i_prev: f64,
    v_prev: f64,
}

/// Source value at time `t` for transient purposes: the waveform when one
/// is attached, otherwise the DC value.
fn tran_source_value(element: &Element, t: f64) -> f64 {
    match element {
        Element::VoltageSource { dc, waveform, .. }
        | Element::CurrentSource { dc, waveform, .. } => {
            waveform.as_ref().map_or(*dc, |w| w.eval(t))
        }
        _ => 0.0,
    }
}

/// Runs a transient simulation from the DC operating point at `t = 0`.
///
/// # Errors
///
/// Returns [`CircuitError::Singular`] for ill-posed circuits, plus layout
/// errors for bad controlled-source references.
pub fn transient(circuit: &Circuit, options: &TransientOptions) -> Result<TransientResult> {
    let layout = MnaLayout::new(circuit)?;
    let dim = layout.dim();
    let h = options.dt;

    // --- Initial condition: DC operating point with sources at t = 0. ---
    let op = {
        let mut at0 = circuit.clone();
        for comp in circuit.components() {
            if let Element::VoltageSource {
                waveform: Some(_), ..
            }
            | Element::CurrentSource {
                waveform: Some(_), ..
            } = comp.element()
            {
                let v0 = tran_source_value(comp.element(), 0.0);
                at0.set_source_dc(comp.name(), v0)?;
            }
        }
        super::dc::operating_point_with_layout(&at0, &layout)?
    };

    // --- Assemble the constant conductance matrix. ---
    let mut g = RMatrix::zeros(dim, dim);
    let mut caps = Vec::new();
    let mut inds = Vec::new();
    // (component, branch row) pairs for V sources, re-evaluated per step.
    let mut vsources = Vec::new();
    let mut isources = Vec::new();

    for (idx, comp) in circuit.components().iter().enumerate() {
        let id = ComponentId(idx);
        let nodes = comp.nodes();
        match comp.element() {
            Element::Resistor { r } => {
                stamp_conductance(&mut g, &layout, nodes[0], nodes[1], 1.0 / r);
            }
            Element::Capacitor { c } => {
                let geq = 2.0 * c / h;
                stamp_conductance(&mut g, &layout, nodes[0], nodes[1], geq);
                let v_prev = op.voltage(nodes[0]) - op.voltage(nodes[1]);
                caps.push(CapState {
                    p: nodes[0],
                    n: nodes[1],
                    geq,
                    v_prev,
                    i_prev: 0.0,
                });
            }
            Element::Inductor { l } => {
                let k = layout.branch_row(id).expect("inductor branch");
                stamp_branch(&mut g, &layout, nodes[0], nodes[1], k);
                let req = 2.0 * l / h;
                g[(k, k)] -= req;
                let i_prev = op.current(id).unwrap_or(0.0);
                inds.push(IndState {
                    branch_row: k,
                    p: nodes[0],
                    n: nodes[1],
                    req,
                    i_prev,
                    v_prev: 0.0,
                });
            }
            Element::VoltageSource { .. } => {
                let k = layout.branch_row(id).expect("vsource branch");
                stamp_branch(&mut g, &layout, nodes[0], nodes[1], k);
                vsources.push((id, k));
            }
            Element::CurrentSource { .. } => {
                isources.push((id, nodes[0], nodes[1]));
            }
            Element::Vcvs { gain } => {
                let k = layout.branch_row(id).expect("vcvs branch");
                stamp_branch(&mut g, &layout, nodes[0], nodes[1], k);
                if let Some(cp) = layout.node_row(nodes[2]) {
                    g[(k, cp)] -= gain;
                }
                if let Some(cn) = layout.node_row(nodes[3]) {
                    g[(k, cn)] += gain;
                }
            }
            Element::Vccs { gm } => {
                let (op_, on) = (layout.node_row(nodes[0]), layout.node_row(nodes[1]));
                let (cp, cn) = (layout.node_row(nodes[2]), layout.node_row(nodes[3]));
                for (out, so) in [(op_, 1.0), (on, -1.0)] {
                    let Some(o) = out else { continue };
                    for (ctl, si) in [(cp, 1.0), (cn, -1.0)] {
                        let Some(c) = ctl else { continue };
                        g[(o, c)] += gm * so * si;
                    }
                }
            }
            Element::Cccs { gain, control } => {
                let ctrl = circuit.find(control).expect("validated");
                let j = layout.branch_row(ctrl).expect("control branch");
                if let Some(o) = layout.node_row(nodes[0]) {
                    g[(o, j)] += gain;
                }
                if let Some(o) = layout.node_row(nodes[1]) {
                    g[(o, j)] -= gain;
                }
            }
            Element::Ccvs { r, control } => {
                let ctrl = circuit.find(control).expect("validated");
                let j = layout.branch_row(ctrl).expect("control branch");
                let k = layout.branch_row(id).expect("ccvs branch");
                stamp_branch(&mut g, &layout, nodes[0], nodes[1], k);
                g[(k, j)] -= r;
            }
            Element::IdealOpAmp => {
                let k = layout.branch_row(id).expect("opamp branch");
                if let Some(o) = layout.node_row(nodes[2]) {
                    g[(o, k)] += 1.0;
                }
                if let Some(ip) = layout.node_row(nodes[0]) {
                    g[(k, ip)] += 1.0;
                }
                if let Some(inn) = layout.node_row(nodes[1]) {
                    g[(k, inn)] -= 1.0;
                }
            }
        }
    }

    let lu = Lu::factor(&g).map_err(CircuitError::from)?;

    // --- Time march. ---
    let n_steps = (options.t_stop / h).round() as usize;
    let n_nodes = circuit.node_count();
    let mut times = Vec::new();
    let mut voltages: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];

    // Record initial point.
    times.push(0.0);
    for (node_idx, v) in voltages.iter_mut().enumerate() {
        v.push(op.voltage(NodeId(node_idx)));
    }

    let mut rhs = vec![0.0f64; dim];
    for step in 1..=n_steps {
        let t = step as f64 * h;
        rhs.fill(0.0);

        for &(id, k) in &vsources {
            rhs[k] = tran_source_value(circuit.component(id).element(), t);
        }
        for &(id, p, n) in &isources {
            let i = tran_source_value(circuit.component(id).element(), t);
            if let Some(r) = layout.node_row(p) {
                rhs[r] -= i;
            }
            if let Some(r) = layout.node_row(n) {
                rhs[r] += i;
            }
        }
        for cap in &caps {
            // Norton companion: source geq·v_prev + i_prev into node p.
            let i_eq = cap.geq * cap.v_prev + cap.i_prev;
            if let Some(r) = layout.node_row(cap.p) {
                rhs[r] += i_eq;
            }
            if let Some(r) = layout.node_row(cap.n) {
                rhs[r] -= i_eq;
            }
        }
        for ind in &inds {
            rhs[ind.branch_row] = -(ind.req * ind.i_prev + ind.v_prev);
        }

        let x = lu.solve(&rhs);

        // State updates.
        let node_v = |node: NodeId| -> f64 { layout.node_row(node).map_or(0.0, |r| x[r]) };
        for cap in &mut caps {
            let v_new = node_v(cap.p) - node_v(cap.n);
            let i_new = cap.geq * (v_new - cap.v_prev) - cap.i_prev;
            cap.v_prev = v_new;
            cap.i_prev = i_new;
        }
        for ind in &mut inds {
            let i_new = x[ind.branch_row];
            let v_new = node_v(ind.p) - node_v(ind.n);
            ind.i_prev = i_new;
            ind.v_prev = v_new;
        }

        if step % options.record_every == 0 {
            times.push(t);
            voltages[0].push(0.0);
            for (node_idx, v) in voltages.iter_mut().enumerate().skip(1) {
                let r = layout
                    .node_row(NodeId(node_idx))
                    .expect("non-ground node has a row");
                v.push(x[r]);
            }
        }
    }

    Ok(TransientResult {
        times,
        voltages,
        dt_effective: h * options.record_every as f64,
    })
}

fn stamp_conductance(g: &mut RMatrix, layout: &MnaLayout, p: NodeId, n: NodeId, y: f64) {
    let (rp, rn) = (layout.node_row(p), layout.node_row(n));
    if let Some(i) = rp {
        g[(i, i)] += y;
    }
    if let Some(i) = rn {
        g[(i, i)] += y;
    }
    if let (Some(i), Some(j)) = (rp, rn) {
        g[(i, j)] -= y;
        g[(j, i)] -= y;
    }
}

fn stamp_branch(g: &mut RMatrix, layout: &MnaLayout, p: NodeId, n: NodeId, k: usize) {
    if let Some(i) = layout.node_row(p) {
        g[(i, k)] += 1.0;
        g[(k, i)] += 1.0;
    }
    if let Some(i) = layout.node_row(n) {
        g[(i, k)] -= 1.0;
        g[(k, i)] -= 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Waveform;

    #[test]
    fn options_validated() {
        assert!(TransientOptions::new(-1.0, 0.1).is_err());
        assert!(TransientOptions::new(1.0, 0.0).is_err());
        assert!(TransientOptions::new(1.0, 2.0).is_err());
        assert!(TransientOptions::new(1.0, 0.1)
            .unwrap()
            .record_every(0)
            .is_err());
        let o = TransientOptions::new(1.0, 0.1)
            .unwrap()
            .record_every(2)
            .unwrap();
        assert_eq!(o.record_every, 2);
    }

    #[test]
    fn rc_step_response() {
        // Step 0→1 V into R=1k, C=1µF: v(t) = 1 − e^{−t/τ}, τ = 1 ms.
        let mut ckt = Circuit::new("rc-step");
        ckt.voltage_source_full(
            "V1",
            "in",
            "0",
            0.0,
            1.0,
            0.0,
            Some(Waveform::Step {
                low: 0.0,
                high: 1.0,
                t0: 0.0 + 1e-9,
            }),
        )
        .unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let opt = TransientOptions::new(5e-3, 1e-6).unwrap();
        let result = transient(&ckt, &opt).unwrap();
        let v = result.node_by_name(&ckt, "out").unwrap();
        let t = result.times();
        // Compare at t = τ and t = 3τ.
        for &(t_check, expect) in &[(1e-3, 1.0 - (-1.0f64).exp()), (3e-3, 1.0 - (-3.0f64).exp())] {
            let idx = t
                .iter()
                .position(|&x| (x - t_check).abs() < 1e-9)
                .expect("time point exists");
            assert!(
                (v[idx] - expect).abs() < 1e-3,
                "v({t_check}) = {} expected {expect}",
                v[idx]
            );
        }
    }

    #[test]
    fn sine_steady_state_amplitude_matches_ac() {
        // RC low-pass driven at the corner: steady-state amplitude 1/√2.
        let mut ckt = Circuit::new("rc-sine");
        let f_hz = 1000.0 / std::f64::consts::TAU; // ω = 1000 rad/s
        ckt.voltage_source_full(
            "V1",
            "in",
            "0",
            0.0,
            1.0,
            0.0,
            Some(Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                freq_hz: f_hz,
                phase_rad: 0.0,
            }),
        )
        .unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();

        let period = 1.0 / f_hz;
        // Simulate 12 periods; measure the last 4.
        let dt = period / 200.0;
        let opt = TransientOptions::new(12.0 * period, dt).unwrap();
        let result = transient(&ckt, &opt).unwrap();
        let v = result.node_by_name(&ckt, "out").unwrap();
        let tail = &v[v.len() - 800..];
        let amp = ft_numerics::dsp::tone_amplitude(
            tail,
            f_hz,
            result.sample_rate(),
            ft_numerics::dsp::Window::Rectangular,
        );
        assert!(
            (amp - 1.0 / 2f64.sqrt()).abs() < 2e-3,
            "steady-state amplitude {amp}"
        );
    }

    #[test]
    fn lc_tank_oscillates_with_energy_conservation() {
        // Series RLC with tiny R: damped oscillation at ω ≈ 1/√(LC).
        let mut ckt = Circuit::new("rlc");
        ckt.voltage_source_full(
            "V1",
            "in",
            "0",
            1.0,
            1.0,
            0.0,
            Some(Waveform::Step {
                low: 1.0,
                high: 0.0,
                t0: 1e-9,
            }),
        )
        .unwrap();
        ckt.resistor("R1", "in", "a", 1.0).unwrap();
        ckt.inductor("L1", "a", "b", 1e-3).unwrap();
        ckt.capacitor("C1", "b", "0", 1e-6).unwrap();
        let opt = TransientOptions::new(2e-3, 1e-7).unwrap();
        let result = transient(&ckt, &opt).unwrap();
        let v = result.node_by_name(&ckt, "b").unwrap();
        // ω0 = 1/√(LC) ≈ 31623 rad/s → f ≈ 5033 Hz; count zero crossings.
        let mut crossings = 0;
        for w in v.windows(2) {
            if w[0].signum() != w[1].signum() {
                crossings += 1;
            }
        }
        // 2 ms × 5033 Hz ≈ 10 periods → ≈ 20 crossings.
        assert!(
            (15..=25).contains(&crossings),
            "unexpected crossing count {crossings}"
        );
    }

    #[test]
    fn initial_condition_from_dc() {
        // Source held at 2 V: output should start (and stay) at 2 V.
        let mut ckt = Circuit::new("hold");
        ckt.voltage_source("V1", "in", "0", 2.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        ckt.resistor("R2", "out", "0", 1e9).unwrap();
        let opt = TransientOptions::new(1e-3, 1e-5).unwrap();
        let result = transient(&ckt, &opt).unwrap();
        let v = result.node_by_name(&ckt, "out").unwrap();
        // The bleeder divider sets the exact level: 2·1e9/(1e9 + 1e3).
        let expected = 2.0 * 1e9 / (1e9 + 1e3);
        for &sample in v {
            assert!((sample - expected).abs() < 1e-9, "drift: {sample}");
        }
    }

    #[test]
    fn recording_decimation() {
        let mut ckt = Circuit::new("dec");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "0", 1e3).unwrap();
        let opt = TransientOptions::new(1e-3, 1e-5)
            .unwrap()
            .record_every(10)
            .unwrap();
        let result = transient(&ckt, &opt).unwrap();
        // 100 steps / 10 + initial point = 11.
        assert_eq!(result.times().len(), 11);
        assert!((result.sample_interval() - 1e-4).abs() < 1e-15);
    }
}
