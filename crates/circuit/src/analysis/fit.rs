//! Rational transfer-function fitting (Levy's complex least squares).
//!
//! Recovers a closed-form `H(s) = N(s)/D(s)` from sampled frequency
//! response data — the bridge from simulated (or measured) sweeps back to
//! poles, zeros, ω₀ and Q. Levy's linearisation minimises
//! `Σ |N(jωk) − Hk·D(jωk)|²` with `D` monic, which is linear in the
//! unknown coefficients; frequencies are normalised by their geometric
//! mean before solving so the Vandermonde-like normal equations stay well
//! conditioned over multi-decade sweeps.

use ft_numerics::{Complex64, Lu, Poly, RMatrix, TransferFunction};

use crate::analysis::ac::Probe;
use crate::error::Result;
use crate::netlist::Circuit;

/// Error from rational fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer samples than free coefficients.
    TooFewSamples {
        /// Samples provided.
        samples: usize,
        /// Coefficients to determine.
        needed: usize,
    },
    /// The normal equations were singular (over-parameterised fit or
    /// degenerate data).
    Singular,
    /// Input slices differ in length or contain non-finite values.
    BadInput,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples { samples, needed } => write!(
                f,
                "need at least {needed} samples for the requested orders, got {samples}"
            ),
            FitError::Singular => write!(f, "normal equations are singular"),
            FitError::BadInput => write!(f, "invalid sample data"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fits `H(s) = N(s)/D(s)` with `deg N = num_order`, `deg D = den_order`
/// (monic denominator) to samples `values[k] = H(jω_k)`.
///
/// # Errors
///
/// Returns [`FitError`] on inconsistent input, insufficient samples, or
/// singular normal equations.
pub fn fit_rational(
    omegas: &[f64],
    values: &[Complex64],
    num_order: usize,
    den_order: usize,
) -> std::result::Result<TransferFunction, FitError> {
    if omegas.len() != values.len()
        || omegas.iter().any(|w| !w.is_finite() || *w <= 0.0)
        || values.iter().any(|v| !v.is_finite())
    {
        return Err(FitError::BadInput);
    }
    let n_params = (num_order + 1) + den_order;
    // Each complex sample yields two real equations.
    if 2 * omegas.len() < n_params {
        return Err(FitError::TooFewSamples {
            samples: omegas.len(),
            needed: n_params.div_ceil(2),
        });
    }

    // Normalise frequencies by the geometric mean for conditioning.
    let log_mean = omegas.iter().map(|w| w.ln()).sum::<f64>() / omegas.len() as f64;
    let w_scale = log_mean.exp();

    // Normal equations AᵀA·x = Aᵀy assembled sample by sample.
    let mut ata = RMatrix::zeros(n_params, n_params);
    let mut aty = vec![0.0; n_params];
    let mut row = vec![Complex64::ZERO; n_params];

    for (&w, &h) in omegas.iter().zip(values) {
        let s = Complex64::jw(w / w_scale);
        // Numerator columns: s^i.
        let mut p = Complex64::ONE;
        for item in row.iter_mut().take(num_order + 1) {
            *item = p;
            p *= s;
        }
        // Denominator columns: −H·s^i for i = 0..den_order−1.
        let mut p = Complex64::ONE;
        for item in row.iter_mut().skip(num_order + 1) {
            *item = -(h * p);
            p *= s;
        }
        // RHS: H·s^den_order.
        let y = h * s.powi(den_order as i32);

        for i in 0..n_params {
            for j in i..n_params {
                // Re(conj(a_i)·a_j) accumulates both real/imag rows.
                let v = row[i].re * row[j].re + row[i].im * row[j].im;
                ata[(i, j)] += v;
                if i != j {
                    ata[(j, i)] += v;
                }
            }
            aty[i] += row[i].re * y.re + row[i].im * y.im;
        }
    }

    let lu = Lu::factor(&ata).map_err(|_| FitError::Singular)?;
    let x = lu.solve(&aty);

    // De-normalise: coefficient of s^i was fitted against (s/w_scale)^i.
    let mut num_coeffs: Vec<f64> = x[..=num_order]
        .iter()
        .enumerate()
        .map(|(i, &c)| c / w_scale.powi(i as i32))
        .collect();
    let mut den_coeffs: Vec<f64> = x[num_order + 1..]
        .iter()
        .enumerate()
        .map(|(i, &c)| c / w_scale.powi(i as i32))
        .collect();
    den_coeffs.push(1.0 / w_scale.powi(den_order as i32)); // monic in scaled domain

    // Rescale so the true denominator is monic.
    let lead = *den_coeffs.last().expect("non-empty");
    for c in &mut num_coeffs {
        *c /= lead;
    }
    for c in &mut den_coeffs {
        *c /= lead;
    }

    Ok(TransferFunction::new(
        Poly::new(num_coeffs),
        Poly::new(den_coeffs),
    ))
}

/// Simulates `circuit` on `omegas` and fits a rational function to the
/// response — closed-form recovery from the MNA simulator.
///
/// # Errors
///
/// Propagates simulation errors; fit errors are reported as
/// [`crate::CircuitError::InvalidValue`] with the fit message.
pub fn fit_circuit(
    circuit: &Circuit,
    input: &str,
    probe: &Probe,
    omegas: &[f64],
    num_order: usize,
    den_order: usize,
) -> Result<TransferFunction> {
    let samples = crate::analysis::ac::sample_at(circuit, input, probe, omegas)?;
    fit_rational(omegas, &samples, num_order, den_order).map_err(|e| {
        crate::error::CircuitError::InvalidValue {
            component: "rational-fit".into(),
            value: f64::NAN,
            reason: match e {
                FitError::TooFewSamples { .. } => "too few samples for fit",
                FitError::Singular => "fit normal equations singular",
                FitError::BadInput => "invalid fit input",
            },
        }
    })
}

/// Maximum relative magnitude error of a fitted function against samples.
pub fn fit_error(tf: &TransferFunction, omegas: &[f64], values: &[Complex64]) -> f64 {
    omegas
        .iter()
        .zip(values)
        .map(|(&w, &h)| {
            let m = tf.eval_jw(w);
            (m - h).abs() / h.abs().max(1e-300)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{tow_thomas, tow_thomas_normalized, TowThomasParams};
    use ft_numerics::FrequencyGrid;

    fn grid() -> Vec<f64> {
        FrequencyGrid::log_space(0.01, 100.0, 61)
            .frequencies()
            .to_vec()
    }

    #[test]
    fn fits_first_order_rc_exactly() {
        // H = 1/(1 + s·RC), RC = 1e-3.
        let omegas: Vec<f64> = FrequencyGrid::log_space(1.0, 1e6, 41)
            .frequencies()
            .to_vec();
        let values: Vec<Complex64> = omegas
            .iter()
            .map(|&w| Complex64::ONE / (Complex64::ONE + Complex64::jw(w * 1e-3)))
            .collect();
        let tf = fit_rational(&omegas, &values, 0, 1).unwrap();
        assert!(fit_error(&tf, &omegas, &values) < 1e-9);
        // Pole at −1000 rad/s.
        let poles = tf.poles();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re + 1000.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_tow_thomas_descriptors_from_simulation() {
        let bench = tow_thomas_normalized(1.0).unwrap();
        let omegas = grid();
        let tf = fit_circuit(&bench.circuit, "V1", &bench.probe, &omegas, 0, 2).unwrap();
        let so = tf.second_order_descriptors().expect("second order");
        assert!((so.w0 - 1.0).abs() < 1e-6, "w0 {}", so.w0);
        assert!((so.q - 1.0).abs() < 1e-6, "q {}", so.q);
        assert!((tf.dc_gain() - 1.0).abs() < 1e-6, "k {}", tf.dc_gain());
        assert!(tf.is_stable());
    }

    #[test]
    fn recovers_shifted_parameters_after_fault() {
        // +30% on R4 scales ω0 by 1/√1.3 and leaves the DC gain alone.
        let mut params = TowThomasParams::normalized(1.0);
        params.r4 = 1.3;
        let ckt = tow_thomas(&params).unwrap();
        let omegas = grid();
        let tf = fit_circuit(&ckt, "V1", &Probe::node("lp"), &omegas, 0, 2).unwrap();
        let so = tf.second_order_descriptors().unwrap();
        assert!((so.w0 - 1.0 / 1.3f64.sqrt()).abs() < 1e-6, "w0 {}", so.w0);
        assert!((tf.dc_gain() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fits_bandpass_with_numerator_zero() {
        let bench = tow_thomas_normalized(2.0).unwrap();
        let omegas = grid();
        let tf = fit_circuit(&bench.circuit, "V1", &Probe::node("bp"), &omegas, 1, 2).unwrap();
        // Band-pass numerator ∝ s: constant term ≈ 0.
        let n = tf.num().coeffs();
        assert!(n[0].abs() < 1e-6 * n[1].abs(), "numerator {n:?}");
        let samples =
            crate::analysis::ac::sample_at(&bench.circuit, "V1", &Probe::node("bp"), &omegas)
                .unwrap();
        assert!(fit_error(&tf, &omegas, &samples) < 1e-6);
    }

    #[test]
    fn too_few_samples_rejected() {
        let err = fit_rational(&[1.0], &[Complex64::ONE], 2, 3).unwrap_err();
        assert!(matches!(err, FitError::TooFewSamples { .. }));
        assert!(err.to_string().contains("samples"));
    }

    #[test]
    fn bad_input_rejected() {
        assert_eq!(
            fit_rational(&[1.0, 2.0], &[Complex64::ONE], 0, 1).unwrap_err(),
            FitError::BadInput
        );
        assert_eq!(
            fit_rational(&[-1.0, 2.0], &[Complex64::ONE, Complex64::ONE], 0, 1).unwrap_err(),
            FitError::BadInput
        );
        assert_eq!(
            fit_rational(
                &[1.0, 2.0],
                &[Complex64::new(f64::NAN, 0.0), Complex64::ONE],
                0,
                1
            )
            .unwrap_err(),
            FitError::BadInput
        );
    }

    #[test]
    fn fit_error_metric() {
        let tf = TransferFunction::new(Poly::constant(1.0), Poly::new(vec![1.0, 1.0]));
        let omegas = [1.0];
        let exact = [tf.eval_jw(1.0)];
        assert!(fit_error(&tf, &omegas, &exact) < 1e-15);
        let off = [tf.eval_jw(1.0).scale(1.1)];
        let e = fit_error(&tf, &omegas, &off);
        assert!((e - 0.1 / 1.1).abs() < 1e-12, "{e}");
    }
}
