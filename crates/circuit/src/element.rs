//! Circuit element kinds and source waveforms.

use serde::{Deserialize, Serialize};

/// Time-domain waveform of an independent source (transient analysis).
///
/// AC analysis ignores the waveform and uses the source's AC magnitude and
/// phase; DC analysis uses the DC value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude·sin(2π·freq_hz·t + phase_rad)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
        /// Phase in radians.
        phase_rad: f64,
    },
    /// Sum of sinusoids — the multi-frequency test stimulus of the
    /// fault-trajectory method.
    MultiTone {
        /// Per-tone peak amplitudes.
        amplitudes: Vec<f64>,
        /// Per-tone frequencies in hertz.
        freqs_hz: Vec<f64>,
        /// Per-tone phases in radians.
        phases_rad: Vec<f64>,
    },
    /// Ideal step: `low` before `t0`, `high` at and after `t0`.
    Step {
        /// Value before the step.
        low: f64,
        /// Value from `t0` on.
        high: f64,
        /// Step instant in seconds.
        t0: f64,
    },
    /// Piecewise-linear waveform over `(t, v)` points; flat extrapolation
    /// outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Evaluates the waveform at time `t` (seconds).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
                phase_rad,
            } => offset + amplitude * (std::f64::consts::TAU * freq_hz * t + phase_rad).sin(),
            Waveform::MultiTone {
                amplitudes,
                freqs_hz,
                phases_rad,
            } => amplitudes
                .iter()
                .zip(freqs_hz)
                .zip(phases_rad)
                .map(|((&a, &f), &p)| a * (std::f64::consts::TAU * f * t + p).sin())
                .sum(),
            Waveform::Step { low, high, t0 } => {
                if t < *t0 {
                    *low
                } else {
                    *high
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// The element kind of a circuit component.
///
/// Two-terminal elements connect `[p, n]`; controlled sources connect
/// `[out_p, out_n, ctrl_p, ctrl_n]` (voltage-controlled) or `[out_p,
/// out_n]` plus a named control source (current-controlled); the ideal op
/// amp connects `[in_p, in_n, out]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Resistor, value in ohms.
    Resistor {
        /// Resistance in ohms (> 0).
        r: f64,
    },
    /// Capacitor, value in farads.
    Capacitor {
        /// Capacitance in farads (> 0).
        c: f64,
    },
    /// Inductor, value in henries. Always formulated with a branch
    /// current so DC analysis (where it is a short) stays well-posed.
    Inductor {
        /// Inductance in henries (> 0).
        l: f64,
    },
    /// Independent voltage source.
    VoltageSource {
        /// DC value in volts.
        dc: f64,
        /// AC magnitude (phasor analysis input).
        ac_mag: f64,
        /// AC phase in radians.
        ac_phase: f64,
        /// Optional transient waveform; falls back to `dc` when absent.
        waveform: Option<Waveform>,
    },
    /// Independent current source; positive current flows from `p`
    /// through the source to `n`.
    CurrentSource {
        /// DC value in amperes.
        dc: f64,
        /// AC magnitude.
        ac_mag: f64,
        /// AC phase in radians.
        ac_phase: f64,
        /// Optional transient waveform; falls back to `dc` when absent.
        waveform: Option<Waveform>,
    },
    /// Voltage-controlled voltage source (SPICE `E`).
    Vcvs {
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source (SPICE `G`).
    Vccs {
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Current-controlled current source (SPICE `F`); the control current
    /// is the branch current of the named voltage source.
    Cccs {
        /// Current gain.
        gain: f64,
        /// Name of the controlling voltage source.
        control: String,
    },
    /// Current-controlled voltage source (SPICE `H`).
    Ccvs {
        /// Transresistance in ohms.
        r: f64,
        /// Name of the controlling voltage source.
        control: String,
    },
    /// Ideal op amp (nullor): infinite gain, zero input current, enforced
    /// virtual short between the inputs.
    IdealOpAmp,
}

impl Element {
    /// Number of terminals the element connects.
    pub fn terminal_count(&self) -> usize {
        match self {
            Element::Resistor { .. }
            | Element::Capacitor { .. }
            | Element::Inductor { .. }
            | Element::VoltageSource { .. }
            | Element::CurrentSource { .. }
            | Element::Cccs { .. }
            | Element::Ccvs { .. } => 2,
            Element::Vcvs { .. } | Element::Vccs { .. } => 4,
            Element::IdealOpAmp => 3,
        }
    }

    /// `true` when MNA needs a branch-current unknown for this element.
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. }
                | Element::Inductor { .. }
                | Element::Vcvs { .. }
                | Element::Ccvs { .. }
                | Element::IdealOpAmp
        )
    }

    /// The *principal value* of the element — the single parameter that a
    /// parametric fault deviates (resistance, capacitance, inductance,
    /// gain, transconductance, transresistance). Independent sources and
    /// ideal op amps have none.
    pub fn principal_value(&self) -> Option<f64> {
        match self {
            Element::Resistor { r } => Some(*r),
            Element::Capacitor { c } => Some(*c),
            Element::Inductor { l } => Some(*l),
            Element::Vcvs { gain } => Some(*gain),
            Element::Vccs { gm } => Some(*gm),
            Element::Cccs { gain, .. } => Some(*gain),
            Element::Ccvs { r, .. } => Some(*r),
            Element::VoltageSource { .. } | Element::CurrentSource { .. } | Element::IdealOpAmp => {
                None
            }
        }
    }

    /// Replaces the principal value; returns `false` for elements without
    /// one.
    pub fn set_principal_value(&mut self, value: f64) -> bool {
        match self {
            Element::Resistor { r } => *r = value,
            Element::Capacitor { c } => *c = value,
            Element::Inductor { l } => *l = value,
            Element::Vcvs { gain } => *gain = value,
            Element::Vccs { gm } => *gm = value,
            Element::Cccs { gain, .. } => *gain = value,
            Element::Ccvs { r, .. } => *r = value,
            Element::VoltageSource { .. } | Element::CurrentSource { .. } | Element::IdealOpAmp => {
                return false
            }
        }
        true
    }

    /// `true` for independent (V or I) sources.
    pub fn is_independent_source(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::CurrentSource { .. }
        )
    }

    /// Short human-readable kind name (`"R"`, `"C"`, `"L"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Element::Resistor { .. } => "R",
            Element::Capacitor { .. } => "C",
            Element::Inductor { .. } => "L",
            Element::VoltageSource { .. } => "V",
            Element::CurrentSource { .. } => "I",
            Element::Vcvs { .. } => "E",
            Element::Vccs { .. } => "G",
            Element::Cccs { .. } => "F",
            Element::Ccvs { .. } => "H",
            Element::IdealOpAmp => "OA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_dc() {
        assert_eq!(Waveform::Dc(3.0).eval(0.0), 3.0);
        assert_eq!(Waveform::Dc(3.0).eval(1e9), 3.0);
    }

    #[test]
    fn waveform_sine() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            freq_hz: 1.0,
            phase_rad: 0.0,
        };
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((w.eval(0.25) - 3.0).abs() < 1e-12);
        assert!((w.eval(0.75) - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn waveform_multitone_sums() {
        let w = Waveform::MultiTone {
            amplitudes: vec![1.0, 1.0],
            freqs_hz: vec![1.0, 3.0],
            phases_rad: vec![0.0, 0.0],
        };
        let expected =
            (std::f64::consts::TAU * 0.1).sin() + (std::f64::consts::TAU * 3.0 * 0.1).sin();
        assert!((w.eval(0.1) - expected).abs() < 1e-12);
    }

    #[test]
    fn waveform_step() {
        let w = Waveform::Step {
            low: 0.0,
            high: 5.0,
            t0: 1.0,
        };
        assert_eq!(w.eval(0.999), 0.0);
        assert_eq!(w.eval(1.0), 5.0);
        assert_eq!(w.eval(2.0), 5.0);
    }

    #[test]
    fn waveform_pwl() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert_eq!(w.eval(0.5), 5.0);
        assert_eq!(w.eval(1.5), 10.0);
        assert_eq!(w.eval(5.0), 10.0);
        assert_eq!(Waveform::Pwl(vec![]).eval(1.0), 0.0);
    }

    #[test]
    fn terminal_counts() {
        assert_eq!(Element::Resistor { r: 1.0 }.terminal_count(), 2);
        assert_eq!(Element::Vcvs { gain: 1.0 }.terminal_count(), 4);
        assert_eq!(Element::IdealOpAmp.terminal_count(), 3);
        assert_eq!(
            Element::Cccs {
                gain: 1.0,
                control: "V1".into()
            }
            .terminal_count(),
            2
        );
    }

    #[test]
    fn branch_current_requirements() {
        assert!(Element::Inductor { l: 1.0 }.needs_branch_current());
        assert!(Element::IdealOpAmp.needs_branch_current());
        assert!(Element::Vcvs { gain: 2.0 }.needs_branch_current());
        assert!(!Element::Resistor { r: 1.0 }.needs_branch_current());
        assert!(!Element::Vccs { gm: 1.0 }.needs_branch_current());
    }

    #[test]
    fn principal_values() {
        let mut r = Element::Resistor { r: 100.0 };
        assert_eq!(r.principal_value(), Some(100.0));
        assert!(r.set_principal_value(120.0));
        assert_eq!(r.principal_value(), Some(120.0));

        let mut oa = Element::IdealOpAmp;
        assert_eq!(oa.principal_value(), None);
        assert!(!oa.set_principal_value(1.0));

        let v = Element::VoltageSource {
            dc: 1.0,
            ac_mag: 1.0,
            ac_phase: 0.0,
            waveform: None,
        };
        assert_eq!(v.principal_value(), None);
        assert!(v.is_independent_source());
    }

    #[test]
    fn kind_names() {
        assert_eq!(Element::Resistor { r: 1.0 }.kind(), "R");
        assert_eq!(Element::IdealOpAmp.kind(), "OA");
        assert_eq!(
            Element::Ccvs {
                r: 1.0,
                control: "V1".into()
            }
            .kind(),
            "H"
        );
    }
}
