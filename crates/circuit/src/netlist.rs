//! Circuit representation and builder API.
//!
//! A [`Circuit`] owns a set of named nodes (node `"0"` is ground) and named
//! components. Builder methods create nodes on first use, so a netlist is
//! written linearly, SPICE-style:
//!
//! ```
//! use ft_circuit::Circuit;
//!
//! let mut ckt = Circuit::new("rc-lowpass");
//! ckt.voltage_source("V1", "in", "0", 1.0)?;
//! ckt.resistor("R1", "in", "out", 1_000.0)?;
//! ckt.capacitor("C1", "out", "0", 1e-6)?;
//! assert_eq!(ckt.component_count(), 3);
//! # Ok::<(), ft_circuit::CircuitError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::element::{Element, Waveform};
use crate::error::{CircuitError, Result};
use crate::opamp::OpAmpModel;

/// Identifier of a node within one [`Circuit`]. Index 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the ground node.
    #[inline]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of a component within one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// Raw index into the circuit's component list.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named, placed element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    name: String,
    element: Element,
    nodes: Vec<NodeId>,
}

impl Component {
    /// Component name (unique within the circuit).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element kind and parameters.
    #[inline]
    pub fn element(&self) -> &Element {
        &self.element
    }

    /// Connected nodes in element-specific order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

/// A complete circuit: nodes, components, and name indices.
///
/// Node `"0"` (alias `"gnd"`) is the ground reference and always exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    /// Node names; index 0 is ground.
    nodes: Vec<String>,
    #[serde(skip)]
    node_index: HashMap<String, NodeId>,
    components: Vec<Component>,
    #[serde(skip)]
    component_index: HashMap<String, ComponentId>,
    /// Counter for auto-generated internal node names.
    internal_counter: usize,
}

impl Circuit {
    /// Creates an empty circuit with only the ground node.
    pub fn new(name: impl Into<String>) -> Self {
        let mut node_index = HashMap::new();
        node_index.insert("0".to_string(), NodeId(0));
        Circuit {
            name: name.into(),
            nodes: vec!["0".to_string()],
            node_index,
            components: Vec::new(),
            component_index: HashMap::new(),
            internal_counter: 0,
        }
    }

    /// Circuit name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes including ground.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// All components in insertion order.
    #[inline]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All node names, ground first.
    #[inline]
    pub fn node_names(&self) -> &[String] {
        &self.nodes
    }

    /// Resolves a node name (creating it if new). `"0"`, `"gnd"` and
    /// `"GND"` all map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let canonical = Self::canonical_node_name(name);
        if let Some(&id) = self.node_index.get(canonical.as_ref()) {
            return id;
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(canonical.to_string());
        self.node_index.insert(canonical.into_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let canonical = Self::canonical_node_name(name);
        self.node_index.get(canonical.as_ref()).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0]
    }

    fn canonical_node_name(name: &str) -> std::borrow::Cow<'_, str> {
        if name.eq_ignore_ascii_case("gnd") {
            std::borrow::Cow::Borrowed("0")
        } else {
            std::borrow::Cow::Borrowed(name)
        }
    }

    /// Creates a fresh internal node (used by macromodel expansion).
    pub fn fresh_internal_node(&mut self, prefix: &str) -> NodeId {
        loop {
            self.internal_counter += 1;
            let name = format!("_{prefix}#{}", self.internal_counter);
            if self.node_index.contains_key(&name) {
                continue;
            }
            return self.node(&name);
        }
    }

    fn insert(&mut self, name: &str, element: Element, nodes: Vec<NodeId>) -> Result<ComponentId> {
        if self.component_index.contains_key(name) {
            return Err(CircuitError::DuplicateComponent(name.to_string()));
        }
        let expected = element.terminal_count();
        let actual = nodes.len();
        if expected != actual {
            return Err(CircuitError::TerminalMismatch {
                component: name.to_string(),
                expected,
                actual,
            });
        }
        let id = ComponentId(self.components.len());
        self.components.push(Component {
            name: name.to_string(),
            element,
            nodes,
        });
        self.component_index.insert(name.to_string(), id);
        Ok(id)
    }

    fn check_positive(name: &str, value: f64, what: &'static str) -> Result<()> {
        if !value.is_finite() || value <= 0.0 {
            return Err(CircuitError::InvalidValue {
                component: name.to_string(),
                value,
                reason: what,
            });
        }
        Ok(())
    }

    fn check_finite(name: &str, value: f64, what: &'static str) -> Result<()> {
        if !value.is_finite() {
            return Err(CircuitError::InvalidValue {
                component: name.to_string(),
                value,
                reason: what,
            });
        }
        Ok(())
    }

    /// Adds a resistor of `r` ohms between `p` and `n`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `r` is not positive/finite.
    pub fn resistor(&mut self, name: &str, p: &str, n: &str, r: f64) -> Result<ComponentId> {
        Self::check_positive(name, r, "resistance must be positive and finite")?;
        let nodes = vec![self.node(p), self.node(n)];
        self.insert(name, Element::Resistor { r }, nodes)
    }

    /// Adds a capacitor of `c` farads between `p` and `n`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `c` is not positive/finite.
    pub fn capacitor(&mut self, name: &str, p: &str, n: &str, c: f64) -> Result<ComponentId> {
        Self::check_positive(name, c, "capacitance must be positive and finite")?;
        let nodes = vec![self.node(p), self.node(n)];
        self.insert(name, Element::Capacitor { c }, nodes)
    }

    /// Adds an inductor of `l` henries between `p` and `n`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `l` is not positive/finite.
    pub fn inductor(&mut self, name: &str, p: &str, n: &str, l: f64) -> Result<ComponentId> {
        Self::check_positive(name, l, "inductance must be positive and finite")?;
        let nodes = vec![self.node(p), self.node(n)];
        self.insert(name, Element::Inductor { l }, nodes)
    }

    /// Adds an independent voltage source with equal DC and AC magnitude
    /// `value` (the common test-bench case).
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `value` is not finite.
    pub fn voltage_source(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        value: f64,
    ) -> Result<ComponentId> {
        Self::check_finite(name, value, "source value must be finite")?;
        let nodes = vec![self.node(p), self.node(n)];
        self.insert(
            name,
            Element::VoltageSource {
                dc: value,
                ac_mag: value,
                ac_phase: 0.0,
                waveform: None,
            },
            nodes,
        )
    }

    /// Adds an independent voltage source with distinct DC / AC settings
    /// and an optional transient waveform.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or any value is not finite.
    #[allow(clippy::too_many_arguments)]
    pub fn voltage_source_full(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        dc: f64,
        ac_mag: f64,
        ac_phase: f64,
        waveform: Option<Waveform>,
    ) -> Result<ComponentId> {
        Self::check_finite(name, dc, "source DC value must be finite")?;
        Self::check_finite(name, ac_mag, "source AC magnitude must be finite")?;
        Self::check_finite(name, ac_phase, "source AC phase must be finite")?;
        let nodes = vec![self.node(p), self.node(n)];
        self.insert(
            name,
            Element::VoltageSource {
                dc,
                ac_mag,
                ac_phase,
                waveform,
            },
            nodes,
        )
    }

    /// Adds an independent current source; positive current flows from
    /// `p` through the source to `n`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `value` is not finite.
    pub fn current_source(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        value: f64,
    ) -> Result<ComponentId> {
        Self::check_finite(name, value, "source value must be finite")?;
        let nodes = vec![self.node(p), self.node(n)];
        self.insert(
            name,
            Element::CurrentSource {
                dc: value,
                ac_mag: value,
                ac_phase: 0.0,
                waveform: None,
            },
            nodes,
        )
    }

    /// Adds a voltage-controlled voltage source (`out_p/out_n` driven by
    /// `gain · (V(ctrl_p) − V(ctrl_n))`).
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `gain` is not finite.
    pub fn vcvs(
        &mut self,
        name: &str,
        out_p: &str,
        out_n: &str,
        ctrl_p: &str,
        ctrl_n: &str,
        gain: f64,
    ) -> Result<ComponentId> {
        Self::check_finite(name, gain, "gain must be finite")?;
        let nodes = vec![
            self.node(out_p),
            self.node(out_n),
            self.node(ctrl_p),
            self.node(ctrl_n),
        ];
        self.insert(name, Element::Vcvs { gain }, nodes)
    }

    /// Adds a voltage-controlled current source (transconductance `gm`).
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `gm` is not finite.
    pub fn vccs(
        &mut self,
        name: &str,
        out_p: &str,
        out_n: &str,
        ctrl_p: &str,
        ctrl_n: &str,
        gm: f64,
    ) -> Result<ComponentId> {
        Self::check_finite(name, gm, "transconductance must be finite")?;
        let nodes = vec![
            self.node(out_p),
            self.node(out_n),
            self.node(ctrl_p),
            self.node(ctrl_n),
        ];
        self.insert(name, Element::Vccs { gm }, nodes)
    }

    /// Adds a current-controlled current source; the control current is
    /// the branch current of voltage source `control`.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `gain` is not finite. The
    /// control reference is validated at analysis time.
    pub fn cccs(
        &mut self,
        name: &str,
        out_p: &str,
        out_n: &str,
        control: &str,
        gain: f64,
    ) -> Result<ComponentId> {
        Self::check_finite(name, gain, "gain must be finite")?;
        let nodes = vec![self.node(out_p), self.node(out_n)];
        self.insert(
            name,
            Element::Cccs {
                gain,
                control: control.to_string(),
            },
            nodes,
        )
    }

    /// Adds a current-controlled voltage source (transresistance `r`).
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or `r` is not finite.
    pub fn ccvs(
        &mut self,
        name: &str,
        out_p: &str,
        out_n: &str,
        control: &str,
        r: f64,
    ) -> Result<ComponentId> {
        Self::check_finite(name, r, "transresistance must be finite")?;
        let nodes = vec![self.node(out_p), self.node(out_n)];
        self.insert(
            name,
            Element::Ccvs {
                r,
                control: control.to_string(),
            },
            nodes,
        )
    }

    /// Adds an ideal op amp (`in_p`, `in_n`, `out`): zero input current,
    /// virtual short between the inputs, unlimited output drive.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken.
    pub fn ideal_opamp(
        &mut self,
        name: &str,
        in_p: &str,
        in_n: &str,
        out: &str,
    ) -> Result<ComponentId> {
        let nodes = vec![self.node(in_p), self.node(in_n), self.node(out)];
        self.insert(name, Element::IdealOpAmp, nodes)
    }

    /// Adds an op amp according to `model`: the ideal model places a
    /// nullor; the single-pole macromodel expands into primitive elements
    /// named `{name}.rin`, `{name}.gm`, `{name}.rp`, `{name}.cp`,
    /// `{name}.buf`, `{name}.rout` (all faultable individually).
    ///
    /// # Errors
    ///
    /// Returns an error if any generated component name is taken or a
    /// model parameter is out of range.
    pub fn opamp(
        &mut self,
        name: &str,
        in_p: &str,
        in_n: &str,
        out: &str,
        model: &OpAmpModel,
    ) -> Result<ComponentId> {
        match *model {
            OpAmpModel::Ideal => self.ideal_opamp(name, in_p, in_n, out),
            OpAmpModel::SinglePole {
                a0,
                gbw_rad,
                rin,
                rout,
            } => {
                Self::check_positive(name, a0, "open-loop gain must be positive")?;
                Self::check_positive(name, gbw_rad, "gain-bandwidth must be positive")?;
                Self::check_positive(name, rin, "input resistance must be positive")?;
                Self::check_positive(name, rout, "output resistance must be positive")?;
                // Pole frequency p = GBW / A0 (rad/s). Choose Rp = A0/gm with
                // gm = 1 mS, and Cp = 1/(Rp·p).
                let gm = 1e-3;
                let rp = a0 / gm;
                let pole = gbw_rad / a0;
                let cp = 1.0 / (rp * pole);
                let pole_node = self.fresh_internal_node(name);
                let pole_name = self.node_name(pole_node).to_string();
                let buf_node = self.fresh_internal_node(name);
                let buf_name = self.node_name(buf_node).to_string();

                self.resistor(&format!("{name}.rin"), in_p, in_n, rin)?;
                // gm stage: current out of the pole node proportional to
                // (v+ - v-); sign gives non-inverting overall gain.
                self.vccs(&format!("{name}.gm"), "0", &pole_name, in_p, in_n, gm)?;
                self.resistor(&format!("{name}.rp"), &pole_name, "0", rp)?;
                self.capacitor(&format!("{name}.cp"), &pole_name, "0", cp)?;
                self.vcvs(&format!("{name}.buf"), &buf_name, "0", &pole_name, "0", 1.0)?;
                self.resistor(&format!("{name}.rout"), &buf_name, out, rout)
            }
        }
    }

    /// Looks up a component by name.
    pub fn find(&self, name: &str) -> Option<ComponentId> {
        self.component_index.get(name).copied()
    }

    /// Component by id.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.0]
    }

    /// Component by name.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] when absent.
    pub fn component_by_name(&self, name: &str) -> Result<&Component> {
        self.find(name)
            .map(|id| self.component(id))
            .ok_or_else(|| CircuitError::UnknownComponent(name.to_string()))
    }

    /// Principal value of a named component (see
    /// [`Element::principal_value`]).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] when absent.
    pub fn value(&self, name: &str) -> Result<Option<f64>> {
        Ok(self.component_by_name(name)?.element.principal_value())
    }

    /// Overwrites the principal value of a named component — the fault
    /// injection primitive.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] when the component does
    /// not exist, and [`CircuitError::InvalidValue`] when it has no
    /// principal value or `value` is not finite (R/C/L must stay
    /// positive).
    pub fn set_value(&mut self, name: &str, value: f64) -> Result<()> {
        let id = self
            .find(name)
            .ok_or_else(|| CircuitError::UnknownComponent(name.to_string()))?;
        let element = &mut self.components[id.0].element;
        let must_be_positive = matches!(
            element,
            Element::Resistor { .. } | Element::Capacitor { .. } | Element::Inductor { .. }
        );
        if !value.is_finite() || (must_be_positive && value <= 0.0) {
            return Err(CircuitError::InvalidValue {
                component: name.to_string(),
                value,
                reason: if must_be_positive {
                    "value must be positive and finite"
                } else {
                    "value must be finite"
                },
            });
        }
        if !element.set_principal_value(value) {
            return Err(CircuitError::InvalidValue {
                component: name.to_string(),
                value,
                reason: "element has no principal value to set",
            });
        }
        Ok(())
    }

    /// Overwrites the DC value of an independent source (used, e.g., to
    /// pin the `t = 0` operating point before a transient run).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] when absent and
    /// [`CircuitError::NotASource`] for non-source components.
    pub fn set_source_dc(&mut self, name: &str, value: f64) -> Result<()> {
        let id = self
            .find(name)
            .ok_or_else(|| CircuitError::UnknownComponent(name.to_string()))?;
        match &mut self.components[id.0].element {
            Element::VoltageSource { dc, .. } | Element::CurrentSource { dc, .. } => {
                *dc = value;
                Ok(())
            }
            _ => Err(CircuitError::NotASource(name.to_string())),
        }
    }

    /// Names of all components that can carry a parametric fault
    /// (elements with a principal value), in insertion order.
    pub fn faultable_components(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| c.element.principal_value().is_some())
            .map(|c| c.name())
            .collect()
    }

    /// Names of passive (R/C/L) components, in insertion order — the
    /// fault set used by the paper's CUT.
    pub fn passive_components(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| {
                matches!(
                    c.element,
                    Element::Resistor { .. } | Element::Capacitor { .. } | Element::Inductor { .. }
                )
            })
            .map(|c| c.name())
            .collect()
    }

    /// Structural sanity checks: a ground connection exists, every node is
    /// touched by at least one component, controlled sources reference
    /// voltage sources.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        let mut touched = vec![false; self.nodes.len()];
        for comp in &self.components {
            for node in &comp.nodes {
                touched[node.0] = true;
            }
            match &comp.element {
                Element::Cccs { control, .. } | Element::Ccvs { control, .. } => {
                    let ctrl = self
                        .find(control)
                        .ok_or_else(|| CircuitError::UnknownComponent(control.clone()))?;
                    if !matches!(self.component(ctrl).element, Element::VoltageSource { .. }) {
                        return Err(CircuitError::InvalidControl {
                            component: comp.name.clone(),
                            control: control.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
        if !touched[0] {
            return Err(CircuitError::NoGround);
        }
        if let Some(idx) = touched.iter().skip(1).position(|t| !t) {
            return Err(CircuitError::UnknownNode(self.nodes[idx + 1].clone()));
        }
        Ok(())
    }

    /// Rebuilds the internal name indices. Needed after deserialisation
    /// (indices are skipped during serde round-trips).
    pub fn rebuild_indices(&mut self) {
        self.node_index = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), NodeId(i)))
            .collect();
        self.component_index = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ComponentId(i)))
            .collect();
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "* {} — {} nodes, {} components",
            self.name,
            self.node_count(),
            self.component_count()
        )?;
        for c in &self.components {
            let nodes: Vec<&str> = c.nodes.iter().map(|&n| self.node_name(n)).collect();
            writeln!(
                f,
                "{:<10} {:<4} [{}] {:?}",
                c.name,
                c.element.kind(),
                nodes.join(" "),
                c.element.principal_value()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Circuit {
        let mut ckt = Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        ckt
    }

    #[test]
    fn builder_creates_nodes_on_demand() {
        let ckt = rc();
        assert_eq!(ckt.node_count(), 3); // 0, in, out
        assert_eq!(ckt.component_count(), 3);
        assert!(ckt.find_node("in").is_some());
        assert!(ckt.find_node("nope").is_none());
    }

    #[test]
    fn ground_aliases() {
        let mut ckt = Circuit::new("g");
        let a = ckt.node("gnd");
        let b = ckt.node("GND");
        let c = ckt.node("0");
        assert_eq!(a, NodeId::GROUND);
        assert_eq!(b, NodeId::GROUND);
        assert_eq!(c, NodeId::GROUND);
        assert!(a.is_ground());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ckt = rc();
        let err = ckt.resistor("R1", "a", "b", 1.0).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateComponent("R1".into()));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut ckt = Circuit::new("bad");
        assert!(ckt.resistor("R1", "a", "0", -5.0).is_err());
        assert!(ckt.resistor("R2", "a", "0", 0.0).is_err());
        assert!(ckt.resistor("R3", "a", "0", f64::NAN).is_err());
        assert!(ckt.capacitor("C1", "a", "0", -1e-9).is_err());
        assert!(ckt.inductor("L1", "a", "0", f64::INFINITY).is_err());
        assert!(ckt.voltage_source("V1", "a", "0", f64::NAN).is_err());
    }

    #[test]
    fn value_read_and_write() {
        let mut ckt = rc();
        assert_eq!(ckt.value("R1").unwrap(), Some(1e3));
        ckt.set_value("R1", 1.2e3).unwrap();
        assert_eq!(ckt.value("R1").unwrap(), Some(1.2e3));
        // Sources have no principal value.
        assert_eq!(ckt.value("V1").unwrap(), None);
        assert!(ckt.set_value("V1", 2.0).is_err());
        // R must stay positive.
        assert!(ckt.set_value("R1", -1.0).is_err());
        // Unknown name.
        assert!(matches!(
            ckt.set_value("R99", 1.0),
            Err(CircuitError::UnknownComponent(_))
        ));
    }

    #[test]
    fn faultable_and_passive_lists() {
        let mut ckt = rc();
        ckt.vcvs("E1", "x", "0", "out", "0", 2.0).unwrap();
        assert_eq!(ckt.faultable_components(), vec!["R1", "C1", "E1"]);
        assert_eq!(ckt.passive_components(), vec!["R1", "C1"]);
    }

    #[test]
    fn validate_passes_for_good_circuit() {
        rc().validate().unwrap();
    }

    #[test]
    fn validate_flags_missing_ground() {
        let mut ckt = Circuit::new("floating");
        ckt.resistor("R1", "a", "b", 1.0).unwrap();
        assert_eq!(ckt.validate().unwrap_err(), CircuitError::NoGround);
    }

    #[test]
    fn validate_flags_bad_control() {
        let mut ckt = rc();
        ckt.cccs("F1", "x", "0", "R1", 2.0).unwrap();
        assert!(matches!(
            ckt.validate().unwrap_err(),
            CircuitError::InvalidControl { .. }
        ));
        let mut ckt2 = rc();
        ckt2.cccs("F1", "x", "0", "V9", 2.0).unwrap();
        assert!(matches!(
            ckt2.validate().unwrap_err(),
            CircuitError::UnknownComponent(_)
        ));
    }

    #[test]
    fn ideal_opamp_added() {
        let mut ckt = Circuit::new("oa");
        ckt.ideal_opamp("U1", "inp", "inn", "out").unwrap();
        let c = ckt.component_by_name("U1").unwrap();
        assert_eq!(c.element(), &Element::IdealOpAmp);
        assert_eq!(c.nodes().len(), 3);
    }

    #[test]
    fn macromodel_expansion_creates_primitives() {
        let mut ckt = Circuit::new("oa2");
        ckt.voltage_source("V1", "inp", "0", 1.0).unwrap();
        let model = OpAmpModel::typical();
        ckt.opamp("U1", "inp", "inn", "out", &model).unwrap();
        for suffix in ["rin", "gm", "rp", "cp", "buf", "rout"] {
            assert!(
                ckt.find(&format!("U1.{suffix}")).is_some(),
                "missing U1.{suffix}"
            );
        }
        // Macromodel parameters are faultable.
        assert!(ckt.faultable_components().contains(&"U1.rp"));
    }

    #[test]
    fn fresh_internal_nodes_unique() {
        let mut ckt = Circuit::new("x");
        let a = ckt.fresh_internal_node("u");
        let b = ckt.fresh_internal_node("u");
        assert_ne!(a, b);
    }

    #[test]
    fn display_contains_components() {
        let s = rc().to_string();
        assert!(s.contains("R1"));
        assert!(s.contains("C1"));
        assert!(s.contains("rc"));
    }

    #[test]
    fn serde_round_trip_with_rebuild() {
        // Serialize via Debug-equality proxy: use serde internally.
        let ckt = rc();
        let json = serde_json_like(&ckt);
        assert!(json.contains("R1"));
    }

    // The offline set has no serde_json; spot-check Serialize is derived
    // by using the serde-transcode-free path of a manual visitor is
    // overkill — instead just ensure rebuild_indices restores lookups.
    fn serde_json_like(c: &Circuit) -> String {
        format!("{c:?}")
    }

    #[test]
    fn rebuild_indices_restores_lookup() {
        let mut ckt = rc();
        ckt.node_index.clear();
        ckt.component_index.clear();
        assert!(ckt.find("R1").is_none());
        ckt.rebuild_indices();
        assert!(ckt.find("R1").is_some());
        assert!(ckt.find_node("out").is_some());
    }

    #[test]
    fn terminal_mismatch_detected() {
        let mut ckt = Circuit::new("tm");
        let nodes = vec![ckt.node("a")];
        let err = ckt
            .insert("R1", Element::Resistor { r: 1.0 }, nodes)
            .unwrap_err();
        assert!(matches!(err, CircuitError::TerminalMismatch { .. }));
    }
}
