//! Benchmark circuit library.
//!
//! Circuits used by the experiments, each packaged as a [`Benchmark`]
//! (netlist + input source + output probe + fault set + search band).
//!
//! The paper's CUT (a "normalized biquad negative feedback low-pass
//! filter" with seven passive components, per the FFM reference) is the
//! Tow-Thomas two-integrator loop of [`tow_thomas_normalized`]. The
//! physical netlist carries eight passives (the inverter needs two
//! resistors), but the inverter pair enters the transfer function only
//! through the ratio `R6/R5`, so faults on `R5` and `R6` are inherently
//! indistinguishable from the response: the circuit has exactly **seven**
//! independently diagnosable passive parameters — `R1, R2, R3, R4, R5,
//! C1, C2` — which is the fault set the benchmark exposes.

use serde::{Deserialize, Serialize};

use crate::analysis::ac::Probe;
use crate::error::Result;
use crate::netlist::Circuit;

/// A circuit packaged for the diagnosis experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// The netlist.
    pub circuit: Circuit,
    /// Name of the independent source that is the test input.
    pub input: String,
    /// Observation point.
    pub probe: Probe,
    /// Components whose faults the experiments diagnose.
    pub fault_set: Vec<String>,
    /// Human-readable description.
    pub description: String,
    /// Suggested test-frequency search band `(ω_min, ω_max)` in rad/s.
    pub search_band: (f64, f64),
}

impl Benchmark {
    /// Shorthand for the CUT's name.
    pub fn name(&self) -> &str {
        self.circuit.name()
    }
}

/// Parameters of a Tow-Thomas biquad.
///
/// Transfer function to the low-pass output (`lp` node):
///
/// ```text
///                (1/(R1·C1·R4·C2))
/// H(s) = ───────────────────────────────────,  k = R6/R5
///         s² + s/(R2·C1) + k/(R3·R4·C1·C2)
/// ```
///
/// giving `ω₀ = √(k/(R3·R4·C1·C2))`, `Q = R2·C1·ω₀`, and DC gain
/// `R3·R5/(R1·R6)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TowThomasParams {
    /// Input resistor (Ω).
    pub r1: f64,
    /// Damping resistor setting Q (Ω).
    pub r2: f64,
    /// Loop-feedback resistor (Ω).
    pub r3: f64,
    /// Second-integrator input resistor (Ω).
    pub r4: f64,
    /// Inverter input resistor (Ω).
    pub r5: f64,
    /// Inverter feedback resistor (Ω).
    pub r6: f64,
    /// First-integrator capacitor (F).
    pub c1: f64,
    /// Second-integrator capacitor (F).
    pub c2: f64,
}

impl TowThomasParams {
    /// Normalized design: ω₀ = 1 rad/s, DC gain 1, the given `q`.
    pub fn normalized(q: f64) -> Self {
        TowThomasParams {
            r1: 1.0,
            r2: q,
            r3: 1.0,
            r4: 1.0,
            r5: 1.0,
            r6: 1.0,
            c1: 1.0,
            c2: 1.0,
        }
    }

    /// Analytic natural frequency ω₀ (rad/s).
    pub fn w0(&self) -> f64 {
        (self.r6 / self.r5 / (self.r3 * self.r4 * self.c1 * self.c2)).sqrt()
    }

    /// Analytic quality factor.
    pub fn q(&self) -> f64 {
        self.r2 * self.c1 * self.w0()
    }

    /// Analytic DC gain of the low-pass output.
    pub fn dc_gain(&self) -> f64 {
        self.r3 * self.r5 / (self.r1 * self.r6)
    }
}

impl Default for TowThomasParams {
    fn default() -> Self {
        TowThomasParams::normalized(1.0)
    }
}

/// Builds a Tow-Thomas biquad with ideal op amps.
///
/// Nodes: `in` (input), `bp` (band-pass output, U1), `lp` (low-pass
/// output, U2), `inv` (inverter output, U3).
///
/// # Errors
///
/// Propagates builder errors for out-of-range parameter values.
pub fn tow_thomas(params: &TowThomasParams) -> Result<Circuit> {
    let mut ckt = Circuit::new("tow-thomas-biquad");
    ckt.voltage_source("V1", "in", "0", 1.0)?;
    // U1: summing lossy integrator (virtual ground n1).
    ckt.resistor("R1", "in", "n1", params.r1)?;
    ckt.resistor("R2", "bp", "n1", params.r2)?;
    ckt.capacitor("C1", "bp", "n1", params.c1)?;
    ckt.resistor("R3", "inv", "n1", params.r3)?;
    ckt.ideal_opamp("U1", "0", "n1", "bp")?;
    // U2: inverting integrator.
    ckt.resistor("R4", "bp", "n2", params.r4)?;
    ckt.capacitor("C2", "lp", "n2", params.c2)?;
    ckt.ideal_opamp("U2", "0", "n2", "lp")?;
    // U3: unity inverter closing the loop.
    ckt.resistor("R5", "lp", "n3", params.r5)?;
    ckt.resistor("R6", "inv", "n3", params.r6)?;
    ckt.ideal_opamp("U3", "0", "n3", "inv")?;
    Ok(ckt)
}

/// The paper's CUT: normalized Tow-Thomas low-pass (ω₀ = 1 rad/s) with
/// the seven-component fault set.
///
/// # Errors
///
/// Never fails for the normalized parameters; the `Result` mirrors the
/// builder API.
pub fn tow_thomas_normalized(q: f64) -> Result<Benchmark> {
    let params = TowThomasParams::normalized(q);
    let circuit = tow_thomas(&params)?;
    Ok(Benchmark {
        circuit,
        input: "V1".into(),
        probe: Probe::node("lp"),
        fault_set: ["R1", "R2", "R3", "R4", "R5", "C1", "C2"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        description: format!(
            "Normalized Tow-Thomas negative-feedback biquad low-pass, \
             ω₀ = 1 rad/s, Q = {q}; seven independently diagnosable passives \
             (R6 is the matched inverter partner of R5)"
        ),
        search_band: (0.01, 100.0),
    })
}

/// Unity-gain Sallen-Key low-pass.
///
/// `H(s) = 1 / (s²·R1·R2·C1·C2 + s·C2·(R1+R2) + 1)` — note the unity-gain
/// topology has `C1` as the positive-feedback capacitor.
///
/// # Errors
///
/// Propagates builder errors for out-of-range parameter values.
pub fn sallen_key_lowpass(r1: f64, r2: f64, c1: f64, c2: f64) -> Result<Benchmark> {
    let mut ckt = Circuit::new("sallen-key-lowpass");
    ckt.voltage_source("V1", "in", "0", 1.0)?;
    ckt.resistor("R1", "in", "a", r1)?;
    ckt.resistor("R2", "a", "b", r2)?;
    ckt.capacitor("C1", "a", "out", c1)?;
    ckt.capacitor("C2", "b", "0", c2)?;
    // Voltage follower: in+ = b, in− = out.
    ckt.ideal_opamp("U1", "b", "out", "out")?;
    Ok(Benchmark {
        circuit: ckt,
        input: "V1".into(),
        probe: Probe::node("out"),
        fault_set: ["R1", "R2", "C1", "C2"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        description: "Unity-gain Sallen-Key second-order low-pass".into(),
        search_band: (0.01, 100.0),
    })
}

/// Normalized unity-gain Sallen-Key Butterworth low-pass (ω₀ = 1 rad/s,
/// Q = 1/√2): R1 = R2 = 1 Ω, C1 = √2 F, C2 = 1/√2 F.
///
/// # Errors
///
/// Never fails for the normalized parameters.
pub fn sallen_key_normalized() -> Result<Benchmark> {
    sallen_key_lowpass(
        1.0,
        1.0,
        std::f64::consts::SQRT_2,
        1.0 / std::f64::consts::SQRT_2,
    )
}

/// Multiple-feedback (infinite-gain negative-feedback) low-pass.
///
/// `H(s) = −(1/(R1·R3·C1·C2)) / (s² + s·(1/C1)(1/R1 + 1/R2 + 1/R3) +
/// 1/(R2·R3·C1·C2))`, DC gain `−R2/R1`.
///
/// # Errors
///
/// Propagates builder errors for out-of-range parameter values.
pub fn mfb_lowpass(r1: f64, r2: f64, r3: f64, c1: f64, c2: f64) -> Result<Benchmark> {
    let mut ckt = Circuit::new("mfb-lowpass");
    ckt.voltage_source("V1", "in", "0", 1.0)?;
    ckt.resistor("R1", "in", "a", r1)?;
    ckt.capacitor("C1", "a", "0", c1)?;
    ckt.resistor("R2", "a", "out", r2)?;
    ckt.resistor("R3", "a", "b", r3)?;
    ckt.capacitor("C2", "b", "out", c2)?;
    ckt.ideal_opamp("U1", "0", "b", "out")?;
    Ok(Benchmark {
        circuit: ckt,
        input: "V1".into(),
        probe: Probe::node("out"),
        fault_set: ["R1", "R2", "R3", "C1", "C2"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        description: "Multiple-feedback (infinite-gain) second-order low-pass".into(),
        search_band: (0.01, 100.0),
    })
}

/// Normalized MFB low-pass with ω₀ = 1 rad/s, Q = 1, DC gain −1:
/// R1 = R2 = R3 = 1 Ω, C1 = 3 F, C2 = 1/3 F.
///
/// # Errors
///
/// Never fails for the normalized parameters.
pub fn mfb_normalized() -> Result<Benchmark> {
    mfb_lowpass(1.0, 1.0, 1.0, 3.0, 1.0 / 3.0)
}

/// Kerwin–Huelsman–Newcomb (KHN) state-variable filter; the benchmark
/// probes the low-pass output.
///
/// Uses the canonical topology: summer (R1 input, R2 loop feedback to the
/// inverting input, RF summer feedback; RQ1/RQ2 divider into the
/// non-inverting input from the band-pass output) followed by two
/// inverting integrators (R5·C1, R6·C2).
///
/// # Errors
///
/// Propagates builder errors for out-of-range parameter values.
pub fn khn_state_variable(q: f64) -> Result<Benchmark> {
    let mut ckt = Circuit::new("khn-state-variable");
    ckt.voltage_source("V1", "in", "0", 1.0)?;
    // Summer U1 — inverting side.
    ckt.resistor("R1", "in", "ns", 1.0)?;
    ckt.resistor("R2", "lp", "ns", 1.0)?;
    ckt.resistor("RF", "hp", "ns", 1.0)?;
    // Non-inverting side: BP through the Q divider.
    let rq2 = 2.0 * q - 1.0;
    ckt.resistor("RQ1", "bp", "ps", 1.0)?;
    ckt.resistor("RQ2", "ps", "0", rq2.max(1e-6))?;
    ckt.ideal_opamp("U1", "ps", "ns", "hp")?;
    // Integrators.
    ckt.resistor("R5", "hp", "n2", 1.0)?;
    ckt.capacitor("C1", "bp", "n2", 1.0)?;
    ckt.ideal_opamp("U2", "0", "n2", "bp")?;
    ckt.resistor("R6", "bp", "n3", 1.0)?;
    ckt.capacitor("C2", "lp", "n3", 1.0)?;
    ckt.ideal_opamp("U3", "0", "n3", "lp")?;
    Ok(Benchmark {
        circuit: ckt,
        input: "V1".into(),
        probe: Probe::node("lp"),
        fault_set: ["R1", "R2", "RF", "RQ1", "RQ2", "R5", "R6", "C1", "C2"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        description: format!("KHN state-variable filter, normalized, Q = {q}"),
        search_band: (0.01, 100.0),
    })
}

/// Doubly-terminated passive LC-ladder Butterworth low-pass of the given
/// order (ω₀ = 1 rad/s, 1 Ω terminations) — the all-passive benchmark.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if `order` is zero or greater than 9.
pub fn rlc_ladder_lowpass(order: usize) -> Result<Benchmark> {
    assert!((1..=9).contains(&order), "supported ladder orders: 1–9");
    let mut ckt = Circuit::new("rlc-ladder-lowpass");
    ckt.voltage_source("V1", "in", "0", 1.0)?;
    ckt.resistor("RS", "in", "n1", 1.0)?;
    let mut fault_set = vec!["RS".to_string()];
    // Butterworth g-values: g_k = 2·sin((2k−1)π/2n).
    let mut prev = "n1".to_string();
    for k in 1..=order {
        let g = 2.0 * ((2.0 * k as f64 - 1.0) * std::f64::consts::PI / (2.0 * order as f64)).sin();
        if k % 2 == 1 {
            // Shunt capacitor at the current node.
            let name = format!("C{k}");
            ckt.capacitor(&name, &prev, "0", g)?;
            fault_set.push(name);
        } else {
            // Series inductor to the next node.
            let next = format!("n{}", k / 2 + 1);
            let name = format!("L{k}");
            ckt.inductor(&name, &prev, &next, g)?;
            fault_set.push(name);
            prev = next;
        }
    }
    ckt.resistor("RL", &prev, "0", 1.0)?;
    fault_set.push("RL".to_string());
    let probe = Probe::node(&prev);
    Ok(Benchmark {
        circuit: ckt,
        input: "V1".into(),
        probe,
        fault_set,
        description: format!("Doubly-terminated Butterworth LC ladder, order {order}"),
        search_band: (0.01, 100.0),
    })
}

/// Twin-T notch filter (normalized: notch at ω = 1 rad/s with R = 1 Ω,
/// C = 1 F), buffered by a follower.
///
/// # Errors
///
/// Propagates builder errors.
pub fn twin_t_notch() -> Result<Benchmark> {
    let mut ckt = Circuit::new("twin-t-notch");
    ckt.voltage_source("V1", "in", "0", 1.0)?;
    // T1: series resistors with centre cap to ground.
    ckt.resistor("R1", "in", "t1", 1.0)?;
    ckt.resistor("R2", "t1", "out", 1.0)?;
    ckt.capacitor("C3", "t1", "0", 2.0)?;
    // T2: series caps with centre resistor to ground.
    ckt.capacitor("C1", "in", "t2", 1.0)?;
    ckt.capacitor("C2", "t2", "out", 1.0)?;
    ckt.resistor("R3", "t2", "0", 0.5)?;
    // Buffer so the notch node is observable without loading.
    ckt.resistor("RL", "out", "0", 1e9)?;
    Ok(Benchmark {
        circuit: ckt,
        input: "V1".into(),
        probe: Probe::node("out"),
        fault_set: ["R1", "R2", "R3", "C1", "C2", "C3"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        description: "Passive twin-T notch, normalized to ω₀ = 1 rad/s".into(),
        search_band: (0.01, 100.0),
    })
}

/// Every benchmark in the library at its normalized design point, for
/// cross-circuit experiments.
///
/// # Errors
///
/// Propagates builder errors (none occur for the stock parameters).
pub fn all_benchmarks() -> Result<Vec<Benchmark>> {
    Ok(vec![
        tow_thomas_normalized(1.0)?,
        sallen_key_normalized()?,
        mfb_normalized()?,
        khn_state_variable(1.0)?,
        rlc_ladder_lowpass(5)?,
        twin_t_notch()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ac::{sweep, transfer};
    use ft_numerics::FrequencyGrid;

    #[test]
    fn tow_thomas_matches_analytic_descriptors() {
        let params = TowThomasParams::normalized(1.0);
        let ckt = tow_thomas(&params).unwrap();
        let probe = Probe::node("lp");
        // DC gain.
        let dc = transfer(&ckt, "V1", &probe, 1e-6).unwrap();
        assert!(
            (dc.abs() - params.dc_gain()).abs() < 1e-6,
            "dc {}",
            dc.abs()
        );
        // At ω₀ the low-pass magnitude equals Q·|H(0)|.
        let at_w0 = transfer(&ckt, "V1", &probe, params.w0()).unwrap();
        assert!(
            (at_w0.abs() - params.q() * params.dc_gain()).abs() < 1e-9,
            "at w0: {}",
            at_w0.abs()
        );
        // Two decades above: −40 dB/decade → ≈ −80 dB relative.
        let hf = transfer(&ckt, "V1", &probe, 100.0).unwrap();
        assert!((hf.abs_db() - (-80.0)).abs() < 0.1, "hf {}", hf.abs_db());
    }

    #[test]
    fn tow_thomas_q_parameter() {
        for &q in &[0.6, 1.0, 3.0] {
            let params = TowThomasParams::normalized(q);
            assert!((params.q() - q).abs() < 1e-12);
            assert!((params.w0() - 1.0).abs() < 1e-12);
            let ckt = tow_thomas(&params).unwrap();
            let at_w0 = transfer(&ckt, "V1", &Probe::node("lp"), 1.0).unwrap();
            assert!((at_w0.abs() - q).abs() < 1e-9);
        }
    }

    #[test]
    fn tow_thomas_bandpass_output() {
        let ckt = tow_thomas(&TowThomasParams::normalized(2.0)).unwrap();
        let bp = Probe::node("bp");
        // Band-pass: response at ω₀ beats responses a decade either side.
        let lo = transfer(&ckt, "V1", &bp, 0.1).unwrap().abs();
        let mid = transfer(&ckt, "V1", &bp, 1.0).unwrap().abs();
        let hi = transfer(&ckt, "V1", &bp, 10.0).unwrap().abs();
        assert!(mid > 3.0 * lo);
        assert!(mid > 3.0 * hi);
    }

    #[test]
    fn tow_thomas_r5_r6_enter_as_ratio_only() {
        // Scaling R5 and R6 together leaves the response unchanged —
        // the formal justification for the seven-component fault set.
        let probe = Probe::node("lp");
        let base = tow_thomas(&TowThomasParams::normalized(1.0)).unwrap();
        let mut scaled_params = TowThomasParams::normalized(1.0);
        scaled_params.r5 *= 3.7;
        scaled_params.r6 *= 3.7;
        let scaled = tow_thomas(&scaled_params).unwrap();
        for &w in &[0.05, 0.5, 1.0, 5.0, 50.0] {
            let a = transfer(&base, "V1", &probe, w).unwrap();
            let b = transfer(&scaled, "V1", &probe, w).unwrap();
            assert!((a - b).abs() < 1e-9, "mismatch at {w}");
        }
    }

    #[test]
    fn tow_thomas_structural_ambiguity_pairs() {
        // The LP transfer function depends on R3 and R5 only through the
        // product R3·R5, and on R4 and C2 only through R4·C2: deviating
        // one while compensating the other leaves the response identical.
        // These pairs are therefore inherent ambiguity groups of any
        // single-output diagnosis of this CUT — a floor on the paper's
        // intersection count I documented in DESIGN.md.
        let probe = Probe::node("lp");
        let base = tow_thomas(&TowThomasParams::normalized(1.0)).unwrap();
        for (inc, dec) in [("R3", "R5"), ("R4", "C2")] {
            let mut faulty = base.clone();
            faulty.set_value(inc, 1.3).unwrap();
            faulty.set_value(dec, 1.0 / 1.3).unwrap();
            for &w in &[0.05, 0.5, 1.0, 5.0, 50.0] {
                let a = transfer(&base, "V1", &probe, w).unwrap();
                let b = transfer(&faulty, "V1", &probe, w).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "({inc},{dec}) compensation broke at ω = {w}"
                );
            }
        }
    }

    #[test]
    fn paper_cut_packaging() {
        let bench = tow_thomas_normalized(1.0).unwrap();
        assert_eq!(bench.fault_set.len(), 7);
        assert_eq!(bench.input, "V1");
        assert!(bench.description.contains("Tow-Thomas"));
        assert_eq!(bench.name(), "tow-thomas-biquad");
        bench.circuit.validate().unwrap();
    }

    #[test]
    fn sallen_key_butterworth_response() {
        let bench = sallen_key_normalized().unwrap();
        // Butterworth: |H(j1)| = 1/√2, flat DC, −40 dB/dec.
        let dc = transfer(&bench.circuit, "V1", &bench.probe, 1e-5).unwrap();
        assert!((dc.abs() - 1.0).abs() < 1e-6);
        let corner = transfer(&bench.circuit, "V1", &bench.probe, 1.0).unwrap();
        assert!((corner.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
        let hf = transfer(&bench.circuit, "V1", &bench.probe, 100.0).unwrap();
        assert!((hf.abs_db() + 80.0).abs() < 0.1);
    }

    #[test]
    fn mfb_descriptors() {
        let bench = mfb_normalized().unwrap();
        let dc = transfer(&bench.circuit, "V1", &bench.probe, 1e-6).unwrap();
        assert!((dc.abs() - 1.0).abs() < 1e-6); // |−R2/R1| = 1
        let at_w0 = transfer(&bench.circuit, "V1", &bench.probe, 1.0).unwrap();
        // Q = 1 → |H(jω₀)| = Q·|H(0)| = 1.
        assert!((at_w0.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn khn_lowpass_shape() {
        let bench = khn_state_variable(1.0).unwrap();
        bench.circuit.validate().unwrap();
        let dc = transfer(&bench.circuit, "V1", &bench.probe, 1e-5).unwrap();
        let hf = transfer(&bench.circuit, "V1", &bench.probe, 100.0).unwrap();
        assert!(dc.abs() > 0.5, "KHN LP output should pass DC: {}", dc.abs());
        assert!(
            hf.abs() < dc.abs() / 100.0,
            "KHN LP should roll off: {} vs {}",
            hf.abs(),
            dc.abs()
        );
    }

    #[test]
    fn ladder_butterworth_cutoff() {
        for order in [2, 3, 5] {
            let bench = rlc_ladder_lowpass(order).unwrap();
            bench.circuit.validate().unwrap();
            let sw = sweep(
                &bench.circuit,
                "V1",
                &bench.probe,
                &FrequencyGrid::log_space(0.01, 100.0, 41),
            )
            .unwrap();
            let mags = sw.magnitude();
            // Doubly-terminated: DC gain = 1/2.
            assert!((mags[0] - 0.5).abs() < 1e-3, "order {order}: {}", mags[0]);
            // −3 dB (relative) at ω = 1.
            let at_1 = transfer(&bench.circuit, "V1", &bench.probe, 1.0).unwrap();
            let rel_db = 20.0 * (at_1.abs() / 0.5).log10();
            assert!(
                (rel_db + 3.0103).abs() < 0.05,
                "order {order}: rel dB {rel_db}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ladder orders")]
    fn ladder_order_range_checked() {
        let _ = rlc_ladder_lowpass(0);
    }

    #[test]
    fn twin_t_notches_at_unity() {
        let bench = twin_t_notch().unwrap();
        let at_notch = transfer(&bench.circuit, "V1", &bench.probe, 1.0).unwrap();
        assert!(at_notch.abs() < 1e-9, "notch depth {}", at_notch.abs());
        let dc = transfer(&bench.circuit, "V1", &bench.probe, 1e-4).unwrap();
        assert!((dc.abs() - 1.0).abs() < 1e-3);
        let hf = transfer(&bench.circuit, "V1", &bench.probe, 1e4).unwrap();
        assert!((hf.abs() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn all_benchmarks_valid() {
        let benches = all_benchmarks().unwrap();
        assert_eq!(benches.len(), 6);
        for b in &benches {
            b.circuit.validate().unwrap();
            assert!(!b.fault_set.is_empty());
            // Every fault-set member exists and is faultable.
            for name in &b.fault_set {
                assert!(
                    b.circuit.value(name).unwrap().is_some(),
                    "{}: {name} not faultable",
                    b.name()
                );
            }
            // The probe is readable.
            let h = transfer(&b.circuit, &b.input, &b.probe, 1.0).unwrap();
            assert!(h.is_finite());
        }
    }
}
