//! # ft-circuit
//!
//! A from-scratch linear analog circuit simulator built for the
//! fault-trajectory diagnosis workspace: modified nodal analysis (MNA)
//! over real or complex scalars, AC sweeps, DC operating points,
//! trapezoidal transient analysis, finite-difference sensitivities, a
//! SPICE-subset netlist parser, ideal and single-pole op-amp models, and a
//! library of benchmark filters including the paper's Tow-Thomas CUT.
//!
//! ## Example: Bode point of an RC low-pass
//!
//! ```
//! use ft_circuit::{transfer, Circuit, Probe};
//!
//! let mut ckt = Circuit::new("rc");
//! ckt.voltage_source("V1", "in", "0", 1.0)?;
//! ckt.resistor("R1", "in", "out", 1_000.0)?;
//! ckt.capacitor("C1", "out", "0", 1e-6)?;
//!
//! // ωc = 1/(RC) = 1000 rad/s → −3 dB at the corner.
//! let h = transfer(&ckt, "V1", &Probe::node("out"), 1_000.0)?;
//! assert!((h.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
//! # Ok::<(), ft_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod element;
pub mod error;
pub mod library;
pub mod mna;
pub mod netlist;
pub mod opamp;
pub mod parser;

pub use analysis::ac::{sample_at, sweep, sweep_reference, transfer, AcSweep, Probe};
pub use analysis::dc::{operating_point, OperatingPoint};
pub use analysis::engine::AcSweepEngine;
pub use analysis::fit::{fit_circuit, fit_rational, FitError};
pub use analysis::tran::{transient, TransientOptions, TransientResult};
pub use element::{Element, Waveform};
pub use error::{CircuitError, Result};
pub use library::{
    all_benchmarks, khn_state_variable, mfb_lowpass, mfb_normalized, rlc_ladder_lowpass,
    sallen_key_lowpass, sallen_key_normalized, tow_thomas, tow_thomas_normalized, twin_t_notch,
    Benchmark, TowThomasParams,
};
pub use mna::{Excitation, MnaLayout};
pub use netlist::{Circuit, Component, ComponentId, NodeId};
pub use opamp::OpAmpModel;
