//! SPICE-subset netlist parser.
//!
//! Supports the element cards needed by the workspace (R, C, L, V, I, E,
//! G, F, H, and `U`/`OA` for the ideal op amp), SPICE engineering
//! suffixes (`k`, `meg`, `m`, `u`, `n`, `p`, `f`, `g`, `t`), `*` and `;`
//! comments, and `.end`. Node `0`/`gnd` is ground.
//!
//! ```
//! use ft_circuit::parser::parse_netlist;
//!
//! let ckt = parse_netlist(
//!     "* rc low-pass
//!      V1 in 0 AC 1
//!      R1 in out 1k
//!      C1 out 0 1u
//!      .end",
//! )?;
//! assert_eq!(ckt.component_count(), 3);
//! # Ok::<(), ft_circuit::parser::ParseError>(())
//! ```

use std::fmt;

use crate::error::CircuitError;
use crate::netlist::Circuit;

/// Error produced while parsing a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending card.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// Categories of netlist parse failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// The element prefix is not recognised.
    UnknownElement(String),
    /// Too few fields for the element kind.
    MissingFields {
        /// Element card name.
        element: String,
        /// Fields expected (minimum).
        expected: usize,
        /// Fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber(String),
    /// The underlying circuit builder rejected the card.
    Circuit(CircuitError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::UnknownElement(e) => write!(f, "unknown element `{e}`"),
            ParseErrorKind::MissingFields {
                element,
                expected,
                found,
            } => write!(
                f,
                "`{element}` needs at least {expected} fields, found {found}"
            ),
            ParseErrorKind::BadNumber(s) => write!(f, "cannot parse number `{s}`"),
            ParseErrorKind::Circuit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a numeric field with SPICE engineering suffixes.
///
/// Recognised suffixes (case-insensitive): `t` (1e12), `g` (1e9), `meg`
/// (1e6), `k` (1e3), `m` (1e-3), `u` (1e-6), `n` (1e-9), `p` (1e-12),
/// `f` (1e-15). Trailing unit letters after the suffix are ignored
/// (`10kohm`, `5pF`).
///
/// # Errors
///
/// Returns the unparsable text when no leading number exists.
pub fn parse_value(text: &str) -> Result<f64, String> {
    let lower = text.trim().to_ascii_lowercase();
    if lower.is_empty() {
        return Err(text.to_string());
    }
    // Split leading numeric part (digits, sign, dot, exponent).
    let mut split = lower.len();
    let bytes = lower.as_bytes();
    let mut i = 0;
    let mut seen_digit = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let numeric = c.is_ascii_digit()
            || c == '.'
            || c == '+'
            || c == '-'
            || (c == 'e'
                && seen_digit
                && i + 1 < bytes.len()
                && ((bytes[i + 1] as char).is_ascii_digit()
                    || bytes[i + 1] == b'+'
                    || bytes[i + 1] == b'-'));
        if c.is_ascii_digit() {
            seen_digit = true;
        }
        if !numeric {
            split = i;
            break;
        }
        if c == 'e' {
            // Consume exponent sign if present.
            i += 1;
            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    if split == lower.len() {
        split = i.min(lower.len());
    }
    let (num_part, suffix) = lower.split_at(split);
    let base: f64 = num_part.parse().map_err(|_| text.to_string())?;
    let mult = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // Unknown trailing letters (e.g. "ohm", "v"): treat as units.
            Some(_) => 1.0,
        }
    };
    Ok(base * mult)
}

/// Parses a complete netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first bad card.
pub fn parse_netlist(text: &str) -> Result<Circuit, ParseError> {
    let mut circuit = Circuit::new("netlist");
    let mut first_line_is_title_checked = false;

    for (line_no, raw) in text.lines().enumerate() {
        let line = line_no + 1;
        // Strip ';' comments, trim.
        let stripped = raw.split(';').next().unwrap_or("").trim();
        if stripped.is_empty() || stripped.starts_with('*') {
            // A leading '*' line doubles as the title.
            if !first_line_is_title_checked && stripped.starts_with('*') {
                let title = stripped.trim_start_matches('*').trim();
                if !title.is_empty() {
                    circuit = rename(circuit, title);
                }
            }
            first_line_is_title_checked = true;
            continue;
        }
        first_line_is_title_checked = true;

        if stripped.starts_with('.') {
            let directive = stripped.to_ascii_lowercase();
            if directive == ".end" {
                break;
            }
            // Other directives (.ac, .tran, .op) are analysis hints the
            // library API supersedes; skip them.
            continue;
        }

        let fields: Vec<&str> = stripped.split_whitespace().collect();
        let name = fields[0];
        let upper = name.to_ascii_uppercase();

        let err_missing = |expected: usize| ParseError {
            line,
            kind: ParseErrorKind::MissingFields {
                element: name.to_string(),
                expected,
                found: fields.len(),
            },
        };
        let err_circuit = |e: CircuitError| ParseError {
            line,
            kind: ParseErrorKind::Circuit(e),
        };
        let num = |s: &str| {
            parse_value(s).map_err(|bad| ParseError {
                line,
                kind: ParseErrorKind::BadNumber(bad),
            })
        };

        match upper.chars().next().expect("non-empty field") {
            'R' => {
                if fields.len() < 4 {
                    return Err(err_missing(4));
                }
                circuit
                    .resistor(name, fields[1], fields[2], num(fields[3])?)
                    .map_err(err_circuit)?;
            }
            'C' => {
                if fields.len() < 4 {
                    return Err(err_missing(4));
                }
                circuit
                    .capacitor(name, fields[1], fields[2], num(fields[3])?)
                    .map_err(err_circuit)?;
            }
            'L' => {
                if fields.len() < 4 {
                    return Err(err_missing(4));
                }
                circuit
                    .inductor(name, fields[1], fields[2], num(fields[3])?)
                    .map_err(err_circuit)?;
            }
            'V' | 'I' => {
                if fields.len() < 4 {
                    return Err(err_missing(4));
                }
                let (dc, ac_mag, ac_phase) = parse_source_fields(&fields[3..], &mut |s| num(s))?;
                if upper.starts_with('V') {
                    circuit
                        .voltage_source_full(name, fields[1], fields[2], dc, ac_mag, ac_phase, None)
                        .map_err(err_circuit)?;
                } else {
                    // Current source with the same DC/AC conventions.
                    circuit
                        .current_source(name, fields[1], fields[2], dc)
                        .map_err(err_circuit)?;
                    if (ac_mag - dc).abs() > 0.0 {
                        // Current sources keep dc == ac in the simple
                        // builder; adjust via the full setter path.
                        // (Builder stores ac_mag = dc; acceptable for the
                        // parser subset.)
                    }
                }
            }
            'E' => {
                if fields.len() < 6 {
                    return Err(err_missing(6));
                }
                circuit
                    .vcvs(
                        name,
                        fields[1],
                        fields[2],
                        fields[3],
                        fields[4],
                        num(fields[5])?,
                    )
                    .map_err(err_circuit)?;
            }
            'G' => {
                if fields.len() < 6 {
                    return Err(err_missing(6));
                }
                circuit
                    .vccs(
                        name,
                        fields[1],
                        fields[2],
                        fields[3],
                        fields[4],
                        num(fields[5])?,
                    )
                    .map_err(err_circuit)?;
            }
            'F' => {
                if fields.len() < 5 {
                    return Err(err_missing(5));
                }
                circuit
                    .cccs(name, fields[1], fields[2], fields[3], num(fields[4])?)
                    .map_err(err_circuit)?;
            }
            'H' => {
                if fields.len() < 5 {
                    return Err(err_missing(5));
                }
                circuit
                    .ccvs(name, fields[1], fields[2], fields[3], num(fields[4])?)
                    .map_err(err_circuit)?;
            }
            'U' | 'O' => {
                if fields.len() < 4 {
                    return Err(err_missing(4));
                }
                circuit
                    .ideal_opamp(name, fields[1], fields[2], fields[3])
                    .map_err(err_circuit)?;
            }
            _ => {
                return Err(ParseError {
                    line,
                    kind: ParseErrorKind::UnknownElement(name.to_string()),
                });
            }
        }
    }
    Ok(circuit)
}

/// Parses source value fields: `<dc>`, `DC <v>`, `AC <mag> [phase_deg]`,
/// or combinations (`DC 1 AC 1 0`). A bare number sets both DC and AC.
fn parse_source_fields(
    fields: &[&str],
    num: &mut dyn FnMut(&str) -> Result<f64, ParseError>,
) -> Result<(f64, f64, f64), ParseError> {
    let mut dc = 0.0;
    let mut ac_mag = 0.0;
    let mut ac_phase = 0.0;
    let mut saw_keyword = false;
    let mut i = 0;
    while i < fields.len() {
        let f = fields[i].to_ascii_uppercase();
        match f.as_str() {
            "DC" => {
                saw_keyword = true;
                i += 1;
                if i < fields.len() {
                    dc = num(fields[i])?;
                }
            }
            "AC" => {
                saw_keyword = true;
                i += 1;
                if i < fields.len() {
                    ac_mag = num(fields[i])?;
                }
                if i + 1 < fields.len() && parse_value(fields[i + 1]).is_ok() {
                    i += 1;
                    ac_phase = num(fields[i])?.to_radians();
                }
            }
            _ => {
                if !saw_keyword {
                    let v = num(fields[i])?;
                    dc = v;
                    ac_mag = v;
                }
            }
        }
        i += 1;
    }
    Ok((dc, ac_mag, ac_phase))
}

fn rename(circuit: Circuit, _title: &str) -> Circuit {
    // Circuit names are immutable by design; the title comment is
    // informational. Kept as a hook for future metadata.
    circuit
}

/// Writes a circuit back out as a SPICE-subset netlist parseable by
/// [`parse_netlist`].
///
/// Round-trip safe when component names follow the SPICE convention
/// (first letter encodes the element kind, as the parser requires).
/// Names produced by op-amp macromodel expansion (`U1.rin`, …) violate
/// that convention; write the pre-expansion circuit instead.
pub fn write_netlist(circuit: &Circuit) -> String {
    use crate::element::Element;

    let mut out = format!("* {}\n", circuit.name());
    for comp in circuit.components() {
        let node = |i: usize| circuit.node_name(comp.nodes()[i]);
        let line = match comp.element() {
            Element::Resistor { r } => {
                format!("{} {} {} {}", comp.name(), node(0), node(1), fmt_num(*r))
            }
            Element::Capacitor { c } => {
                format!("{} {} {} {}", comp.name(), node(0), node(1), fmt_num(*c))
            }
            Element::Inductor { l } => {
                format!("{} {} {} {}", comp.name(), node(0), node(1), fmt_num(*l))
            }
            Element::VoltageSource {
                dc,
                ac_mag,
                ac_phase,
                ..
            } => format!(
                "{} {} {} DC {} AC {} {}",
                comp.name(),
                node(0),
                node(1),
                fmt_num(*dc),
                fmt_num(*ac_mag),
                fmt_num(ac_phase.to_degrees())
            ),
            Element::CurrentSource { dc, .. } => {
                format!("{} {} {} {}", comp.name(), node(0), node(1), fmt_num(*dc))
            }
            Element::Vcvs { gain } => format!(
                "{} {} {} {} {} {}",
                comp.name(),
                node(0),
                node(1),
                node(2),
                node(3),
                fmt_num(*gain)
            ),
            Element::Vccs { gm } => format!(
                "{} {} {} {} {} {}",
                comp.name(),
                node(0),
                node(1),
                node(2),
                node(3),
                fmt_num(*gm)
            ),
            Element::Cccs { gain, control } => format!(
                "{} {} {} {} {}",
                comp.name(),
                node(0),
                node(1),
                control,
                fmt_num(*gain)
            ),
            Element::Ccvs { r, control } => format!(
                "{} {} {} {} {}",
                comp.name(),
                node(0),
                node(1),
                control,
                fmt_num(*r)
            ),
            Element::IdealOpAmp => format!("{} {} {} {}", comp.name(), node(0), node(1), node(2)),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

fn fmt_num(x: f64) -> String {
    // Exact round-trip via the shortest representation ({} on f64).
    format!("{x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ac::{transfer, Probe};

    #[test]
    fn engineering_suffixes() {
        assert_eq!(parse_value("10k").unwrap(), 1e4);
        assert_eq!(parse_value("2meg").unwrap(), 2e6);
        assert_eq!(parse_value("1.5u").unwrap(), 1.5e-6);
        assert!((parse_value("100n").unwrap() - 1e-7).abs() < 1e-19);
        assert_eq!(parse_value("3p").unwrap(), 3e-12);
        assert_eq!(parse_value("2f").unwrap(), 2e-15);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
        assert_eq!(parse_value("4t").unwrap(), 4e12);
        assert_eq!(parse_value("5m").unwrap(), 5e-3);
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-3.3").unwrap(), -3.3);
        assert_eq!(parse_value("1e-6").unwrap(), 1e-6);
        assert_eq!(parse_value("2.2E3").unwrap(), 2200.0);
    }

    #[test]
    fn suffix_with_units() {
        assert_eq!(parse_value("10kohm").unwrap(), 1e4);
        assert_eq!(parse_value("5pf").unwrap(), 5e-12);
        assert_eq!(parse_value("3v").unwrap(), 3.0);
    }

    #[test]
    fn bad_numbers_rejected() {
        assert!(parse_value("").is_err());
        assert!(parse_value("abc").is_err());
        assert!(parse_value("--5").is_err());
    }

    #[test]
    fn parses_rc_lowpass_and_simulates() {
        let ckt = parse_netlist(
            "* rc
             V1 in 0 AC 1
             R1 in out 1k
             C1 out 0 1u
             .end",
        )
        .unwrap();
        let h = transfer(&ckt, "V1", &Probe::node("out"), 1000.0).unwrap();
        assert!((h.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let ckt = parse_netlist(
            "\n* title line\n; full comment\nR1 a 0 1k ; trailing comment\n\nR2 a 0 2k\n",
        )
        .unwrap();
        assert_eq!(ckt.component_count(), 2);
    }

    #[test]
    fn dot_end_stops_parsing() {
        let ckt = parse_netlist("R1 a 0 1k\n.end\nR2 a 0 2k").unwrap();
        assert_eq!(ckt.component_count(), 1);
    }

    #[test]
    fn controlled_sources_and_opamp() {
        let ckt = parse_netlist(
            "V1 in 0 DC 1 AC 1 0
             R1 in x 1k
             E1 y 0 in 0 2.0
             G1 z 0 in 0 0.5
             Rz z 0 1k
             Ry y 0 1k
             F1 w 0 V1 2.0
             Rw w 0 1k
             H1 q 0 V1 100
             Rq q 0 1k
             U1 0 x out
             Rf x out 10k",
        )
        .unwrap();
        assert_eq!(ckt.component_count(), 12);
        ckt.validate().unwrap();
    }

    #[test]
    fn source_field_variants() {
        // Bare value.
        let c1 = parse_netlist("V1 a 0 5\nR1 a 0 1k").unwrap();
        assert_eq!(c1.component_count(), 2);
        // DC only.
        let c2 = parse_netlist("V1 a 0 DC 3\nR1 a 0 1k").unwrap();
        assert_eq!(c2.component_count(), 2);
        // AC with phase.
        let c3 = parse_netlist("V1 a 0 AC 1 90\nR1 a 0 1k").unwrap();
        let h = transfer(&c3, "V1", &Probe::node("a"), 1.0).unwrap();
        // AcUnit drive ignores the stored phase; sanity: circuit solves.
        assert!(h.is_finite());
    }

    #[test]
    fn unknown_element_reports_line() {
        let err = parse_netlist("R1 a 0 1k\nQ1 a b c model").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnknownElement(_)));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn missing_fields_reported() {
        let err = parse_netlist("R1 a 0").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MissingFields { .. }));
        let err = parse_netlist("E1 a 0 b").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MissingFields { .. }));
    }

    #[test]
    fn bad_number_reported() {
        let err = parse_netlist("R1 a 0 banana").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadNumber(_)));
    }

    #[test]
    fn write_netlist_round_trips_rc() {
        let original = parse_netlist(
            "V1 in 0 DC 0 AC 1 0
             R1 in out 1k
             C1 out 0 1u",
        )
        .unwrap();
        let text = write_netlist(&original);
        assert!(text.contains("R1 in out 1000"));
        assert!(text.ends_with(".end\n"));
        let reparsed = parse_netlist(&text).unwrap();
        assert_eq!(reparsed.component_count(), original.component_count());
        // Behavioural equivalence at a few frequencies.
        for &w in &[10.0, 1000.0, 1e5] {
            let a = transfer(&original, "V1", &Probe::node("out"), w).unwrap();
            let b = transfer(&reparsed, "V1", &Probe::node("out"), w).unwrap();
            assert!((a - b).abs() < 1e-12, "mismatch at {w}");
        }
    }

    #[test]
    fn write_netlist_round_trips_tow_thomas() {
        let bench = crate::library::tow_thomas_normalized(1.0).unwrap();
        let text = write_netlist(&bench.circuit);
        let reparsed = parse_netlist(&text).unwrap();
        reparsed.validate().unwrap();
        for &w in &[0.1, 1.0, 10.0] {
            let a = transfer(&bench.circuit, "V1", &bench.probe, w).unwrap();
            let b = transfer(&reparsed, "V1", &bench.probe, w).unwrap();
            assert!((a - b).abs() < 1e-12, "mismatch at {w}");
        }
    }

    #[test]
    fn write_netlist_controlled_sources() {
        let original = parse_netlist(
            "V1 a 0 1
             R1 a 0 1k
             E1 b 0 a 0 2
             Rb b 0 1k
             G1 c 0 a 0 0.5
             Rc c 0 1k
             F1 d 0 V1 3
             Rd d 0 1k
             H1 e 0 V1 50
             Re e 0 1k",
        )
        .unwrap();
        let reparsed = parse_netlist(&write_netlist(&original)).unwrap();
        assert_eq!(reparsed.component_count(), original.component_count());
        for node in ["b", "c", "d", "e"] {
            let a = transfer(&original, "V1", &Probe::node(node), 1.0).unwrap();
            let b = transfer(&reparsed, "V1", &Probe::node(node), 1.0).unwrap();
            assert!((a - b).abs() < 1e-12, "node {node}");
        }
    }

    #[test]
    fn builder_errors_surface() {
        let err = parse_netlist("R1 a 0 1k\nR1 b 0 2k").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(
            err.kind,
            ParseErrorKind::Circuit(CircuitError::DuplicateComponent(_))
        ));
        let err = parse_netlist("R1 a 0 -5").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Circuit(CircuitError::InvalidValue { .. })
        ));
    }
}
