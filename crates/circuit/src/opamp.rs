//! Op-amp models.
//!
//! The paper's fault model (the FFM of Calvano et al., JETTA 2001) treats
//! active-device faults as percentage deviations of *macromodel*
//! parameters. Two models are provided: the ideal nullor (exact virtual
//! short, used for the normalized CUT) and a single-pole macromodel whose
//! expansion into primitive elements makes every parameter individually
//! faultable.

use serde::{Deserialize, Serialize};

/// Behavioural model of an op amp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OpAmpModel {
    /// Ideal nullor: infinite gain and input impedance, zero output
    /// impedance. One MNA branch unknown, no internal nodes.
    #[default]
    Ideal,
    /// Single-pole finite-gain macromodel
    /// `A(s) = A0 / (1 + s·A0/GBW)` with resistive input/output.
    SinglePole {
        /// DC open-loop gain (dimensionless, e.g. 2·10⁵).
        a0: f64,
        /// Gain-bandwidth product in rad/s.
        gbw_rad: f64,
        /// Differential input resistance in ohms.
        rin: f64,
        /// Output resistance in ohms.
        rout: f64,
    },
}

impl OpAmpModel {
    /// A typical general-purpose op amp (741-class): A₀ = 2·10⁵,
    /// GBW = 1 MHz, Rin = 2 MΩ, Rout = 75 Ω.
    pub fn typical() -> Self {
        OpAmpModel::SinglePole {
            a0: 2e5,
            gbw_rad: std::f64::consts::TAU * 1e6,
            rin: 2e6,
            rout: 75.0,
        }
    }

    /// Open-loop DC gain; `None` for the ideal model (infinite).
    pub fn dc_gain(&self) -> Option<f64> {
        match self {
            OpAmpModel::Ideal => None,
            OpAmpModel::SinglePole { a0, .. } => Some(*a0),
        }
    }

    /// Open-loop pole frequency in rad/s (`GBW / A0`); `None` for ideal.
    pub fn pole_rad(&self) -> Option<f64> {
        match self {
            OpAmpModel::Ideal => None,
            OpAmpModel::SinglePole { a0, gbw_rad, .. } => Some(gbw_rad / a0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_values() {
        let m = OpAmpModel::typical();
        assert_eq!(m.dc_gain(), Some(2e5));
        let pole = m.pole_rad().unwrap();
        // GBW 2π·1e6 / 2e5 = 2π·5 rad/s
        assert!((pole - std::f64::consts::TAU * 5.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_has_no_finite_parameters() {
        let m = OpAmpModel::Ideal;
        assert_eq!(m.dc_gain(), None);
        assert_eq!(m.pole_rad(), None);
        assert_eq!(OpAmpModel::default(), OpAmpModel::Ideal);
    }
}
