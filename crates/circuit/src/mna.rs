//! Modified nodal analysis: layout, stamping, and solving.
//!
//! The MNA unknown vector is `[v₁ … v_N | i₁ … i_M]`: node voltages for
//! every non-ground node followed by branch currents for every element
//! that needs one (voltage sources, inductors, VCVS, CCVS, ideal op amps).
//! Stamps follow the standard formulation (Ho, Ruehli, Brennan 1975), with
//! the complex Laplace variable `s = jω` supplied at assembly time so the
//! same code serves DC (`s = 0`) and AC analysis.

use std::collections::HashMap;

use ft_numerics::{CMatrix, Complex64, Lu};

use crate::element::Element;
use crate::error::{CircuitError, Result};
use crate::netlist::{Circuit, ComponentId, NodeId};

/// Which values independent sources contribute to the right-hand side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Excitation {
    /// DC values (operating point).
    Dc,
    /// Every source contributes its AC magnitude/phase.
    Ac,
    /// Single-input transfer-function mode: the source with this id
    /// contributes exactly `1∠0` and every other independent source is
    /// zeroed. The solved output then *is* the transfer function to that
    /// input. Build with [`Excitation::ac_unit`], which resolves and
    /// validates the source name once — per-frequency callers then pay no
    /// lookup or allocation.
    AcUnit(ComponentId),
}

impl Excitation {
    /// Resolves `input` to its [`ComponentId`] and validates that it is an
    /// independent source, yielding the single-input transfer-function
    /// excitation. Resolve once per sweep, not per frequency.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] when `input` does not
    /// exist and [`CircuitError::NotASource`] when it is not an
    /// independent V or I source.
    pub fn ac_unit(circuit: &Circuit, input: &str) -> Result<Self> {
        let id = circuit
            .find(input)
            .ok_or_else(|| CircuitError::UnknownComponent(input.to_string()))?;
        if !circuit.component(id).element().is_independent_source() {
            return Err(CircuitError::NotASource(input.to_string()));
        }
        Ok(Excitation::AcUnit(id))
    }
}

/// Precomputed index map from circuit structure to MNA rows/columns.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    /// Matrix dimension: non-ground nodes + branch currents.
    dim: usize,
    /// Non-ground node count.
    n_nodes: usize,
    /// Branch row (offset from `n_nodes`) per component needing one.
    branch_of: HashMap<ComponentId, usize>,
}

impl MnaLayout {
    /// Builds the layout for a circuit, validating controlled-source
    /// references.
    ///
    /// # Errors
    ///
    /// Returns an error when an F/H element references a missing or
    /// non-voltage-source control.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        let mut branch_of = HashMap::new();
        let mut next_branch = 0usize;
        for (idx, comp) in circuit.components().iter().enumerate() {
            let id = ComponentId(idx);
            if comp.element().needs_branch_current() {
                branch_of.insert(id, next_branch);
                next_branch += 1;
            }
            match comp.element() {
                Element::Cccs { control, .. } | Element::Ccvs { control, .. } => {
                    let ctrl_id = circuit
                        .find(control)
                        .ok_or_else(|| CircuitError::UnknownComponent(control.clone()))?;
                    if !matches!(
                        circuit.component(ctrl_id).element(),
                        Element::VoltageSource { .. }
                    ) {
                        return Err(CircuitError::InvalidControl {
                            component: comp.name().to_string(),
                            control: control.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
        let n_nodes = circuit.node_count() - 1;
        Ok(MnaLayout {
            dim: n_nodes + next_branch,
            n_nodes,
            branch_of,
        })
    }

    /// Total system dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-ground node unknowns.
    #[inline]
    pub fn node_unknowns(&self) -> usize {
        self.n_nodes
    }

    /// Matrix row/column of a node voltage; `None` for ground.
    #[inline]
    pub fn node_row(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Matrix row/column of a component's branch current.
    #[inline]
    pub fn branch_row(&self, id: ComponentId) -> Option<usize> {
        self.branch_of.get(&id).map(|b| self.n_nodes + b)
    }
}

/// Assembled complex MNA system at one frequency.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    /// System matrix.
    pub matrix: CMatrix,
    /// Right-hand side.
    pub rhs: Vec<Complex64>,
}

/// Assembles the complex MNA system of `circuit` at Laplace point `s`.
///
/// # Errors
///
/// Returns an error for invalid controlled-source references (via
/// [`MnaLayout::new`]) or an unknown `AcUnit` input name.
pub fn assemble(
    circuit: &Circuit,
    layout: &MnaLayout,
    s: Complex64,
    excitation: &Excitation,
) -> Result<MnaSystem> {
    if let Excitation::AcUnit(input) = excitation {
        if input.index() >= circuit.component_count() {
            return Err(CircuitError::UnknownComponent(format!(
                "component #{}",
                input.index()
            )));
        }
        if !circuit.component(*input).element().is_independent_source() {
            return Err(CircuitError::NotASource(
                circuit.component(*input).name().to_string(),
            ));
        }
    }

    let mut a = CMatrix::zeros(layout.dim(), layout.dim());
    let mut z = vec![Complex64::ZERO; layout.dim()];

    for (idx, comp) in circuit.components().iter().enumerate() {
        let id = ComponentId(idx);
        let nodes = comp.nodes();
        match comp.element() {
            Element::Resistor { r } => {
                stamp_admittance(
                    &mut a,
                    layout,
                    nodes[0],
                    nodes[1],
                    Complex64::from_real(1.0 / r),
                );
            }
            Element::Capacitor { c } => {
                stamp_admittance(&mut a, layout, nodes[0], nodes[1], s.scale(*c));
            }
            Element::Inductor { l } => {
                let k = layout.branch_row(id).expect("inductor has branch");
                stamp_branch_voltage(&mut a, layout, nodes[0], nodes[1], k);
                a[(k, k)] -= s.scale(*l);
            }
            Element::VoltageSource {
                dc,
                ac_mag,
                ac_phase,
                ..
            } => {
                let k = layout.branch_row(id).expect("vsource has branch");
                stamp_branch_voltage(&mut a, layout, nodes[0], nodes[1], k);
                z[k] = source_value(id, *dc, *ac_mag, *ac_phase, excitation);
            }
            Element::CurrentSource {
                dc,
                ac_mag,
                ac_phase,
                ..
            } => {
                let i = source_value(id, *dc, *ac_mag, *ac_phase, excitation);
                // Positive current flows p→n through the source: it leaves
                // node p and enters node n.
                if let Some(rp) = layout.node_row(nodes[0]) {
                    z[rp] -= i;
                }
                if let Some(rn) = layout.node_row(nodes[1]) {
                    z[rn] += i;
                }
            }
            Element::Vcvs { gain } => {
                let k = layout.branch_row(id).expect("vcvs has branch");
                stamp_branch_voltage(&mut a, layout, nodes[0], nodes[1], k);
                let g = Complex64::from_real(*gain);
                if let Some(cp) = layout.node_row(nodes[2]) {
                    a[(k, cp)] -= g;
                }
                if let Some(cn) = layout.node_row(nodes[3]) {
                    a[(k, cn)] += g;
                }
            }
            Element::Vccs { gm } => {
                let g = Complex64::from_real(*gm);
                let (op, on) = (layout.node_row(nodes[0]), layout.node_row(nodes[1]));
                let (cp, cn) = (layout.node_row(nodes[2]), layout.node_row(nodes[3]));
                for (out, sign_out) in [(op, 1.0), (on, -1.0)] {
                    let Some(o) = out else { continue };
                    for (ctl, sign_in) in [(cp, 1.0), (cn, -1.0)] {
                        let Some(c) = ctl else { continue };
                        a[(o, c)] += g.scale(sign_out * sign_in);
                    }
                }
            }
            Element::Cccs { gain, control } => {
                let ctrl_id = circuit.find(control).expect("validated by layout");
                let j = layout
                    .branch_row(ctrl_id)
                    .expect("control vsource has branch");
                let g = Complex64::from_real(*gain);
                if let Some(op) = layout.node_row(nodes[0]) {
                    a[(op, j)] += g;
                }
                if let Some(on) = layout.node_row(nodes[1]) {
                    a[(on, j)] -= g;
                }
            }
            Element::Ccvs { r, control } => {
                let ctrl_id = circuit.find(control).expect("validated by layout");
                let j = layout
                    .branch_row(ctrl_id)
                    .expect("control vsource has branch");
                let k = layout.branch_row(id).expect("ccvs has branch");
                stamp_branch_voltage(&mut a, layout, nodes[0], nodes[1], k);
                a[(k, j)] -= Complex64::from_real(*r);
            }
            Element::IdealOpAmp => {
                // nodes = [in_p, in_n, out]; branch = output current.
                let k = layout.branch_row(id).expect("opamp has branch");
                if let Some(o) = layout.node_row(nodes[2]) {
                    a[(o, k)] += Complex64::ONE;
                }
                if let Some(ip) = layout.node_row(nodes[0]) {
                    a[(k, ip)] += Complex64::ONE;
                }
                if let Some(inn) = layout.node_row(nodes[1]) {
                    a[(k, inn)] -= Complex64::ONE;
                }
            }
        }
    }

    Ok(MnaSystem { matrix: a, rhs: z })
}

fn source_value(
    id: ComponentId,
    dc: f64,
    ac_mag: f64,
    ac_phase: f64,
    excitation: &Excitation,
) -> Complex64 {
    match excitation {
        Excitation::Dc => Complex64::from_real(dc),
        Excitation::Ac => Complex64::from_polar(ac_mag, ac_phase),
        Excitation::AcUnit(input) => {
            if id == *input {
                Complex64::ONE
            } else {
                Complex64::ZERO
            }
        }
    }
}

/// Stamps the conductance pattern of a two-terminal admittance `y`.
fn stamp_admittance(a: &mut CMatrix, layout: &MnaLayout, p: NodeId, n: NodeId, y: Complex64) {
    let (rp, rn) = (layout.node_row(p), layout.node_row(n));
    if let Some(i) = rp {
        a[(i, i)] += y;
    }
    if let Some(i) = rn {
        a[(i, i)] += y;
    }
    if let (Some(i), Some(j)) = (rp, rn) {
        a[(i, j)] -= y;
        a[(j, i)] -= y;
    }
}

/// Stamps the branch-voltage pattern shared by V sources, inductors,
/// VCVS, and CCVS: the branch current enters the node equations and the
/// node voltages enter the branch equation.
fn stamp_branch_voltage(a: &mut CMatrix, layout: &MnaLayout, p: NodeId, n: NodeId, k: usize) {
    if let Some(i) = layout.node_row(p) {
        a[(i, k)] += Complex64::ONE;
        a[(k, i)] += Complex64::ONE;
    }
    if let Some(i) = layout.node_row(n) {
        a[(i, k)] -= Complex64::ONE;
        a[(k, i)] -= Complex64::ONE;
    }
}

/// Solution of one MNA solve: node voltages and branch currents.
#[derive(Debug, Clone)]
pub struct MnaSolution {
    /// Node voltages indexed by [`NodeId::index`]; entry 0 (ground) is 0.
    voltages: Vec<Complex64>,
    /// Branch currents for components that have them.
    currents: HashMap<ComponentId, Complex64>,
}

impl MnaSolution {
    /// Voltage at a node (ground reads 0).
    #[inline]
    pub fn voltage(&self, node: NodeId) -> Complex64 {
        self.voltages[node.index()]
    }

    /// Differential voltage `V(p) − V(n)`.
    #[inline]
    pub fn voltage_between(&self, p: NodeId, n: NodeId) -> Complex64 {
        self.voltage(p) - self.voltage(n)
    }

    /// Branch current of a component, if it has a branch unknown.
    #[inline]
    pub fn current(&self, id: ComponentId) -> Option<Complex64> {
        self.currents.get(&id).copied()
    }
}

/// Assembles and solves the circuit at Laplace point `s`.
///
/// # Errors
///
/// Returns [`CircuitError::Singular`] for ill-posed circuits (floating
/// nodes, source loops) and reference errors per [`assemble`].
pub fn solve(
    circuit: &Circuit,
    layout: &MnaLayout,
    s: Complex64,
    excitation: &Excitation,
) -> Result<MnaSolution> {
    let system = assemble(circuit, layout, s, excitation)?;
    let lu = Lu::factor(&system.matrix)?;
    let x = lu.solve(&system.rhs);

    let mut voltages = vec![Complex64::ZERO; circuit.node_count()];
    voltages[1..].copy_from_slice(&x[..circuit.node_count() - 1]);
    let mut currents = HashMap::new();
    for (idx, _) in circuit.components().iter().enumerate() {
        let id = ComponentId(idx);
        if let Some(row) = layout.branch_row(id) {
            currents.insert(id, x[row]);
        }
    }
    Ok(MnaSolution { voltages, currents })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> (Circuit, MnaLayout) {
        let mut ckt = Circuit::new("divider");
        ckt.voltage_source("V1", "in", "0", 10.0).unwrap();
        ckt.resistor("R1", "in", "mid", 1e3).unwrap();
        ckt.resistor("R2", "mid", "0", 1e3).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        (ckt, layout)
    }

    #[test]
    fn layout_dimensions() {
        let (ckt, layout) = divider();
        // 2 non-ground nodes + 1 vsource branch.
        assert_eq!(layout.dim(), 3);
        assert_eq!(layout.node_unknowns(), 2);
        let v1 = ckt.find("V1").unwrap();
        assert_eq!(layout.branch_row(v1), Some(2));
        assert_eq!(layout.node_row(NodeId::GROUND), None);
    }

    #[test]
    fn resistive_divider_dc() {
        let (ckt, layout) = divider();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let mid = ckt.find_node("mid").unwrap();
        assert!((sol.voltage(mid).re - 5.0).abs() < 1e-9);
        assert!(sol.voltage(mid).im.abs() < 1e-12);
        // Source current: 10V across 2k = 5 mA, flowing out of the + pin
        // means the branch current is −5 mA by the p→n convention.
        let i = sol.current(ckt.find("V1").unwrap()).unwrap();
        assert!((i.re + 5e-3).abs() < 1e-9, "source current {i}");
    }

    #[test]
    fn current_source_direction() {
        // 1 A from ground into node a (I1 n=a? convention check):
        // current flows p→n through the source. With p=0, n=a, current
        // enters node a: V(a) = I·R = 5 V.
        let mut ckt = Circuit::new("isrc");
        ckt.current_source("I1", "0", "a", 1.0).unwrap();
        ckt.resistor("R1", "a", "0", 5.0).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let a = ckt.find_node("a").unwrap();
        assert!((sol.voltage(a).re - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rc_lowpass_ac() {
        // R = 1 kΩ, C = 1 µF → ωc = 1000 rad/s.
        let mut ckt = Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let excitation = Excitation::ac_unit(&ckt, "V1").unwrap();
        let out = ckt.find_node("out").unwrap();

        let sol = solve(&ckt, &layout, Complex64::jw(1000.0), &excitation).unwrap();
        let h = sol.voltage(out);
        assert!((h.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((h.arg_deg() + 45.0).abs() < 1e-9);

        let sol = solve(&ckt, &layout, Complex64::jw(10.0), &excitation).unwrap();
        assert!((sol.voltage(out).abs() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn inductor_dc_short_ac_blocks() {
        // V1 -- L -- out -- R -- gnd: at DC the inductor is a short.
        let mut ckt = Circuit::new("rl");
        ckt.voltage_source("V1", "in", "0", 2.0).unwrap();
        ckt.inductor("L1", "in", "out", 1.0).unwrap();
        ckt.resistor("R1", "out", "0", 100.0).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let out = ckt.find_node("out").unwrap();

        let dc = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        assert!((dc.voltage(out).re - 2.0).abs() < 1e-9);
        // Inductor branch current = 2/100 = 20 mA.
        let il = dc.current(ckt.find("L1").unwrap()).unwrap();
        assert!((il.re - 0.02).abs() < 1e-9);

        // At ω = 10⁶ rad/s, |Z_L| = 10⁶ ≫ R: output ≈ 0.
        let hf = solve(
            &ckt,
            &layout,
            Complex64::jw(1e6),
            &Excitation::ac_unit(&ckt, "V1").unwrap(),
        )
        .unwrap();
        assert!(hf.voltage(out).abs() < 1e-3);
    }

    #[test]
    fn vcvs_gain() {
        let mut ckt = Circuit::new("e");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("Rl", "in", "0", 1e6).unwrap();
        ckt.vcvs("E1", "out", "0", "in", "0", 5.0).unwrap();
        ckt.resistor("Ro", "out", "0", 1e3).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let out = ckt.find_node("out").unwrap();
        assert!((sol.voltage(out).re - 5.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_transconductance() {
        let mut ckt = Circuit::new("g");
        ckt.voltage_source("V1", "in", "0", 2.0).unwrap();
        // 0.1 S from (in,0) driving current out of node "out" into ground;
        // out node load 50 Ω. I = gm·V(in) = 0.2 A from out→gnd through G.
        ckt.vccs("G1", "out", "0", "in", "0", 0.1).unwrap();
        ckt.resistor("Rl", "out", "0", 50.0).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let out = ckt.find_node("out").unwrap();
        // KCL at out: gm·Vin + Vout/R = 0 → Vout = −gm·Vin·R = −10.
        assert!((sol.voltage(out).re + 10.0).abs() < 1e-9);
    }

    #[test]
    fn cccs_mirrors_current() {
        // V1 drives 1 mA through R1 (1 V / 1 kΩ). F1 mirrors ×2 into R2.
        let mut ckt = Circuit::new("f");
        ckt.voltage_source("V1", "a", "0", 1.0).unwrap();
        ckt.resistor("R1", "a", "0", 1e3).unwrap();
        ckt.cccs("F1", "b", "0", "V1", 2.0).unwrap();
        ckt.resistor("R2", "b", "0", 1e3).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let b = ckt.find_node("b").unwrap();
        // Control current (through V1, p→n) is −1 mA; F1 injects
        // gain·i_ctrl into node b: V(b) = −(−2 mA·1 kΩ)… sign check:
        // the magnitude must be 2 V.
        assert!((sol.voltage(b).re.abs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut ckt = Circuit::new("h");
        ckt.voltage_source("V1", "a", "0", 1.0).unwrap();
        ckt.resistor("R1", "a", "0", 1e3).unwrap();
        ckt.ccvs("H1", "b", "0", "V1", 500.0).unwrap();
        ckt.resistor("R2", "b", "0", 1e3).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let b = ckt.find_node("b").unwrap();
        // |V(b)| = r·|i_ctrl| = 500 · 1 mA = 0.5 V.
        assert!((sol.voltage(b).re.abs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ideal_opamp_inverting_amplifier() {
        // Classic inverting amp: gain = −R2/R1 = −10.
        let mut ckt = Circuit::new("inv");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "sum", 1e3).unwrap();
        ckt.resistor("R2", "sum", "out", 1e4).unwrap();
        ckt.ideal_opamp("U1", "0", "sum", "out").unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let out = ckt.find_node("out").unwrap();
        assert!((sol.voltage(out).re + 10.0).abs() < 1e-9);
        // Virtual ground at the summing node.
        let sum = ckt.find_node("sum").unwrap();
        assert!(sol.voltage(sum).abs() < 1e-9);
    }

    #[test]
    fn floating_node_is_singular() {
        // A node reached only through a capacitor has no DC path: at
        // s = 0 its matrix row is all-zero and elimination must fail.
        let mut ckt = Circuit::new("bad");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.capacitor("C1", "in", "out", 1e-6).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let err = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap_err();
        assert!(matches!(err, CircuitError::Singular { .. }));
    }

    #[test]
    fn dangling_resistor_node_carries_no_current() {
        // A node connected by a single resistor is well-posed: zero
        // current flows, so it floats up to the driving voltage.
        let mut ckt = Circuit::new("dangling");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let out = ckt.find_node("out").unwrap();
        assert!((sol.voltage(out).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ac_unit_selects_input() {
        let mut ckt = Circuit::new("two-src");
        ckt.voltage_source("V1", "a", "0", 3.0).unwrap();
        ckt.voltage_source_full("V2", "b", "0", 7.0, 7.0, 0.0, None)
            .unwrap();
        ckt.resistor("R1", "a", "c", 1e3).unwrap();
        ckt.resistor("R2", "b", "c", 1e3).unwrap();
        ckt.resistor("R3", "c", "0", 1e30).unwrap();
        let layout = MnaLayout::new(&ckt).unwrap();
        let c = ckt.find_node("c").unwrap();
        // With V1 as unit input and V2 zeroed, superposition gives 0.5.
        let sol = solve(
            &ckt,
            &layout,
            Complex64::jw(1.0),
            &Excitation::ac_unit(&ckt, "V1").unwrap(),
        )
        .unwrap();
        assert!((sol.voltage(c).abs() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ac_unit_unknown_source_rejected() {
        let (ckt, _layout) = divider();
        let err = Excitation::ac_unit(&ckt, "V99").unwrap_err();
        assert!(matches!(err, CircuitError::UnknownComponent(_)));
        let err = Excitation::ac_unit(&ckt, "R1").unwrap_err();
        assert!(matches!(err, CircuitError::NotASource(_)));
    }

    #[test]
    fn assemble_rejects_foreign_excitation_ids() {
        // An AcUnit id resolved against a *different* circuit must not
        // silently excite the wrong component here.
        let (ckt, layout) = divider();
        let mut other = Circuit::new("other");
        other.resistor("Ra", "a", "0", 1.0).unwrap();
        other.resistor("Rb", "a", "b", 1.0).unwrap();
        other.resistor("Rc", "b", "0", 1.0).unwrap();
        other.resistor("Rd", "b", "c", 1.0).unwrap();
        other.voltage_source("Vx", "c", "0", 1.0).unwrap();
        let foreign = Excitation::ac_unit(&other, "Vx").unwrap();
        // Id 4 is out of range for the 3-component divider.
        let err = assemble(&ckt, &layout, Complex64::ZERO, &foreign).unwrap_err();
        assert!(matches!(err, CircuitError::UnknownComponent(_)));
        // An in-range id that is not a source is rejected too.
        let not_source = Excitation::AcUnit(ComponentId(1)); // R1
        let err = assemble(&ckt, &layout, Complex64::ZERO, &not_source).unwrap_err();
        assert!(matches!(err, CircuitError::NotASource(_)));
    }

    #[test]
    fn voltage_between_nodes() {
        let (ckt, layout) = divider();
        let sol = solve(&ckt, &layout, Complex64::ZERO, &Excitation::Dc).unwrap();
        let input = ckt.find_node("in").unwrap();
        let mid = ckt.find_node("mid").unwrap();
        let d = sol.voltage_between(input, mid);
        assert!((d.re - 5.0).abs() < 1e-9);
    }
}
