//! Error types for circuit construction and analysis.

use std::fmt;

use ft_numerics::SingularMatrixError;

/// Error raised while building or analysing a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A component name was used twice.
    DuplicateComponent(String),
    /// A referenced component does not exist.
    UnknownComponent(String),
    /// A referenced node does not exist.
    UnknownNode(String),
    /// A component value is non-finite or out of its legal range.
    InvalidValue {
        /// Component whose value is invalid.
        component: String,
        /// The offending value.
        value: f64,
        /// Explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// A controlled source references a component that is not a voltage
    /// source (SPICE F/H semantics require a voltage-source ammeter).
    InvalidControl {
        /// The controlled source.
        component: String,
        /// The (non-voltage-source) control reference.
        control: String,
    },
    /// The MNA system is singular — typically a floating node or a loop of
    /// ideal voltage sources.
    Singular {
        /// Index of the MNA column where elimination failed.
        column: usize,
    },
    /// One deviation of a batch fault sweep produced a (numerically)
    /// singular system at one grid frequency. Unlike [`CircuitError::Singular`]
    /// this identifies *which* batch entry is ill-posed, so callers can
    /// attribute the failure to a fault instead of aborting blind.
    SingularFault {
        /// Index of the offending deviation in the batch passed to the
        /// sweep.
        fault: usize,
        /// Angular frequency (rad/s) at which the deviated system is
        /// singular.
        omega: f64,
    },
    /// The analysis was asked to use a component in a role it cannot play
    /// (e.g. AC input that is not an independent source).
    NotASource(String),
    /// The circuit has no ground reference (node `0`).
    NoGround,
    /// Component has the wrong number of terminals for its element kind.
    TerminalMismatch {
        /// Component name.
        component: String,
        /// Expected terminal count.
        expected: usize,
        /// Actual terminal count.
        actual: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateComponent(name) => {
                write!(f, "component name `{name}` is already in use")
            }
            CircuitError::UnknownComponent(name) => {
                write!(f, "unknown component `{name}`")
            }
            CircuitError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            CircuitError::InvalidValue {
                component,
                value,
                reason,
            } => write!(f, "invalid value {value} for `{component}`: {reason}"),
            CircuitError::InvalidControl { component, control } => write!(
                f,
                "`{component}` control reference `{control}` is not a voltage source"
            ),
            CircuitError::Singular { column } => write!(
                f,
                "singular MNA system (column {column}): check for floating nodes or source loops"
            ),
            CircuitError::SingularFault { fault, omega } => write!(
                f,
                "deviated system of batch fault #{fault} is singular at ω={omega} rad/s"
            ),
            CircuitError::NotASource(name) => {
                write!(f, "`{name}` is not an independent source")
            }
            CircuitError::NoGround => write!(f, "circuit has no ground (node `0`) connection"),
            CircuitError::TerminalMismatch {
                component,
                expected,
                actual,
            } => write!(
                f,
                "`{component}` expects {expected} terminals, got {actual}"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}

impl From<SingularMatrixError> for CircuitError {
    fn from(e: SingularMatrixError) -> Self {
        CircuitError::Singular { column: e.column }
    }
}

/// Convenience alias for circuit results.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(CircuitError, &str)> = vec![
            (
                CircuitError::DuplicateComponent("R1".into()),
                "already in use",
            ),
            (CircuitError::UnknownComponent("X9".into()), "unknown"),
            (CircuitError::UnknownNode("n7".into()), "unknown node"),
            (
                CircuitError::InvalidValue {
                    component: "R1".into(),
                    value: -1.0,
                    reason: "resistance must be positive",
                },
                "must be positive",
            ),
            (
                CircuitError::InvalidControl {
                    component: "F1".into(),
                    control: "R2".into(),
                },
                "not a voltage source",
            ),
            (CircuitError::Singular { column: 3 }, "singular"),
            (
                CircuitError::SingularFault {
                    fault: 13,
                    omega: 2.0,
                },
                "batch fault #13",
            ),
            (CircuitError::NotASource("R1".into()), "not an independent"),
            (CircuitError::NoGround, "ground"),
            (
                CircuitError::TerminalMismatch {
                    component: "E1".into(),
                    expected: 4,
                    actual: 2,
                },
                "terminals",
            ),
        ];
        for (err, frag) in cases {
            assert!(err.to_string().contains(frag), "`{err}` missing `{frag}`");
        }
    }

    #[test]
    fn from_singular_matrix() {
        let e: CircuitError = SingularMatrixError { column: 2 }.into();
        assert_eq!(e, CircuitError::Singular { column: 2 });
    }
}
