//! The `ftd` command-line front end.
//!
//! The subcommands mirror the serving lifecycle:
//!
//! * `ftd build-bank` — offline phase: simulate the paper CUT's fault
//!   dictionary, materialise trajectories, persist the bank.
//! * `ftd diagnose` — online phase: load a bank, simulate observed
//!   signatures for requested or random faults (or read pre-measured
//!   signatures with `--requests`), answer them in a batch.
//! * `ftd serve` — the sharded front-end: a directory of banks keyed by
//!   CUT id, a request stream on stdin, diagnoses on stdout, served by
//!   a persistent worker pool.
//! * `ftd gen-requests` — mint a deterministic request file near a
//!   bank's trajectories (smoke tests, load generators).
//! * `ftd bank-info` — inspect a bank container: format version,
//!   section table with per-section payload bytes and checksum status,
//!   entry counts.
//! * `ftd stats` — pretty-print a stats file written by
//!   `ftd serve --stats-file` (greppable text or Prometheus exposition).
//! * `ftd bench-scan-vs-index` — measure the spatial index against the
//!   linear scan on a production-scale synthetic bank.
//!
//! Argument parsing is hand-rolled (the environment is offline; no
//! `clap`). Errors print to stderr; exit codes are `0` success, `1`
//! runtime failure, `2` usage error.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Instant;

use ft_circuit::{tow_thomas_normalized, Probe};
use ft_core::{
    ambiguity_groups, measure_signature, Diagnoser, DiagnoserConfig, Diagnosis, GeometryOptions,
    LinearScan, SegmentQuery, Signature, TestVector,
};
use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse, MeasurementNoise, ParametricFault};
use ft_numerics::FrequencyGrid;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bank::{MappedBank, TrajectoryBank};
use crate::codec::{peek_version, Container, BANK_VERSION, BANK_VERSION_V1, BANK_VERSION_V2};
use crate::engine::{diagnose_batch_topk_with, diagnose_batch_with, DiagnosisEngine, EngineConfig};
use crate::index::SegmentIndex;
use crate::obs::{MetricsRegistry, Snapshot};
use crate::pool::ServeHandle;
use crate::store::{BankStore, DiagnosisRequest, StoreConfig};
use crate::synthetic::{synthetic_circuit_bank, synthetic_queries, synthetic_trajectory_set};
use crate::tree_index::TreeIndex;

const USAGE: &str = "\
ftd — fault-trajectory diagnosis engine

USAGE:
  ftd build-bank [--out PATH] [--f1 W] [--f2 W] [--grid-points N] [--q Q]
                 [--format 2|3]
  ftd reencode IN OUT [--format 2|3]
  ftd diagnose --bank PATH [--fault COMP:PCT]... [--random N]
               [--noise-db S] [--seed N] [--workers N] [--linear | --topk K]
               [--q Q]
  ftd diagnose --bank PATH --requests FILE [--cut-id ID] [--workers N]
               [--linear | --topk K]
  ftd serve --banks DIR [--workers N] [--batch N] [--topk K]
            [--mem-budget BYTES[K|M|G]] [--stat-interval-ms N]
            [--stats-file PATH] [--stats-every N]
            [--listen ADDR] [--refresh-ms N] [--max-inflight N]
            [--write-highwater BYTES[K|M|G]]
  ftd loadgen --connect ADDR --requests FILE [--connections N]
            [--depth N] [--total N] [--out PATH] [--json PATH] [--stats]
  ftd gen-requests --bank PATH --cut-id ID [--count N] [--seed N]
  ftd bank-info [--mapped] PATH
  ftd stats [--prometheus] FILE
  ftd bench-scan-vs-index [--components N] [--points N] [--dim D]
               [--queries N] [--seed N] [--workers N] [--leaf N]
               [--topk K] [--circuit-order N] [--segments N[,N...]]
               [--json PATH]
  ftd help | --help

SUBCOMMANDS:
  build-bank           Simulate the Tow-Thomas CUT's fault dictionary on
                       the stamp-split AC sweep engine, materialise the
                       fault trajectories at the test vector {--f1, --f2},
                       and persist the bank. Deterministic: repeated runs
                       are byte-identical regardless of worker count.
                       --format picks the container version: 3 (default)
                       stores trajectories 8-byte-aligned for zero-copy
                       mapped serving; 2 writes the previous layout.
  reencode             Decode a bank in any readable format (v1/v2/v3)
                       and re-persist it in --format (default 3).
                       Lossless: serving from the output is
                       byte-identical to serving from the input.
  diagnose             Load a bank, measure signatures for the requested
                       (--fault R2:+25) and/or --random sampled unknown
                       faults on the same CUT, and diagnose them as one
                       batch (spatial index unless --linear). With
                       --requests FILE, skip simulation and instead
                       answer the file's signature lines (the `serve`
                       request format; --cut-id keeps only matching
                       lines), printing one tab-separated diagnosis line
                       per request — byte-comparable with `serve` output.
                       --topk K routes queries through the index's top-k
                       early-termination path: traversal stops once the
                       best K trajectories and the ambiguity set are
                       settled, so the printed verdict (best component +
                       ambiguity set) is byte-identical to the full
                       ranking while examining far fewer segments.
  serve                Open a shard directory (<dir>/<cut-id>.ftb, loaded
                       lazily), read requests from stdin — one per line:
                       `CUT_ID X1 X2 ...` — route each to its CUT's bank,
                       and print diagnoses to stdout in input order.
                       Batches of --batch requests pipeline through a
                       persistent pool of --workers threads; results are
                       byte-identical at every worker count. Shards are
                       memory-mapped zero-copy, swap in place when their
                       file changes on disk, and --mem-budget caps
                       resident shard bytes with two-phase eviction:
                       cold section decodes (dictionaries) drop first,
                       whole LRU shards only after that (evicted state
                       reloads on demand; results are unchanged).
                       --stat-interval-ms throttles the per-hit stat(2)
                       generation probe: 0 (default) checks every hit,
                       N>0 trusts a confirmed shard for N ms (a rebuilt
                       shard is picked up within that window).
                       --stats-file snapshots serving metrics (qps,
                       latency histograms, shard cache hit rate) to a
                       JSON file on exit — and every N requests with
                       --stats-every; a `!stats` request line prints a
                       one-shot snapshot to stderr. Metrics never change
                       diagnosis output; without --stats-file nothing is
                       recorded at all. --topk K serves every request
                       through the top-k early-termination query path;
                       output lines stay byte-identical to a full-ranking
                       server.
                       With --listen ADDR the same shard directory is
                       served over TCP instead of stdin: a non-blocking
                       epoll event loop speaking length-prefixed,
                       checksummed request/response frames, with
                       per-connection pipelining (responses in request
                       order), bounded backpressure (--max-inflight
                       requests in flight and --write-highwater unsent
                       bytes per connection), periodic shard refresh
                       every --refresh-ms (0 disables), and graceful
                       drain on SIGINT/SIGTERM: stop accepting, answer
                       everything in flight, flush, exit 0. Response
                       lines are byte-identical to stdin serve. Listen
                       mode always keeps live metrics (a stats frame
                       serves the Prometheus exposition on demand).
  loadgen              Drive pipelined request traffic from a requests
                       file (`gen-requests` format) at a --listen server
                       over --connections sockets with --depth requests
                       in flight each, cycling the file until --total
                       requests (default: one pass). Reports req/s and
                       p50/p90/p99 latency to stderr, optionally as JSON
                       with --json; --out (single connection) captures
                       response lines in request order for byte-exact
                       comparison against `diagnose --requests`; --stats
                       prints the server's Prometheus stats afterwards.
  gen-requests         Load a bank and print --count deterministic
                       request lines (signatures jittered around the
                       bank's trajectories) tagged with --cut-id.
  bank-info            Print a bank container's format version, section
                       table (type, payload bytes, checksum status), and
                       entry counts without serving from it. With
                       --mapped, open through the server's zero-copy
                       mmap path instead and report per-section payload
                       bytes and residency: which sections are viewed in
                       place (v3 trajectories), which decode lazily, and
                       how many bytes a fresh open pins.
  stats                Read a --stats-file snapshot and print it as
                       greppable `name value` lines (counters, gauges,
                       histogram count/sum/mean/p50/p90/p99, derived
                       qps and shard cache hit rate) — or as the
                       Prometheus text exposition with --prometheus.
  bench-scan-vs-index  Time the linear scan against the legacy binary
                       tree, the flat SIMD-friendly index, and the top-k
                       early-termination path (K from --topk, default 5)
                       on a synthetic bank, single-query and batched,
                       with bit-identity self-checks on every path.
                       --segments N[,N...] sweeps bank sizes (e.g.
                       1000,10000,100000; trajectories are derived from
                       --points at 2*points segments each); --json PATH
                       writes the per-size timings as JSON. With
                       --circuit-order N the bank is *simulated*
                       (engine-built fault dictionary of an order-N RLC
                       ladder) instead of generated geometrically;
                       --points then sets the deviation count per branch
                       (max 320) and --dim is ignored.
";

/// Entry point for the `ftd` binary: parses `args` (without the program
/// name) and runs the requested subcommand.
///
/// Returns the process exit code.
pub fn main_from_args(args: Vec<String>) -> i32 {
    let (cmd, rest) = match args.split_first() {
        None => {
            eprint!("{USAGE}");
            return 2;
        }
        Some((cmd, rest)) => (cmd.as_str(), rest),
    };
    if matches!(cmd, "help" | "--help" | "-h") {
        print!("{USAGE}");
        return 0;
    }
    let run = match cmd {
        "build-bank" => build_bank(rest),
        "reencode" => reencode(rest),
        "diagnose" => diagnose(rest),
        "serve" => serve(rest),
        "loadgen" => loadgen(rest),
        "gen-requests" => gen_requests(rest),
        "bank-info" => bank_info(rest),
        "stats" => stats(rest),
        "bench-scan-vs-index" => bench_scan_vs_index(rest),
        other => {
            eprintln!("ftd: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            return 2;
        }
    };
    match run {
        Ok(()) => 0,
        Err(CliError::Usage(msg)) => {
            eprintln!("ftd: {msg}\n");
            eprint!("{USAGE}");
            2
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("ftd: {msg}");
            1
        }
    }
}

#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime(msg: impl std::fmt::Display) -> CliError {
    CliError::Runtime(msg.to_string())
}

/// Minimal flag cursor: `--flag value` pairs plus repeatable flags.
struct Flags<'a> {
    args: std::slice::Iter<'a, String>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args: args.iter() }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        self.args.next().map(String::as_str)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.args
            .next()
            .map(String::as_str)
            .ok_or_else(|| usage(format!("{flag} needs a value")))
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| usage(format!("{flag}: cannot parse `{raw}`")))
    }
}

/// Renders one serve-format diagnosis line: tab-separated CUT id, best
/// component, estimated deviation (%), distance (dB), and the ambiguity
/// set. Floats use Rust's shortest round-trip formatting, so two paths
/// that compute identical values render identical bytes — the property
/// the CI smoke `cmp`s `serve` output against `diagnose --requests`.
pub(crate) fn render_diagnosis_line(cut_id: &str, diagnosis: &Diagnosis) -> String {
    let best = diagnosis.best();
    format!(
        "{cut_id}\t{}\t{}\t{}\t{}",
        best.component,
        best.deviation_pct,
        best.distance,
        diagnosis.ambiguity_set().join(",")
    )
}

/// Parses one request line — `CUT_ID X1 X2 ...`, whitespace-separated —
/// into a [`DiagnosisRequest`]. Blank lines and `#` comments yield
/// `None`.
fn parse_request_line(line: &str, lineno: usize) -> Result<Option<DiagnosisRequest>, CliError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let cut_id = tokens.next().expect("non-empty line has a first token");
    let coords: Vec<f64> = tokens
        .map(|t| {
            t.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .ok_or_else(|| {
                    runtime(format!(
                        "request line {lineno}: bad signature coordinate `{t}`"
                    ))
                })
        })
        .collect::<Result<_, _>>()?;
    if coords.is_empty() {
        return Err(runtime(format!(
            "request line {lineno}: no signature coordinates after the CUT id"
        )));
    }
    Ok(Some(DiagnosisRequest::new(cut_id, Signature::new(coords))))
}

/// Parses `COMP:PCT` fault specs (`R2:+25`, `C1:-12.5`, `R3:30%`).
fn parse_fault(spec: &str) -> Result<ParametricFault, CliError> {
    let (comp, pct) = spec
        .split_once(':')
        .ok_or_else(|| usage(format!("--fault expects COMP:PCT, got `{spec}`")))?;
    let pct: f64 = pct
        .trim_end_matches('%')
        .parse()
        .map_err(|_| usage(format!("--fault {spec}: bad percentage")))?;
    if comp.is_empty() || !pct.is_finite() || pct <= -100.0 {
        return Err(usage(format!("--fault {spec}: invalid fault")));
    }
    Ok(ParametricFault::from_percent(comp, pct))
}

/// Encodes `bank` in container format `format` (2 or 3, validated by
/// the caller via [`parse_bank_format`]).
fn encode_bank(bank: &TrajectoryBank, format: u16) -> Vec<u8> {
    match format {
        BANK_VERSION_V2 => bank.to_bytes_v2(),
        _ => bank.to_bytes(),
    }
}

fn parse_bank_format(raw: &str) -> Result<u16, CliError> {
    match raw {
        "2" => Ok(BANK_VERSION_V2),
        "3" => Ok(BANK_VERSION),
        other => Err(usage(format!(
            "--format must be 2 or 3, got `{other}` (v1 is read-only legacy)"
        ))),
    }
}

fn build_bank(args: &[String]) -> Result<(), CliError> {
    let mut out = "bank.ftb".to_string();
    let mut f1 = 0.6f64;
    let mut f2 = 1.6f64;
    let mut grid_points = 41usize;
    let mut q = 1.0f64;
    let mut format = BANK_VERSION;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--out" => out = flags.value("--out")?.to_string(),
            "--f1" => f1 = flags.parse("--f1")?,
            "--f2" => f2 = flags.parse("--f2")?,
            "--grid-points" => grid_points = flags.parse("--grid-points")?,
            "--q" => q = flags.parse("--q")?,
            "--format" => format = parse_bank_format(flags.value("--format")?)?,
            other => return Err(usage(format!("build-bank: unknown flag `{other}`"))),
        }
    }
    if !(f1.is_finite() && f2.is_finite() && f1 > 0.0 && f2 > f1) {
        return Err(usage("need 0 < --f1 < --f2"));
    }
    if grid_points < 2 {
        return Err(usage("--grid-points must be at least 2"));
    }

    let started = Instant::now();
    let bench = tow_thomas_normalized(q).map_err(runtime)?;
    let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
    let grid = FrequencyGrid::log_space(bench.search_band.0, bench.search_band.1, grid_points);
    let dict = FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)
        .map_err(runtime)?;
    let bank = TrajectoryBank::build(dict, &TestVector::pair(f1, f2));
    let bytes = encode_bank(&bank, format);
    std::fs::write(&out, &bytes).map_err(runtime)?;

    println!(
        "built bank `{out}` (format v{format}): {} faults x {} grid points, {} trajectories / {} segments at tv {}, {} bytes, {:.2?}",
        bank.dictionary().entries().len(),
        bank.dictionary().grid().len(),
        bank.trajectory_set().len(),
        bank.trajectory_set().total_segments(),
        bank.test_vector(),
        bytes.len(),
        started.elapsed(),
    );
    Ok(())
}

/// `ftd reencode IN OUT [--format N]` — decode a bank in any readable
/// format (v1/v2/v3) and re-persist it in the requested container
/// format (default: current, v3). Re-encoding is lossless: serving from
/// the output is byte-identical to serving from the input.
fn reencode(args: &[String]) -> Result<(), CliError> {
    let mut paths: Vec<&str> = Vec::new();
    let mut format = BANK_VERSION;
    let mut flags = Flags::new(args);
    while let Some(arg) = flags.next_flag() {
        match arg {
            "--format" => format = parse_bank_format(flags.value("--format")?)?,
            other if other.starts_with("--") => {
                return Err(usage(format!("reencode: unknown flag `{other}`")))
            }
            path => paths.push(path),
        }
    }
    let [input, output] = paths[..] else {
        return Err(usage("reencode takes IN and OUT paths"));
    };
    let started = Instant::now();
    let bank = TrajectoryBank::load(input).map_err(runtime)?;
    let bytes = encode_bank(&bank, format);
    std::fs::write(output, &bytes).map_err(|e| runtime(format!("{output}: {e}")))?;
    println!(
        "re-encoded `{input}` -> `{output}` (format v{format}): {} trajectories / {} segments, {} bytes, {:.2?}",
        bank.trajectory_set().len(),
        bank.trajectory_set().total_segments(),
        bytes.len(),
        started.elapsed(),
    );
    Ok(())
}

fn diagnose(args: &[String]) -> Result<(), CliError> {
    let mut bank_path: Option<String> = None;
    let mut faults: Vec<ParametricFault> = Vec::new();
    let mut random = 0usize;
    let mut noise_db: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut linear = false;
    let mut topk: Option<usize> = None;
    let mut q: Option<f64> = None;
    let mut requests_path: Option<String> = None;
    let mut cut_id: Option<String> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--bank" => bank_path = Some(flags.value("--bank")?.to_string()),
            "--fault" => faults.push(parse_fault(flags.value("--fault")?)?),
            "--random" => random = flags.parse("--random")?,
            "--noise-db" => noise_db = Some(flags.parse("--noise-db")?),
            "--seed" => seed = Some(flags.parse("--seed")?),
            "--workers" => workers = Some(flags.parse("--workers")?),
            "--linear" => linear = true,
            "--topk" => topk = Some(flags.parse("--topk")?),
            "--q" => q = Some(flags.parse("--q")?),
            "--requests" => requests_path = Some(flags.value("--requests")?.to_string()),
            "--cut-id" => cut_id = Some(flags.value("--cut-id")?.to_string()),
            other => return Err(usage(format!("diagnose: unknown flag `{other}`"))),
        }
    }
    let bank_path = bank_path.ok_or_else(|| usage("diagnose needs --bank PATH"))?;
    if topk == Some(0) {
        return Err(usage("--topk must be at least 1"));
    }
    if linear && topk.is_some() {
        return Err(usage("--linear and --topk are mutually exclusive"));
    }
    if let Some(requests_path) = requests_path {
        // Pre-measured signatures: every simulation flag would silently
        // do nothing, so passing any of them is an error, not a shrug.
        if !faults.is_empty() || random > 0 || noise_db.is_some() || seed.is_some() || q.is_some() {
            return Err(usage(
                "--requests reads pre-measured signatures; drop the simulation flags \
                 (--fault/--random/--noise-db/--seed/--q)",
            ));
        }
        return diagnose_requests(
            &bank_path,
            &requests_path,
            cut_id.as_deref(),
            workers,
            linear,
            topk,
        );
    }
    if cut_id.is_some() {
        return Err(usage("--cut-id only applies with --requests"));
    }
    let noise_db = noise_db.unwrap_or(0.0);
    let seed = seed.unwrap_or(2005);
    let q = q.unwrap_or(1.0);
    if !(noise_db.is_finite() && noise_db >= 0.0) {
        return Err(usage("--noise-db must be non-negative"));
    }
    if faults.is_empty() && random == 0 {
        random = 8;
    }

    let engine = DiagnosisEngine::load(
        &bank_path,
        EngineConfig {
            diagnoser: DiagnoserConfig::default(),
            workers,
            topk,
        },
    )
    .map_err(runtime)?;
    let bank = engine
        .bank()
        .expect("`ftd diagnose` loads banks on the heap");
    println!(
        "loaded `{bank_path}`: {} trajectories / {} segments at tv {}",
        bank.trajectory_set().len(),
        bank.trajectory_set().total_segments(),
        bank.test_vector(),
    );

    // The bank stores responses, not the netlist; observations are
    // simulated on a rebuilt CUT, which must be the circuit the bank
    // was built from. Verify that by reproducing the bank's stored
    // golden response — a `--q` mismatch fails loudly here instead of
    // silently skewing every diagnosis.
    let bench = tow_thomas_normalized(q).map_err(runtime)?;
    let golden = ft_circuit::sweep(
        &bench.circuit,
        bank.dictionary().input(),
        bank.dictionary().probe(),
        bank.dictionary().grid(),
    )
    .map_err(runtime)?
    .magnitude_db();
    let drift = golden
        .iter()
        .zip(bank.dictionary().golden_db())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    if drift > 1e-6 {
        return Err(runtime(format!(
            "bank golden response does not match the Q={q} CUT (max drift {drift:.3} dB); \
             was the bank built with a different --q?"
        )));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..random {
        faults.push(bank.dictionary().universe().sample_unknown(&mut rng, 5.0));
    }

    let tv = bank.test_vector().clone();
    let noise = MeasurementNoise::new(noise_db);
    let mut signatures = Vec::with_capacity(faults.len());
    for fault in &faults {
        let faulty = fault.apply(&bench.circuit).map_err(runtime)?;
        let mut sig = measure_signature(&faulty, &bench.circuit, &bench.input, &bench.probe, &tv)
            .map_err(runtime)?;
        if noise_db > 0.0 {
            sig = Signature::new(
                sig.coords()
                    .iter()
                    .map(|&x| noise.perturb(x, &mut rng))
                    .collect::<Vec<f64>>(),
            );
        }
        signatures.push(sig);
    }

    let started = Instant::now();
    let results = if linear {
        engine.diagnose_batch_linear(&signatures)
    } else {
        engine.diagnose_batch(&signatures)
    };
    let elapsed = started.elapsed();

    let mut top1 = 0usize;
    let mut in_set = 0usize;
    println!("true fault      predicted            est.dev   distance  ambiguity set");
    for (fault, diagnosis) in faults.iter().zip(&results) {
        let best = diagnosis.best();
        let hit = best.component == fault.component();
        let set_hit = diagnosis.ambiguity_set().contains(&fault.component());
        top1 += hit as usize;
        in_set += set_hit as usize;
        println!(
            "{:<15} {:<20} {:>+7.1}%  {:>8.4}  {{{}}}{}",
            fault.to_string(),
            best.component,
            best.deviation_pct,
            best.distance,
            diagnosis.ambiguity_set().join(", "),
            if hit {
                ""
            } else if set_hit {
                "  (in set)"
            } else {
                "  MISS"
            },
        );
    }
    println!(
        "{}/{} top-1, {}/{} in ambiguity set, {} path, {:.2?} for the batch",
        top1,
        results.len(),
        in_set,
        results.len(),
        if linear {
            "linear"
        } else if topk.is_some() {
            "indexed top-k"
        } else {
            "indexed"
        },
        elapsed,
    );
    if topk.is_some() {
        // How often the (possibly truncated) verdict already pins down a
        // single structural ambiguity group of the bank.
        let groups = ambiguity_groups(bank.trajectory_set(), 1e-6, &GeometryOptions::default());
        let resolved = results
            .iter()
            .filter(|d| groups.is_resolved(&d.ambiguity_set()))
            .count();
        println!(
            "{resolved}/{} verdicts resolved to a single structural ambiguity group",
            results.len(),
        );
    }
    Ok(())
}

/// The `--requests` arm of `ftd diagnose`: the single-bank reference
/// path of the sharded server. Reads the request file, keeps the lines
/// whose CUT id matches `--cut-id` (all lines when omitted), answers
/// them with `DiagnosisEngine::diagnose_batch`, and prints serve-format
/// lines — so `cmp`-ing against the matching slice of `ftd serve` output
/// proves the pooled sharded front-end byte-identical to the per-bank
/// batch engine.
fn diagnose_requests(
    bank_path: &str,
    requests_path: &str,
    cut_id: Option<&str>,
    workers: Option<usize>,
    linear: bool,
    topk: Option<usize>,
) -> Result<(), CliError> {
    let engine = DiagnosisEngine::load(
        bank_path,
        EngineConfig {
            diagnoser: DiagnoserConfig::default(),
            workers,
            topk,
        },
    )
    .map_err(runtime)?;
    let text = std::fs::read_to_string(requests_path)
        .map_err(|e| runtime(format!("{requests_path}: {e}")))?;
    let mut kept: Vec<DiagnosisRequest> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(req) = parse_request_line(line, i + 1)? {
            if cut_id.is_none_or(|id| id == req.cut_id) {
                kept.push(req);
            }
        }
    }
    let dim = engine.trajectory_set().dim();
    for req in &kept {
        if req.signature.dim() != dim {
            return Err(runtime(format!(
                "request for `{}` has dimension {}, bank `{bank_path}` serves dimension {dim}",
                req.cut_id,
                req.signature.dim(),
            )));
        }
    }
    let signatures: Vec<Signature> = kept.iter().map(|r| r.signature.clone()).collect();
    let results = if linear {
        engine.diagnose_batch_linear(&signatures)
    } else {
        engine.diagnose_batch(&signatures)
    };
    let mut out = String::new();
    for (req, diagnosis) in kept.iter().zip(&results) {
        out.push_str(&render_diagnosis_line(&req.cut_id, diagnosis));
        out.push('\n');
    }
    print!("{out}");
    Ok(())
}

/// Parses a byte-count flag value: a plain integer, optionally suffixed
/// with `K`, `M`, or `G` (powers of 1024, case-insensitive).
fn parse_mem_budget(raw: &str) -> Result<u64, CliError> {
    let (digits, shift) = match raw.as_bytes().last() {
        Some(b'k' | b'K') => (&raw[..raw.len() - 1], 10u32),
        Some(b'm' | b'M') => (&raw[..raw.len() - 1], 20),
        Some(b'g' | b'G') => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| usage(format!("--mem-budget: expected BYTES[K|M|G], got `{raw}`")))?;
    n.checked_shl(shift)
        .filter(|_| n.leading_zeros() >= shift)
        .ok_or_else(|| usage(format!("--mem-budget `{raw}` overflows u64")))
}

fn serve(args: &[String]) -> Result<(), CliError> {
    let mut banks: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut batch = 64usize;
    let mut topk: Option<usize> = None;
    let mut mem_budget: Option<u64> = None;
    let mut stats_file: Option<String> = None;
    let mut stats_every: Option<usize> = None;
    let mut stat_interval_ms: Option<u64> = None;
    let mut listen: Option<String> = None;
    let mut refresh_ms = 1000u64;
    let mut max_inflight = 128usize;
    let mut write_highwater = 1usize << 20;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--banks" => banks = Some(flags.value("--banks")?.to_string()),
            "--workers" => workers = Some(flags.parse("--workers")?),
            "--batch" => batch = flags.parse("--batch")?,
            "--topk" => topk = Some(flags.parse("--topk")?),
            "--mem-budget" => mem_budget = Some(parse_mem_budget(flags.value("--mem-budget")?)?),
            "--stats-file" => stats_file = Some(flags.value("--stats-file")?.to_string()),
            "--stats-every" => stats_every = Some(flags.parse("--stats-every")?),
            "--stat-interval-ms" => stat_interval_ms = Some(flags.parse("--stat-interval-ms")?),
            "--listen" => listen = Some(flags.value("--listen")?.to_string()),
            "--refresh-ms" => refresh_ms = flags.parse("--refresh-ms")?,
            "--max-inflight" => max_inflight = flags.parse("--max-inflight")?,
            "--write-highwater" => {
                write_highwater = parse_mem_budget(flags.value("--write-highwater")?)?
                    .try_into()
                    .map_err(|_| usage("--write-highwater overflows usize"))?
            }
            other => return Err(usage(format!("serve: unknown flag `{other}`"))),
        }
    }
    let banks = banks.ok_or_else(|| usage("serve needs --banks DIR"))?;
    if batch == 0 {
        return Err(usage("--batch must be positive"));
    }
    if topk == Some(0) {
        return Err(usage("--topk must be at least 1"));
    }
    if stats_every.is_some() && stats_file.is_none() {
        return Err(usage("--stats-every needs --stats-file PATH"));
    }
    if stats_every == Some(0) {
        return Err(usage("--stats-every must be positive"));
    }
    if listen.is_some() && stats_every.is_some() {
        return Err(usage("--stats-every applies to stdin serving only"));
    }
    if max_inflight == 0 {
        return Err(usage("--max-inflight must be positive"));
    }
    if write_highwater == 0 {
        return Err(usage("--write-highwater must be positive"));
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    if workers == 0 {
        return Err(usage("--workers must be positive"));
    }

    // Metrics exist only when a stats sink was asked for; otherwise the
    // noop registry attaches nothing anywhere and serving runs exactly
    // the uninstrumented code. Listen mode is the exception: the stats
    // frame serves live metrics on demand, so the registry is always on
    // there (the network round-trip dwarfs the counter costs).
    let registry = Arc::new(if stats_file.is_some() || listen.is_some() {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::noop()
    });
    // TCP serving reloads changed shards from the periodic refresh
    // sweep, so the per-hit stat(2) probe defaults off (one refresh
    // interval of staleness); stdin serving keeps probing per hit.
    let default_stat_interval = if listen.is_some() { refresh_ms } else { 0 };
    let store_config = StoreConfig {
        mem_budget,
        min_stat_interval: std::time::Duration::from_millis(
            stat_interval_ms.unwrap_or(default_stat_interval),
        ),
        ..StoreConfig::new(EngineConfig {
            topk,
            ..EngineConfig::default()
        })
    };
    let store = Arc::new(
        BankStore::open_with(&banks, store_config)
            .map_err(runtime)?
            .with_metrics(&registry),
    );
    if let Some(addr) = listen {
        return serve_listen(
            &addr,
            store,
            registry,
            crate::net::NetConfig {
                workers,
                max_inflight,
                write_highwater,
                refresh_interval: std::time::Duration::from_millis(refresh_ms),
                ..crate::net::NetConfig::default()
            },
            stats_file.as_deref(),
        );
    }
    eprintln!(
        "serving shard directory `{banks}` ({} CUTs on disk) with {workers} workers, \
         batches of {batch}{}",
        store.cut_ids().len(),
        match mem_budget {
            Some(b) => format!(", shard memory budget {b} bytes"),
            None => String::new(),
        },
    );
    let mut handle = ServeHandle::with_metrics(store, workers, &registry);
    let write_stats = |path: &str| -> Result<(), CliError> {
        std::fs::write(path, registry.snapshot().to_json())
            .map_err(|e| runtime(format!("stats file {path}: {e}")))
    };

    // Requests stream in on stdin and pipeline through the pool in
    // --batch chunks: while one batch is in flight the next is being
    // read, and completed batches print in input order.
    let started = Instant::now();
    let stdin = std::io::stdin();
    let mut cuts: Vec<String> = Vec::new();
    let mut chunk: Vec<DiagnosisRequest> = Vec::with_capacity(batch);
    // Cells (not plain counters): the print closure and the periodic
    // stats writer in the stream loop both live across the whole loop.
    let served = std::cell::Cell::new(0usize);
    let errors = std::cell::Cell::new(0usize);
    let stdout = std::io::stdout();
    // Write failures surface as results, not panics: a downstream
    // `| head` closing the pipe must stop the stream cleanly.
    let print_batch =
        |cuts: &mut Vec<String>, results: Vec<crate::pool::ServeResult>| -> std::io::Result<()> {
            use std::io::Write;
            let mut out = stdout.lock();
            for (cut, result) in cuts.drain(..).zip(results) {
                served.set(served.get() + 1);
                match result {
                    Ok(diagnosis) => {
                        writeln!(out, "{}", render_diagnosis_line(&cut, &diagnosis))?;
                    }
                    Err(e) => {
                        errors.set(errors.get() + 1);
                        writeln!(out, "{cut}\terror\t{e}")?;
                    }
                }
            }
            Ok(())
        };
    // Maps a print_batch failure: a closed pipe ends serving quietly
    // (`Ok(false)` = stop), anything else is a runtime error.
    let write_failed = |e: std::io::Error| -> Result<bool, CliError> {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            Ok(false)
        } else {
            Err(runtime(format!("stdout: {e}")))
        }
    };
    let mut in_flight: std::collections::VecDeque<Vec<String>> = std::collections::VecDeque::new();
    let mut stats_written_at = 0usize;
    'stream: for (i, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| runtime(format!("stdin: {e}")))?;
        // `!stats` is an in-band control line, not a request: print a
        // one-shot snapshot to stderr (stdout stays pure diagnoses).
        if line.trim() == "!stats" {
            if registry.is_enabled() {
                eprint!("{}", registry.snapshot().render_text());
            } else {
                eprintln!("ftd serve: metrics disabled (run with --stats-file); !stats ignored");
            }
            continue;
        }
        let Some(req) = parse_request_line(&line, i + 1)? else {
            continue;
        };
        cuts.push(req.cut_id.clone());
        chunk.push(req);
        if chunk.len() == batch {
            handle.submit(std::mem::take(&mut chunk));
            in_flight.push_back(std::mem::take(&mut cuts));
            chunk.reserve(batch);
            // Keep at most two batches in flight: enough to overlap
            // reading with serving, bounded so output stays prompt.
            while in_flight.len() > 2 {
                let results = handle.drain_one().expect("submitted batch completes");
                if let Err(e) =
                    print_batch(&mut in_flight.pop_front().expect("in-flight cuts"), results)
                {
                    if !write_failed(e)? {
                        break 'stream;
                    }
                }
            }
            // Periodic snapshots land on batch boundaries: close enough
            // to "every N requests" without a write on the hot path.
            if let (Some(path), Some(every)) = (&stats_file, stats_every) {
                if served.get() - stats_written_at >= every {
                    write_stats(path)?;
                    stats_written_at = served.get();
                }
            }
        }
    }
    if !chunk.is_empty() {
        handle.submit(chunk);
        in_flight.push_back(std::mem::take(&mut cuts));
    }
    while let Some(results) = handle.drain_one() {
        if let Err(e) = print_batch(
            &mut in_flight.pop_front().expect("in-flight cuts per batch"),
            results,
        ) {
            if !write_failed(e)? {
                break;
            }
        }
    }
    if let Some(path) = &stats_file {
        write_stats(path)?;
        eprintln!("wrote stats snapshot to `{path}`");
    }
    eprintln!(
        "served {} requests ({} errors) across {} loaded shards in {:.2?}",
        served.get(),
        errors.get(),
        handle.store().loaded_count(),
        started.elapsed(),
    );
    if errors.get() > 0 {
        return Err(runtime(format!(
            "{} of {} requests failed",
            errors.get(),
            served.get()
        )));
    }
    Ok(())
}

/// `ftd serve --listen`: the TCP tier over the same store and worker
/// pool as stdin serving, draining gracefully on SIGINT/SIGTERM.
fn serve_listen(
    addr: &str,
    store: Arc<BankStore>,
    registry: Arc<MetricsRegistry>,
    config: crate::net::NetConfig,
    stats_file: Option<&str>,
) -> Result<(), CliError> {
    let cuts_on_disk = store.cut_ids().len();
    let server =
        crate::net::NetServer::bind(addr, store, &registry, config.clone()).map_err(runtime)?;
    let bound = server.local_addr().map_err(runtime)?;
    crate::net::install_signal_drain(&server.shutdown_handle());
    eprintln!(
        "listening on {bound}: shard directory with {cuts_on_disk} CUTs on disk, \
         {} workers, {} in-flight requests and {} unsent bytes per connection, \
         shard refresh every {:?} (SIGINT/SIGTERM drains)",
        config.workers, config.max_inflight, config.write_highwater, config.refresh_interval,
    );
    let started = Instant::now();
    let summary = server.run().map_err(runtime)?;
    if let Some(path) = stats_file {
        std::fs::write(path, registry.snapshot().to_json())
            .map_err(|e| runtime(format!("stats file {path}: {e}")))?;
        eprintln!("wrote stats snapshot to `{path}`");
    }
    eprintln!(
        "drained: {} connections accepted, {} requests served ({} error lines, \
         {} protocol errors) in {:.2?}",
        summary.accepted,
        summary.served,
        summary.errors,
        summary.protocol_errors,
        started.elapsed(),
    );
    Ok(())
}

/// The `ftd loadgen` subcommand: pipelined client traffic against a
/// `serve --listen` server, with latency percentiles and optional
/// byte-exact capture.
fn loadgen(args: &[String]) -> Result<(), CliError> {
    let mut connect: Option<String> = None;
    let mut requests_path: Option<String> = None;
    let mut config = crate::net::LoadgenConfig::default();
    let mut out: Option<String> = None;
    let mut json: Option<String> = None;
    let mut stats = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--connect" => connect = Some(flags.value("--connect")?.to_string()),
            "--requests" => requests_path = Some(flags.value("--requests")?.to_string()),
            "--connections" => config.connections = flags.parse("--connections")?,
            "--depth" => config.depth = flags.parse("--depth")?,
            "--total" => config.total = flags.parse("--total")?,
            "--out" => out = Some(flags.value("--out")?.to_string()),
            "--json" => json = Some(flags.value("--json")?.to_string()),
            "--stats" => stats = true,
            other => return Err(usage(format!("loadgen: unknown flag `{other}`"))),
        }
    }
    let connect = connect.ok_or_else(|| usage("loadgen needs --connect ADDR"))?;
    let requests_path = requests_path.ok_or_else(|| usage("loadgen needs --requests FILE"))?;
    if config.connections == 0 {
        return Err(usage("--connections must be positive"));
    }
    if config.depth == 0 {
        return Err(usage("--depth must be positive"));
    }
    if out.is_some() && config.connections != 1 {
        return Err(usage(
            "--out captures responses in request order, which needs --connections 1",
        ));
    }
    config.capture = out.is_some();
    let text = std::fs::read_to_string(&requests_path)
        .map_err(|e| runtime(format!("{requests_path}: {e}")))?;
    let mut requests: Vec<DiagnosisRequest> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(req) = parse_request_line(line, i + 1)? {
            requests.push(req);
        }
    }
    if requests.is_empty() {
        return Err(runtime(format!("{requests_path}: no request lines")));
    }
    let report = crate::net::run_loadgen(&connect, &requests, &config).map_err(runtime)?;
    if let (Some(path), Some(lines)) = (&out, &report.lines) {
        let mut body = lines.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        std::fs::write(path, body).map_err(|e| runtime(format!("{path}: {e}")))?;
    }
    eprintln!(
        "loadgen: {} requests over {} connections at depth {} in {:.3}s — \
         {:.0} req/s, latency p50 {:.0}us p90 {:.0}us p99 {:.0}us \
         ({} error lines, {} bytes out, {} bytes in)",
        report.requests,
        report.connections,
        report.depth,
        report.elapsed_s,
        report.rps,
        report.p50_us,
        report.p90_us,
        report.p99_us,
        report.error_lines,
        report.bytes_out,
        report.bytes_in,
    );
    if let Some(path) = &json {
        let body = format!(
            "{{\n  \"connections\": {},\n  \"depth\": {},\n  \"requests\": {},\n  \
             \"responses\": {},\n  \"error_lines\": {},\n  \"elapsed_s\": {},\n  \
             \"rps\": {},\n  \"p50_us\": {},\n  \"p90_us\": {},\n  \"p99_us\": {},\n  \
             \"bytes_out\": {},\n  \"bytes_in\": {}\n}}\n",
            report.connections,
            report.depth,
            report.requests,
            report.responses,
            report.error_lines,
            report.elapsed_s,
            report.rps,
            report.p50_us,
            report.p90_us,
            report.p99_us,
            report.bytes_out,
            report.bytes_in,
        );
        std::fs::write(path, body).map_err(|e| runtime(format!("{path}: {e}")))?;
    }
    if stats {
        print!("{}", crate::net::fetch_stats(&connect).map_err(runtime)?);
    }
    Ok(())
}

/// The `ftd stats` subcommand: reads a snapshot JSON written by
/// `ftd serve --stats-file` and pretty-prints it — greppable
/// `name value` text by default, the Prometheus exposition format with
/// `--prometheus`.
fn stats(args: &[String]) -> Result<(), CliError> {
    let (prometheus, path) = match args {
        [path] => (false, path),
        [a, path] | [path, a] if a == "--prometheus" => (true, path),
        _ => {
            return Err(usage(
                "stats takes one FILE argument (plus optional --prometheus)",
            ))
        }
    };
    let text = std::fs::read_to_string(path).map_err(|e| runtime(format!("{path}: {e}")))?;
    let snapshot = Snapshot::from_json(&text)
        .map_err(|e| runtime(format!("{path}: not a stats file: {e}")))?;
    if prometheus {
        print!("{}", snapshot.to_prometheus());
    } else {
        print!("{}", snapshot.render_text());
    }
    Ok(())
}

fn gen_requests(args: &[String]) -> Result<(), CliError> {
    let mut bank_path: Option<String> = None;
    let mut cut_id: Option<String> = None;
    let mut count = 16usize;
    let mut seed = 7u64;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--bank" => bank_path = Some(flags.value("--bank")?.to_string()),
            "--cut-id" => cut_id = Some(flags.value("--cut-id")?.to_string()),
            "--count" => count = flags.parse("--count")?,
            "--seed" => seed = flags.parse("--seed")?,
            other => return Err(usage(format!("gen-requests: unknown flag `{other}`"))),
        }
    }
    let bank_path = bank_path.ok_or_else(|| usage("gen-requests needs --bank PATH"))?;
    let cut_id = cut_id.ok_or_else(|| usage("gen-requests needs --cut-id ID"))?;
    if !crate::store::valid_cut_id(&cut_id) {
        return Err(usage(format!("gen-requests: invalid CUT id `{cut_id}`")));
    }
    if count == 0 {
        return Err(usage("--count must be positive"));
    }
    let bank = TrajectoryBank::load(&bank_path).map_err(runtime)?;
    let mut out = String::new();
    for sig in synthetic_queries(bank.trajectory_set(), count, seed) {
        out.push_str(&cut_id);
        for x in sig.coords() {
            out.push(' ');
            out.push_str(&x.to_string());
        }
        out.push('\n');
    }
    print!("{out}");
    Ok(())
}

fn bank_info(args: &[String]) -> Result<(), CliError> {
    let (mapped, path) = match args {
        [path] => (false, path),
        [a, path] | [path, a] if a == "--mapped" => (true, path),
        _ => {
            return Err(usage(
                "bank-info takes one PATH argument (plus optional --mapped)",
            ))
        }
    };
    if mapped {
        return bank_info_mapped(path);
    }
    let bytes = std::fs::read(path).map_err(|e| runtime(format!("{path}: {e}")))?;
    let version = peek_version(&bytes).map_err(runtime)?;
    println!("bank `{path}`: {} bytes, format v{version}", bytes.len());

    let mut bad_sections = 0usize;
    match version {
        BANK_VERSION_V1 => {
            println!("layout: monolithic payload, whole-payload checksum (legacy)");
        }
        BANK_VERSION_V2 | BANK_VERSION => {
            if version == BANK_VERSION {
                println!(
                    "layout: sectioned, 8-byte-aligned trajectory regions (zero-copy viewable)"
                );
            } else {
                println!("layout: sectioned, length-prefixed trajectory payload");
            }
            let container = Container::parse(&bytes).map_err(runtime)?;
            println!("section table ({} sections):", container.sections().len());
            println!("  type  name          offset  payload_bytes  checksum");
            let mut payload_total = 0usize;
            for s in container.sections() {
                let ok = s.checksum_ok();
                bad_sections += usize::from(!ok);
                payload_total += s.payload.len();
                println!(
                    "  {:>4}  {:<12} {:>7} {:>13}  {}",
                    s.kind,
                    crate::codec::section_name(s.kind),
                    s.offset,
                    s.payload.len(),
                    if ok { "ok" } else { "MISMATCH" },
                );
            }
            println!(
                "payload: {payload_total} bytes across {} sections, {} bytes of framing",
                container.sections().len(),
                bytes.len() - payload_total,
            );
        }
        other => return Err(runtime(format!("unsupported bank format version {other}"))),
    }

    match TrajectoryBank::from_bytes(&bytes) {
        Ok(bank) => {
            let dict = bank.dictionary();
            println!(
                "dictionary: {} entries x {} grid points, input {}, probe {}",
                dict.entries().len(),
                dict.grid().len(),
                dict.input(),
                probe_str(dict.probe()),
            );
            let set = bank.trajectory_set();
            println!(
                "trajectories: {} trajectories / {} segments, dim {}, tv {}",
                set.len(),
                set.total_segments(),
                set.dim(),
                set.test_vector(),
            );
            match bank.multifault_dictionary() {
                Some(mfd) => println!(
                    "multifault: {} entries x {} grid points",
                    mfd.len(),
                    mfd.grid().len(),
                ),
                None => println!("multifault: absent"),
            }
            Ok(())
        }
        Err(e) => Err(runtime(format!(
            "decode failed ({bad_sections} bad sections): {e}"
        ))),
    }
}

/// The `--mapped` arm of `ftd bank-info`: opens the bank through the
/// zero-copy mmap path the server uses, so the report reflects exactly
/// what `ftd serve` would map — including whether this platform maps at
/// all (non-unix falls back to a heap read) and which sections decode
/// lazily.
fn bank_info_mapped(path: &str) -> Result<(), CliError> {
    let (bank, set) = MappedBank::open(path).map_err(runtime)?;
    let generation = bank.generation();
    println!(
        "bank `{path}`: {} payload bytes of {} on disk, {}",
        bank.payload_bytes(),
        generation.len(),
        if bank.is_mapped() {
            "memory-mapped (zero-copy)"
        } else {
            "heap fallback (platform without mmap)"
        },
    );
    // Residency as a fresh `ftd serve` would hold this shard: sampled
    // before the dictionary reports below force their lazy decodes.
    let residency = bank.section_residency();
    if !residency.is_empty() {
        println!(
            "sections ({}), {} of {} payload bytes resident at open:",
            residency.len(),
            bank.resident_bytes(),
            bank.payload_bytes(),
        );
        for &(kind, payload_bytes, resident) in &residency {
            println!(
                "  {:>4}  {:<12} {payload_bytes:>13} payload bytes  {}",
                kind,
                crate::codec::section_name(kind),
                if resident {
                    "resident"
                } else {
                    "mapped only (decodes lazily, evicts first)"
                },
            );
        }
    }
    println!(
        "trajectories ({}): {} trajectories / {} segments, dim {}, tv {}",
        if set.is_packed() {
            "viewed in place, zero-copy"
        } else {
            "decoded eagerly"
        },
        set.len(),
        set.total_segments(),
        set.dim(),
        set.test_vector(),
    );
    match bank.verify_trajectory_payload() {
        Ok(()) => println!("trajectory payload checksum: ok"),
        Err(e) => println!("trajectory payload checksum: FAILED: {e}"),
    }
    match bank.dictionary() {
        Ok(dict) => println!(
            "dictionary (decoded lazily): {} entries x {} grid points, input {}, probe {}",
            dict.entries().len(),
            dict.grid().len(),
            dict.input(),
            probe_str(dict.probe()),
        ),
        Err(e) => println!("dictionary (decoded lazily): FAILED: {e}"),
    }
    match bank.multifault_dictionary() {
        Ok(Some(mfd)) => println!(
            "multifault (decoded lazily): {} entries x {} grid points",
            mfd.len(),
            mfd.grid().len(),
        ),
        Ok(None) => println!("multifault: absent"),
        Err(e) => println!("multifault (decoded lazily): FAILED: {e}"),
    }
    Ok(())
}

fn probe_str(probe: &Probe) -> String {
    match probe {
        Probe::Node(n) => n.clone(),
        Probe::Differential(p, n) => format!("{p}-{n}"),
    }
}

/// One measured bank size of `ftd bench-scan-vs-index`: query-level
/// timings isolate the backend (`best_per_trajectory` / `query_topk`),
/// diagnose-level timings include candidate materialisation and
/// ranking, so the JSON records both.
struct BenchRow {
    segments: usize,
    trajectories: usize,
    dim: usize,
    queries: usize,
    topk: usize,
    tree_nodes: usize,
    flat_nodes: usize,
    build_tree_us: f64,
    build_flat_us: f64,
    linear_query_us: f64,
    tree_query_us: f64,
    flat_query_us: f64,
    topk_query_us: f64,
    linear_diagnose_us: f64,
    flat_diagnose_us: f64,
    topk_diagnose_us: f64,
    examined_frac: f64,
    early_exit_rate: f64,
}

/// Parses `--segments N[,N...]` into a list of target segment counts.
fn parse_segment_sizes(raw: &str) -> Result<Vec<usize>, CliError> {
    let sizes: Vec<usize> = raw
        .split(',')
        .map(|t| t.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| usage(format!("--segments: expected N[,N...], got `{raw}`")))?;
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(usage("--segments sizes must be positive"));
    }
    Ok(sizes)
}

/// Timed rounds per path in `bench_one`. The paths are timed in
/// interleaved rounds — every path runs once per round, and the
/// fastest round per path is reported. The min is the standard
/// low-noise estimator on a shared machine, and the interleaving keeps
/// a slow window from landing on one path's whole sample while another
/// path gets a quiet machine, which would bias every reported ratio
/// (each path computes identical results every round, so only the
/// timing varies).
const BENCH_REPS: usize = 5;

/// Runs `f` once, returning its result and the per-query time in
/// microseconds.
fn time_once<T>(queries: usize, f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e6 / queries.max(1) as f64)
}

/// Times every query path over one trajectory set, self-checking each
/// against the linear-scan oracle before any number is reported.
fn bench_one(
    set: &ft_core::TrajectorySet,
    queries: usize,
    seed: u64,
    leaf: usize,
    workers: Option<usize>,
    topk: usize,
) -> Result<BenchRow, CliError> {
    let qs = synthetic_queries(set, queries, seed.wrapping_add(1));

    let t = Instant::now();
    let tree = if leaf == 0 {
        TreeIndex::build(set)
    } else {
        TreeIndex::with_leaf_size(set, leaf)
    };
    let build_tree_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let flat = if leaf == 0 {
        SegmentIndex::build(set)
    } else {
        SegmentIndex::with_leaf_size(set, leaf)
    };
    let build_flat_us = t.elapsed().as_secs_f64() * 1e6;

    let diagnoser = Diagnoser::new(set.clone(), DiagnoserConfig::default());
    let ratio = diagnoser.config().ambiguity_ratio;

    // Time all paths in interleaved rounds (see `BENCH_REPS`), keeping
    // the fastest round per path; results are identical every round, so
    // the last round's are validated below.
    let mut linear_query_us = f64::INFINITY;
    let mut tree_query_us = f64::INFINITY;
    let mut flat_query_us = f64::INFINITY;
    let mut topk_query_us = f64::INFINITY;
    let mut linear_diagnose_us = f64::INFINITY;
    let mut flat_diagnose_us = f64::INFINITY;
    let mut topk_diagnose_us = f64::INFINITY;
    let (mut lin_q, mut tree_q, mut flat_q, mut topk_q) = (vec![], vec![], vec![], vec![]);
    let (mut lin_d, mut flat_d, mut topk_d): (Vec<Diagnosis>, Vec<_>, Vec<_>) =
        (vec![], vec![], vec![]);
    let mut examined = 0usize;
    let mut early = 0usize;
    for _ in 0..BENCH_REPS {
        // Query level: the raw backend, no candidate materialisation.
        let (r, t) = time_once(qs.len(), || {
            qs.iter()
                .map(|q| LinearScan.best_per_trajectory(set, q))
                .collect::<Vec<Vec<(f64, f64)>>>()
        });
        lin_q = r;
        linear_query_us = linear_query_us.min(t);
        let (r, t) = time_once(qs.len(), || {
            qs.iter().map(|q| tree.query(q)).collect::<Vec<_>>()
        });
        tree_q = r;
        tree_query_us = tree_query_us.min(t);
        examined = 0;
        let (r, t) = time_once(qs.len(), || {
            qs.iter()
                .map(|q| {
                    let (best, stats) = flat.query_stats(q);
                    examined += stats.segments_examined;
                    best
                })
                .collect::<Vec<_>>()
        });
        flat_q = r;
        flat_query_us = flat_query_us.min(t);
        early = 0;
        let (r, t) = time_once(qs.len(), || {
            qs.iter()
                .map(|q| {
                    let (ranking, stats) = flat.query_topk(q, topk, ratio);
                    early += stats.early_exit as usize;
                    ranking
                })
                .collect::<Vec<_>>()
        });
        topk_q = r;
        topk_query_us = topk_query_us.min(t);

        // Diagnose level: candidates, sort, ambiguity set — what
        // callers pay.
        let (r, t) = time_once(qs.len(), || {
            qs.iter()
                .map(|q| diagnoser.diagnose(q))
                .collect::<Vec<Diagnosis>>()
        });
        lin_d = r;
        linear_diagnose_us = linear_diagnose_us.min(t);
        let (r, t) = time_once(qs.len(), || {
            qs.iter()
                .map(|q| diagnoser.diagnose_with(&flat, q))
                .collect::<Vec<_>>()
        });
        flat_d = r;
        flat_diagnose_us = flat_diagnose_us.min(t);
        let (r, t) = time_once(qs.len(), || {
            qs.iter()
                .map(|q| diagnoser.diagnose_topk(&flat, q, topk))
                .collect::<Vec<_>>()
        });
        topk_d = r;
        topk_diagnose_us = topk_diagnose_us.min(t);
    }

    if tree_q != lin_q || flat_q != lin_q {
        return Err(runtime("indexed path diverged from the linear scan"));
    }
    let examined_frac = examined as f64 / (flat.len() * qs.len()) as f64;
    for (q, got) in qs.iter().zip(&topk_q) {
        if *got != LinearScan.topk_per_trajectory(set, q, topk, ratio) {
            return Err(runtime("top-k path diverged from the linear-scan oracle"));
        }
    }
    let early_exit_rate = early as f64 / qs.len() as f64;
    if flat_d != lin_d {
        return Err(runtime("indexed diagnosis diverged from the linear scan"));
    }
    for (full, cut) in lin_d.iter().zip(&topk_d) {
        if cut.best() != full.best() || cut.ambiguity_set() != full.ambiguity_set() {
            return Err(runtime(
                "top-k diagnosis changed the verdict or the ambiguity set",
            ));
        }
    }

    // Batched paths must reproduce their single-query twins exactly.
    if diagnose_batch_with(&diagnoser, &flat, &qs, workers) != flat_d
        || diagnose_batch_topk_with(&diagnoser, &flat, &qs, topk, workers) != topk_d
    {
        return Err(runtime(
            "batched results diverged from single-query results",
        ));
    }

    Ok(BenchRow {
        segments: set.total_segments(),
        trajectories: set.len(),
        dim: set.dim(),
        queries: qs.len(),
        topk,
        tree_nodes: tree.node_count(),
        flat_nodes: flat.node_count(),
        build_tree_us,
        build_flat_us,
        linear_query_us,
        tree_query_us,
        flat_query_us,
        topk_query_us,
        linear_diagnose_us,
        flat_diagnose_us,
        topk_diagnose_us,
        examined_frac,
        early_exit_rate,
    })
}

fn print_bench_row(r: &BenchRow) {
    println!(
        "bank: {} trajectories x {} segments = {} segments, dim {}, \
         {} flat nodes ({} tree nodes)",
        r.trajectories,
        r.segments / r.trajectories,
        r.segments,
        r.dim,
        r.flat_nodes,
        r.tree_nodes,
    );
    println!(
        "  build: tree {:.1} ms, flat {:.1} ms",
        r.build_tree_us / 1e3,
        r.build_flat_us / 1e3,
    );
    println!("  {} queries, results identical on every path", r.queries);
    let x = |a: f64, b: f64| a / b.max(1e-12);
    println!(
        "  query    linear scan : {:>9.1} us/query",
        r.linear_query_us
    );
    println!(
        "  query    legacy tree : {:>9.1} us/query  ({:.1}x vs linear)",
        r.tree_query_us,
        x(r.linear_query_us, r.tree_query_us),
    );
    println!(
        "  query    flat index  : {:>9.1} us/query  ({:.1}x vs linear, {:.1}x vs tree, \
         examined {:.1}% of segments)",
        r.flat_query_us,
        x(r.linear_query_us, r.flat_query_us),
        x(r.tree_query_us, r.flat_query_us),
        r.examined_frac * 100.0,
    );
    println!(
        "  query    flat top-{:<2} : {:>9.1} us/query  ({:.1}x vs linear, early exit on \
         {:.0}% of queries)",
        r.topk,
        r.topk_query_us,
        x(r.linear_query_us, r.topk_query_us),
        r.early_exit_rate * 100.0,
    );
    println!(
        "  diagnose linear      : {:>9.1} us/query",
        r.linear_diagnose_us
    );
    println!(
        "  diagnose flat        : {:>9.1} us/query  ({:.1}x vs linear)",
        r.flat_diagnose_us,
        x(r.linear_diagnose_us, r.flat_diagnose_us),
    );
    println!(
        "  diagnose flat top-{:<2} : {:>9.1} us/query  ({:.1}x vs linear)",
        r.topk,
        r.topk_diagnose_us,
        x(r.linear_diagnose_us, r.topk_diagnose_us),
    );
}

/// Serialises the measured rows as a self-describing JSON document
/// (hand-rolled; the vendored `serde` is a marker-only shim).
fn write_bench_json(path: &str, rows: &[BenchRow]) -> Result<(), CliError> {
    let mut s = String::from("{\n  \"bench\": \"scan-vs-index\",\n  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let x = |a: f64, b: f64| a / b.max(1e-12);
        s.push_str(&format!(
            "    {{\"segments\": {}, \"trajectories\": {}, \"dim\": {}, \"queries\": {}, \
             \"topk\": {}, \"tree_nodes\": {}, \"flat_nodes\": {}, \
             \"build_tree_us\": {:.1}, \"build_flat_us\": {:.1}, \
             \"linear_query_us\": {:.3}, \"tree_query_us\": {:.3}, \
             \"flat_query_us\": {:.3}, \"topk_query_us\": {:.3}, \
             \"flat_speedup_vs_linear\": {:.2}, \"flat_speedup_vs_tree\": {:.2}, \
             \"topk_speedup_vs_linear\": {:.2}, \
             \"linear_diagnose_us\": {:.3}, \"flat_diagnose_us\": {:.3}, \
             \"topk_diagnose_us\": {:.3}, \
             \"segments_examined_frac\": {:.4}, \"topk_early_exit_rate\": {:.4}}}{}\n",
            r.segments,
            r.trajectories,
            r.dim,
            r.queries,
            r.topk,
            r.tree_nodes,
            r.flat_nodes,
            r.build_tree_us,
            r.build_flat_us,
            r.linear_query_us,
            r.tree_query_us,
            r.flat_query_us,
            r.topk_query_us,
            x(r.linear_query_us, r.flat_query_us),
            x(r.tree_query_us, r.flat_query_us),
            x(r.linear_query_us, r.topk_query_us),
            r.linear_diagnose_us,
            r.flat_diagnose_us,
            r.topk_diagnose_us,
            r.examined_frac,
            r.early_exit_rate,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).map_err(|e| runtime(format!("{path}: {e}")))
}

fn bench_scan_vs_index(args: &[String]) -> Result<(), CliError> {
    // Default shape: the paper-like CUT (a handful of components) with a
    // production-dense deviation sweep — 8 × 128 = 1024 segments.
    let mut components = 8usize;
    let mut points = 64usize;
    let mut dim = 2usize;
    let mut queries = 200usize;
    let mut seed = 7u64;
    let mut workers: Option<usize> = None;
    let mut leaf = 0usize;
    let mut circuit_order = 0usize;
    let mut topk = 5usize;
    let mut segments: Option<Vec<usize>> = None;
    let mut json: Option<String> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--components" => components = flags.parse("--components")?,
            "--points" => points = flags.parse("--points")?,
            "--dim" => dim = flags.parse("--dim")?,
            "--queries" => queries = flags.parse("--queries")?,
            "--seed" => seed = flags.parse("--seed")?,
            "--workers" => workers = Some(flags.parse("--workers")?),
            "--leaf" => leaf = flags.parse("--leaf")?,
            "--circuit-order" => circuit_order = flags.parse("--circuit-order")?,
            "--topk" => topk = flags.parse("--topk")?,
            "--segments" => segments = Some(parse_segment_sizes(flags.value("--segments")?)?),
            "--json" => json = Some(flags.value("--json")?.to_string()),
            other => {
                return Err(usage(format!(
                    "bench-scan-vs-index: unknown flag `{other}`"
                )));
            }
        }
    }
    if components == 0 || points == 0 || dim == 0 || queries == 0 {
        return Err(usage(
            "--components/--points/--dim/--queries must be positive",
        ));
    }
    if topk == 0 {
        return Err(usage("--topk must be at least 1"));
    }
    if segments.is_some() && circuit_order > 0 {
        return Err(usage(
            "--segments and --circuit-order are mutually exclusive",
        ));
    }

    if let Some(sizes) = segments {
        // Size sweep: trajectories are derived from the target segment
        // count at 2·points segments per trajectory (minimum 2), so the
        // actual count printed/recorded may round off the target.
        let mut rows = Vec::with_capacity(sizes.len());
        for &target in &sizes {
            let comp = ((target as f64 / (2.0 * points as f64)).round() as usize).max(2);
            let set = synthetic_trajectory_set(comp, points, dim, seed);
            println!("--- target {target} segments ---");
            let row = bench_one(&set, queries, seed, leaf, workers, topk)?;
            print_bench_row(&row);
            rows.push(row);
        }
        if let Some(path) = json {
            write_bench_json(&path, &rows)?;
            println!("wrote {path}");
        }
        return Ok(());
    }

    let set = if circuit_order > 0 {
        if !(1..=9).contains(&circuit_order) {
            return Err(usage("--circuit-order must be in 1..=9"));
        }
        if points > 320 {
            return Err(usage(
                "--circuit-order mode supports --points up to 320 (deviation step >= 0.125%)",
            ));
        }
        // Simulated bank: one trajectory per ladder passive, 2·points
        // segments each (deviation step 40/points %), built through the
        // engine-backed offline pipeline.
        let step = 40.0 / points as f64;
        let bank = synthetic_circuit_bank(circuit_order, step, 41, &TestVector::pair(0.6, 1.6))
            .map_err(runtime)?;
        let set = bank.trajectory_set().clone();
        println!(
            "simulated order-{circuit_order} RLC-ladder bank: {} faults on a {}-point grid",
            bank.dictionary().entries().len(),
            bank.dictionary().grid().len(),
        );
        set
    } else {
        synthetic_trajectory_set(components, points, dim, seed)
    };
    let row = bench_one(&set, queries, seed, leaf, workers, topk)?;
    print_bench_row(&row);
    if let Some(path) = json {
        write_bench_json(&path, &[row])?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_parsing() {
        let f = parse_fault("R2:+25").unwrap();
        assert_eq!(f.component(), "R2");
        assert_eq!(f.percent(), 25.0);
        let f = parse_fault("C1:-12.5%").unwrap();
        assert_eq!(f.component(), "C1");
        assert_eq!(f.percent(), -12.5);
        assert!(parse_fault("R2").is_err());
        assert!(parse_fault(":25").is_err());
        assert!(parse_fault("R2:abc").is_err());
        assert!(parse_fault("R2:-100").is_err());
    }

    #[test]
    fn help_and_unknown_commands() {
        assert_eq!(main_from_args(vec!["--help".into()]), 0);
        assert_eq!(main_from_args(vec!["help".into()]), 0);
        assert_eq!(main_from_args(vec![]), 2);
        assert_eq!(main_from_args(vec!["frobnicate".into()]), 2);
    }

    #[test]
    fn usage_errors_are_exit_2() {
        assert_eq!(
            main_from_args(vec!["diagnose".into()]), // missing --bank
            2
        );
        assert_eq!(
            main_from_args(vec!["build-bank".into(), "--bogus".into()]),
            2
        );
        assert_eq!(
            main_from_args(vec![
                "build-bank".into(),
                "--f1".into(),
                "2.0".into(),
                "--f2".into(),
                "1.0".into(),
            ]),
            2
        );
    }

    #[test]
    fn missing_bank_file_is_exit_1() {
        assert_eq!(
            main_from_args(vec![
                "diagnose".into(),
                "--bank".into(),
                "/nonexistent/bank.ftb".into(),
            ]),
            1
        );
    }

    #[test]
    fn bench_subcommand_runs_small() {
        assert_eq!(
            main_from_args(vec![
                "bench-scan-vs-index".into(),
                "--components".into(),
                "8".into(),
                "--points".into(),
                "3".into(),
                "--queries".into(),
                "5".into(),
            ]),
            0
        );
    }

    #[test]
    fn bench_subcommand_runs_on_simulated_circuit_bank() {
        assert_eq!(
            main_from_args(vec![
                "bench-scan-vs-index".into(),
                "--circuit-order".into(),
                "2".into(),
                "--points".into(),
                "4".into(),
                "--queries".into(),
                "5".into(),
            ]),
            0
        );
        assert_eq!(
            main_from_args(vec![
                "bench-scan-vs-index".into(),
                "--circuit-order".into(),
                "12".into(),
            ]),
            2
        );
        // --points beyond the circuit-mode cap is a usage error, not a
        // silent clamp.
        assert_eq!(
            main_from_args(vec![
                "bench-scan-vs-index".into(),
                "--circuit-order".into(),
                "2".into(),
                "--points".into(),
                "1000".into(),
            ]),
            2
        );
    }

    #[test]
    fn serve_and_gen_requests_usage_errors() {
        // serve without --banks, with a bogus directory, bad batch.
        assert_eq!(main_from_args(vec!["serve".into()]), 2);
        assert_eq!(
            main_from_args(vec![
                "serve".into(),
                "--banks".into(),
                "/nonexistent/shards".into(),
            ]),
            1
        );
        assert_eq!(
            main_from_args(vec![
                "serve".into(),
                "--banks".into(),
                "/tmp".into(),
                "--batch".into(),
                "0".into(),
            ]),
            2
        );
        assert_eq!(main_from_args(vec!["gen-requests".into()]), 2);
        assert_eq!(
            main_from_args(vec![
                "gen-requests".into(),
                "--bank".into(),
                "/tmp/x.ftb".into(),
                "--cut-id".into(),
                "../evil".into(),
            ]),
            2
        );
        assert_eq!(main_from_args(vec!["bank-info".into()]), 2);
        assert_eq!(
            main_from_args(vec!["bank-info".into(), "/nonexistent/bank.ftb".into()]),
            1
        );
    }

    #[test]
    fn reencode_round_trips_between_formats() {
        use crate::synthetic::synthetic_circuit_bank;
        use ft_core::TestVector;

        let dir = std::env::temp_dir().join("ftd_reencode_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bank = synthetic_circuit_bank(2, 0.5, 7, &TestVector::pair(0.5, 2.0)).unwrap();
        let v3 = dir.join("v3.ftb");
        let v2 = dir.join("v2.ftb");
        let back = dir.join("back.ftb");
        bank.save(&v3).unwrap();

        // v3 -> v2 -> v3 through the subcommand, byte-identical.
        let arg = |p: &std::path::Path| p.display().to_string();
        assert_eq!(
            main_from_args(vec![
                "reencode".into(),
                arg(&v3),
                arg(&v2),
                "--format".into(),
                "2".into(),
            ]),
            0
        );
        assert_eq!(
            main_from_args(vec!["reencode".into(), arg(&v2), arg(&back)]),
            0
        );
        assert_eq!(
            std::fs::read(&v3).unwrap(),
            std::fs::read(&back).unwrap(),
            "v3 -> v2 -> v3 must be the identity"
        );
        assert_ne!(std::fs::read(&v3).unwrap(), std::fs::read(&v2).unwrap());
        // Both render through bank-info, plain and mapped.
        for p in [&v3, &v2] {
            assert_eq!(main_from_args(vec!["bank-info".into(), arg(p)]), 0);
            assert_eq!(
                main_from_args(vec!["bank-info".into(), "--mapped".into(), arg(p)]),
                0
            );
        }
        // Usage errors: bad --format, missing paths.
        assert_eq!(
            main_from_args(vec![
                "reencode".into(),
                arg(&v3),
                arg(&v2),
                "--format".into(),
                "1".into(),
            ]),
            2
        );
        assert_eq!(main_from_args(vec!["reencode".into(), arg(&v3)]), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_line_parsing() {
        assert!(parse_request_line("", 1).unwrap().is_none());
        assert!(parse_request_line("  # comment", 2).unwrap().is_none());
        let req = parse_request_line("cut-a 1.5 -2.25", 3).unwrap().unwrap();
        assert_eq!(req.cut_id, "cut-a");
        assert_eq!(req.signature.coords(), &[1.5, -2.25]);
        assert!(parse_request_line("cut-a", 4).is_err());
        assert!(parse_request_line("cut-a 1.0 oops", 5).is_err());
        assert!(parse_request_line("cut-a NaN", 6).is_err());
    }

    #[test]
    fn gen_requests_feeds_diagnose_requests() {
        let dir = std::env::temp_dir().join("ftd_cli_requests_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bank = dir.join("cut-a.ftb");
        let reqs = dir.join("reqs.txt");
        let bank_str = bank.to_string_lossy().to_string();
        assert_eq!(
            main_from_args(vec![
                "build-bank".into(),
                "--out".into(),
                bank_str.clone(),
                "--grid-points".into(),
                "21".into(),
            ]),
            0
        );
        // gen-requests prints to stdout; run its internals directly so
        // the test can capture the lines.
        let loaded = TrajectoryBank::load(&bank).unwrap();
        let mut text = String::new();
        for sig in synthetic_queries(loaded.trajectory_set(), 5, 3) {
            text.push_str("cut-a");
            for x in sig.coords() {
                text.push(' ');
                text.push_str(&x.to_string());
            }
            text.push('\n');
        }
        // A line for another CUT must be filtered out by --cut-id.
        text.push_str("cut-b 0.5 0.5\n");
        std::fs::write(&reqs, &text).unwrap();

        assert_eq!(
            main_from_args(vec![
                "diagnose".into(),
                "--bank".into(),
                bank_str.clone(),
                "--requests".into(),
                reqs.to_string_lossy().to_string(),
                "--cut-id".into(),
                "cut-a".into(),
            ]),
            0
        );
        // --requests excludes every simulation flag, including the ones
        // that would otherwise be silently ignored.
        for (flag, value) in [("--random", "3"), ("--q", "1.5"), ("--noise-db", "0.5")] {
            assert_eq!(
                main_from_args(vec![
                    "diagnose".into(),
                    "--bank".into(),
                    bank_str.clone(),
                    "--requests".into(),
                    reqs.to_string_lossy().to_string(),
                    flag.into(),
                    value.into(),
                ]),
                2,
                "{flag} must be rejected with --requests"
            );
        }
        // bank-info on the fresh v2 bank exits 0.
        assert_eq!(main_from_args(vec!["bank-info".into(), bank_str]), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diagnose_requests_matches_store_routing() {
        // The acceptance wiring the CI smoke scripts in shell, pinned
        // here in-process: serve-format lines from the store/pool path
        // equal the single-bank diagnose_batch path.
        let dir = std::env::temp_dir().join("ftd_cli_serve_equiv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let tv = ft_core::TestVector::pair(0.5, 2.0);
        let bank = crate::synthetic::synthetic_circuit_bank(2, 10.0, 9, &tv).unwrap();
        bank.save(dir.join("ladder.ftb")).unwrap();

        let store = Arc::new(
            BankStore::open(&dir, EngineConfig::default()).expect("shard directory opens"),
        );
        let requests: Vec<DiagnosisRequest> = synthetic_queries(bank.trajectory_set(), 9, 41)
            .into_iter()
            .map(|sig| DiagnosisRequest::new("ladder", sig))
            .collect();
        let mut handle = ServeHandle::new(store, 4);
        handle.submit(requests.clone());
        let pooled = handle.drain().remove(0);

        let engine = DiagnosisEngine::load(dir.join("ladder.ftb"), EngineConfig::default())
            .expect("bank loads");
        let signatures: Vec<Signature> = requests.iter().map(|r| r.signature.clone()).collect();
        let reference = engine.diagnose_batch(&signatures);

        for ((req, pooled), reference) in requests.iter().zip(&pooled).zip(&reference) {
            let pooled = pooled.as_ref().expect("request served");
            assert_eq!(pooled, reference, "pooled path diverged");
            assert_eq!(
                render_diagnosis_line(&req.cut_id, pooled),
                render_diagnosis_line(&req.cut_id, reference),
                "rendered lines diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_subcommand_round_trips_a_snapshot() {
        let dir = std::env::temp_dir().join("ftd_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let registry = MetricsRegistry::new();
        registry.counter("serve_requests_total").add(7);
        registry.histogram("serve_request_latency_us").record(300);
        std::fs::write(&path, registry.snapshot().to_json()).unwrap();
        let path_str = path.to_string_lossy().to_string();

        assert_eq!(main_from_args(vec!["stats".into(), path_str.clone()]), 0);
        assert_eq!(
            main_from_args(vec![
                "stats".into(),
                "--prometheus".into(),
                path_str.clone()
            ]),
            0
        );
        // Malformed input is a runtime error, a missing arg a usage one.
        std::fs::write(&path, "not a stats file").unwrap();
        assert_eq!(main_from_args(vec!["stats".into(), path_str]), 1);
        assert_eq!(main_from_args(vec!["stats".into()]), 2);
        // --stats-every without --stats-file is rejected up front.
        assert_eq!(
            main_from_args(vec![
                "serve".into(),
                "--banks".into(),
                "/tmp".into(),
                "--stats-every".into(),
                "10".into(),
            ]),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_and_diagnose_round_trip() {
        let path = std::env::temp_dir().join("ftd_cli_test_bank.ftb");
        let path_str = path.to_string_lossy().to_string();
        assert_eq!(
            main_from_args(vec![
                "build-bank".into(),
                "--out".into(),
                path_str.clone(),
                "--grid-points".into(),
                "21".into(),
            ]),
            0
        );
        assert_eq!(
            main_from_args(vec![
                "diagnose".into(),
                "--bank".into(),
                path_str.clone(),
                "--fault".into(),
                "R2:+25".into(),
                "--random".into(),
                "3".into(),
            ]),
            0
        );
        // Diagnosing against a different CUT (Q mismatch) must fail
        // loudly instead of silently skewing results.
        assert_eq!(
            main_from_args(vec![
                "diagnose".into(),
                "--bank".into(),
                path_str.clone(),
                "--q".into(),
                "2.0".into(),
            ]),
            1
        );
        std::fs::remove_file(&path).ok();
    }
}
