//! Self-contained binary codec for trajectory banks.
//!
//! The vendored `serde` is a marker-only shim (see `vendor/README.md`),
//! so persistence is hand-rolled: a versioned container layout with
//! length-prefixed fields and checksums, decoded by a
//! corruption-detecting reader that never trusts a length it has not
//! bounds-checked.
//!
//! ## Container layout, formats v2 and v3 (sectioned)
//!
//! ```text
//! offset    size  field
//! 0         8     magic  b"FTBANK\r\n"
//! 8         2     format version (u16 LE) = 2 or 3
//! 10        4     section count n (u32 LE)
//! 14        8     FNV-1a 64 checksum of the count (bytes 10..14)
//!                 concatenated with the table (bytes 22..22+18n)
//! 22        18*n  section table: per section
//!                   +0  type tag (u16 LE)
//!                   +2  payload length in bytes (u64 LE)
//!                   +10 FNV-1a 64 checksum of the payload (u64 LE)
//! 22+18n    ...   section payloads, concatenated in table order
//! ```
//!
//! Each section is independently checksummed, so corruption is detected
//! *and attributed* to the section it hit, and a reader that does not
//! understand a section's type tag skips it (forward compatibility: new
//! optional sections never break old readers of the same major version).
//! The container's total length must equal the header + table + declared
//! payloads exactly.
//!
//! **v3 differs from v2 only inside the trajectory section payload**: it
//! switches from length-prefixed per-point fields to an 8-byte-aligned,
//! fixed-stride little-endian layout that a reader can view in place
//! without decoding (see `bank.rs` for the payload layout). The
//! container framing above is byte-for-byte the same; [`SectionTable`]
//! and [`Container`] parse both and report the version they saw so
//! payload readers can dispatch.
//!
//! ## Container layout, format v1 (legacy, monolithic)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FTBANK\r\n"
//! 8       2     format version (u16 LE) = 1
//! 10      8     payload length in bytes (u64 LE)
//! 18      8     FNV-1a 64 checksum of the payload (u64 LE)
//! 26      n     payload (length-prefixed fields, little-endian)
//! ```
//!
//! v1 banks remain loadable: [`peek_version`] dispatches readers between
//! [`Decoder::open`] (v1) and [`Container::parse`] (v2).
//!
//! Within any payload every variable-length field carries a `u32 LE`
//! count prefix; scalars are fixed-width little-endian. All reads are
//! bounds-checked and a decode must consume the payload exactly.

use std::fmt;
use std::path::{Path, PathBuf};

/// Container magic. The `\r\n` tail catches text-mode transfer mangling,
/// PNG-style.
pub const BANK_MAGIC: [u8; 8] = *b"FTBANK\r\n";

/// Current container format version (sectioned, zero-copy-viewable
/// trajectory payload).
pub const BANK_VERSION: u16 = 3;

/// The sectioned container format with a length-prefixed (decode-only)
/// trajectory payload.
pub const BANK_VERSION_V2: u16 = 2;

/// The legacy monolithic container format version.
pub const BANK_VERSION_V1: u16 = 1;

/// Size of the fixed v1 container header in bytes.
pub const HEADER_LEN: usize = 8 + 2 + 8 + 8;

/// Size of the fixed v2 container header in bytes (magic, version,
/// section count, table checksum) — the section table follows.
pub const HEADER_LEN_V2: usize = 8 + 2 + 4 + 8;

/// Size of one v2 section-table entry in bytes (type, length, checksum).
pub const SECTION_ENTRY_LEN: usize = 2 + 8 + 8;

/// Section type: the single-fault dictionary (required).
pub const SECTION_DICTIONARY: u16 = 1;

/// Section type: the materialised trajectory set (required).
pub const SECTION_TRAJECTORIES: u16 = 2;

/// Section type: an optional multi-fault dictionary.
pub const SECTION_MULTIFAULT: u16 = 3;

/// Human-readable name of a section type tag.
pub fn section_name(kind: u16) -> &'static str {
    match kind {
        SECTION_DICTIONARY => "dictionary",
        SECTION_TRAJECTORIES => "trajectories",
        SECTION_MULTIFAULT => "multifault",
        _ => "unknown",
    }
}

/// Checks the magic and returns the container's declared format version
/// without validating anything else — the dispatch point between the v1
/// and v2 read paths.
///
/// # Errors
///
/// [`CodecError::Truncated`] when even the magic + version do not fit,
/// [`CodecError::BadMagic`] when the magic is wrong.
pub fn peek_version(container: &[u8]) -> Result<u16, CodecError> {
    if container.len() < 10 {
        return Err(CodecError::Truncated {
            needed: 10,
            available: container.len(),
        });
    }
    if container[..8] != BANK_MAGIC {
        return Err(CodecError::BadMagic);
    }
    Ok(u16::from_le_bytes([container[8], container[9]]))
}

/// Errors surfaced while encoding to or decoding from the container
/// format.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The container does not start with [`BANK_MAGIC`].
    BadMagic,
    /// The container's format version is newer than this reader.
    UnsupportedVersion(u16),
    /// The container or a field within it is shorter than declared.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match the header (v1), or the v2
    /// section table does not match its header checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A v2 section's payload does not match its table checksum — the
    /// corruption is attributed to that section.
    SectionChecksumMismatch {
        /// Type tag of the corrupted section.
        kind: u16,
        /// Checksum stored in the section table.
        stored: u64,
        /// Checksum recomputed over the section payload.
        computed: u64,
    },
    /// A required v2 section is absent from the container.
    MissingSection(u16),
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes(usize),
    /// A field violated a structural invariant (bad tag, bad UTF-8,
    /// inconsistent counts, non-finite value where one is required, …).
    Malformed(String),
    /// An error raised while reading or decoding a named file — wraps the
    /// underlying error with the offending path, so multi-shard loads can
    /// report *which* bank failed.
    InFile {
        /// The file being read.
        path: PathBuf,
        /// The underlying failure.
        source: Box<CodecError>,
    },
}

impl CodecError {
    /// Wraps this error with the path of the file it occurred in. A
    /// second wrap is a no-op, so callers can annotate defensively.
    pub fn in_file(self, path: impl AsRef<Path>) -> CodecError {
        match self {
            CodecError::InFile { .. } => self,
            other => CodecError::InFile {
                path: path.as_ref().to_path_buf(),
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "bank I/O error: {e}"),
            CodecError::BadMagic => write!(f, "not a trajectory bank (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported bank format version {v} (reader supports \
                     {BANK_VERSION_V1}..={BANK_VERSION})"
                )
            }
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated bank: needed {needed} bytes, found {available}"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "bank payload corrupted: checksum {computed:#018x} != stored {stored:#018x}"
            ),
            CodecError::SectionChecksumMismatch {
                kind,
                stored,
                computed,
            } => write!(
                f,
                "bank section {kind} ({}) corrupted: checksum {computed:#018x} != stored \
                 {stored:#018x}",
                section_name(*kind)
            ),
            CodecError::MissingSection(kind) => write!(
                f,
                "bank is missing required section {kind} ({})",
                section_name(*kind)
            ),
            CodecError::TrailingBytes(n) => write!(f, "bank payload has {n} trailing bytes"),
            CodecError::Malformed(what) => write!(f, "malformed bank: {what}"),
            CodecError::InFile { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// FNV-1a 64-bit checksum — small, dependency-free, and plenty to catch
/// the bit rot and truncation a dictionary artifact can suffer on disk.
pub fn checksum(bytes: &[u8]) -> u64 {
    checksum_parts(&[bytes])
}

/// [`checksum`] over the concatenation of `parts`, without materialising
/// it (used for the v2 table checksum, which covers the section count
/// and the table bytes).
pub fn checksum_parts(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Appends length-prefixed little-endian fields to a payload buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (LE) — exact, so a
    /// round trip is bit-identical.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u32::MAX` bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string fits u32 length prefix"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds `u32::MAX` elements.
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_u32(u32::try_from(xs.len()).expect("slice fits u32 length prefix"));
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Current payload length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The raw payload bytes encoded so far — the body of one v2 section
    /// (hand to [`ContainerBuilder::push_section`]).
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Seals the payload into a full **v1** (legacy, monolithic)
    /// container: header (magic, version, length, checksum) followed by
    /// the payload bytes. Kept so compatibility tests can mint v1 banks;
    /// new artifacts go through [`ContainerBuilder`].
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len());
        out.extend_from_slice(&BANK_MAGIC);
        out.extend_from_slice(&BANK_VERSION_V1.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Assembles a sectioned container (v2 or v3 framing — identical bytes
/// apart from the version field): push type-tagged payloads, then
/// [`finish`](ContainerBuilder::finish) seals the header and section
/// table. Encoding is deterministic — identical sections in identical
/// order yield identical bytes.
#[derive(Debug)]
pub struct ContainerBuilder {
    version: u16,
    sections: Vec<(u16, Vec<u8>)>,
}

impl Default for ContainerBuilder {
    fn default() -> Self {
        ContainerBuilder::new()
    }
}

impl ContainerBuilder {
    /// A builder holding no sections yet, targeting the current format
    /// version ([`BANK_VERSION`]).
    pub fn new() -> Self {
        ContainerBuilder::with_version(BANK_VERSION)
    }

    /// A builder targeting an explicit sectioned format version —
    /// [`BANK_VERSION_V2`] or [`BANK_VERSION`] — for writers that keep
    /// emitting the older trajectory payload (`ftd build-bank --format 2`,
    /// compatibility tests).
    ///
    /// # Panics
    ///
    /// Panics on a version with non-sectioned framing.
    pub fn with_version(version: u16) -> Self {
        assert!(
            version == BANK_VERSION_V2 || version == BANK_VERSION,
            "sectioned container versions are {BANK_VERSION_V2} and {BANK_VERSION}"
        );
        ContainerBuilder {
            version,
            sections: Vec::new(),
        }
    }

    /// The format version this builder will stamp into the header.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Appends a section. Sections are written in push order; readers
    /// locate them by type tag, so order carries no meaning.
    pub fn push_section(&mut self, kind: u16, payload: Vec<u8>) {
        self.sections.push((kind, payload));
    }

    /// Number of sections pushed so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// `true` when no section has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Seals the container: magic, version, section count, table
    /// checksum, section table, then the payloads back-to-back.
    pub fn finish(self) -> Vec<u8> {
        let count = u32::try_from(self.sections.len()).expect("section count fits u32");
        let mut table = Vec::with_capacity(self.sections.len() * SECTION_ENTRY_LEN);
        let mut body_len = 0usize;
        for (kind, payload) in &self.sections {
            table.extend_from_slice(&kind.to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&checksum(payload).to_le_bytes());
            body_len += payload.len();
        }
        let count_le = count.to_le_bytes();
        let table_ck = checksum_parts(&[&count_le, &table]);

        let mut out = Vec::with_capacity(HEADER_LEN_V2 + table.len() + body_len);
        out.extend_from_slice(&BANK_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&count_le);
        out.extend_from_slice(&table_ck.to_le_bytes());
        out.extend_from_slice(&table);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// One entry of a parsed v2 section table, without a borrow of the
/// container bytes — the owner-independent sibling of [`Section`], for
/// long-lived mapped shards where the table outlives any one borrow of
/// the mapping (see [`SectionTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// The section's type tag.
    pub kind: u16,
    /// Absolute byte offset of the payload within the container.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Checksum stored in the section table.
    pub stored_checksum: u64,
}

impl SectionEntry {
    /// The payload bytes this entry describes, sliced out of the
    /// container the table was parsed from.
    pub fn payload<'a>(&self, container: &'a [u8]) -> &'a [u8] {
        &container[self.offset..self.offset + self.len]
    }
}

/// A structurally validated v2 section table that owns no borrow of the
/// container: magic, version, table checksum, and exact payload tiling
/// are verified eagerly by [`SectionTable::parse`], while each section's
/// payload FNV is verified lazily on first access through
/// [`SectionTable::find`] / [`SectionTable::require`] — the shape a
/// mapped shard needs, where the kernel pages a section in only when a
/// reader actually touches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionTable {
    version: u16,
    entries: Vec<SectionEntry>,
    total_len: usize,
}

impl SectionTable {
    /// Parses and structurally validates a sectioned (v2 or v3)
    /// container's header and section table, touching none of the
    /// payload bytes.
    ///
    /// # Errors
    ///
    /// As [`Container::parse`]: magic/version violations, a table
    /// checksum mismatch, or any size inconsistency.
    pub fn parse(container: &[u8]) -> Result<Self, CodecError> {
        let version = peek_version(container)?;
        if version != BANK_VERSION_V2 && version != BANK_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        if container.len() < HEADER_LEN_V2 {
            return Err(CodecError::Truncated {
                needed: HEADER_LEN_V2,
                available: container.len(),
            });
        }
        let count = u32::from_le_bytes(container[10..14].try_into().expect("4 bytes")) as usize;
        let table_len = count.saturating_mul(SECTION_ENTRY_LEN);
        let table_end = HEADER_LEN_V2.saturating_add(table_len);
        if table_end > container.len() {
            return Err(CodecError::Truncated {
                needed: table_end,
                available: container.len(),
            });
        }
        let table = &container[HEADER_LEN_V2..table_end];
        let stored = u64::from_le_bytes(container[14..22].try_into().expect("8 bytes"));
        let computed = checksum_parts(&[&container[10..14], table]);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }

        let mut entries = Vec::with_capacity(count);
        let mut offset = table_end;
        for entry in table.chunks_exact(SECTION_ENTRY_LEN) {
            let kind = u16::from_le_bytes(entry[0..2].try_into().expect("2 bytes"));
            let len = u64::from_le_bytes(entry[2..10].try_into().expect("8 bytes"));
            let stored_checksum = u64::from_le_bytes(entry[10..18].try_into().expect("8 bytes"));
            let available = (container.len() - offset) as u64;
            if len > available {
                return Err(CodecError::Truncated {
                    needed: offset.saturating_add(usize::try_from(len).unwrap_or(usize::MAX)),
                    available: container.len(),
                });
            }
            let len = len as usize;
            entries.push(SectionEntry {
                kind,
                offset,
                len,
                stored_checksum,
            });
            offset += len;
        }
        if offset != container.len() {
            return Err(CodecError::TrailingBytes(container.len() - offset));
        }
        Ok(SectionTable {
            version,
            entries,
            total_len: container.len(),
        })
    }

    /// The container format version the header declared
    /// ([`BANK_VERSION_V2`] or [`BANK_VERSION`]) — payload readers
    /// dispatch the trajectory-section decoding on it.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The table entries, in table order (payload checksums not yet
    /// verified).
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Total container length the table was validated against. A byte
    /// slice passed to [`find`](SectionTable::find) /
    /// [`require`](SectionTable::require) must have exactly this length.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Sum of the declared payload lengths of sections this reader
    /// understands and would decode — the per-shard resident-memory
    /// estimate the store's eviction budget accounts with.
    pub fn payload_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len as u64).sum()
    }

    /// Locates the unique section of type `kind` in `container` (the
    /// same bytes the table was parsed from) and verifies its payload
    /// checksum — the lazy half of the mapped read path.
    ///
    /// # Errors
    ///
    /// [`CodecError::SectionChecksumMismatch`] (attributed to `kind`) on
    /// payload corruption, [`CodecError::Malformed`] on a duplicate tag.
    ///
    /// # Panics
    ///
    /// Panics if `container` is not the byte sequence this table was
    /// parsed from (length mismatch).
    pub fn find<'a>(&self, container: &'a [u8], kind: u16) -> Result<Option<&'a [u8]>, CodecError> {
        assert_eq!(
            container.len(),
            self.total_len,
            "section table used against a different container"
        );
        let mut found: Option<&SectionEntry> = None;
        for e in &self.entries {
            if e.kind == kind {
                if found.is_some() {
                    return Err(CodecError::Malformed(format!(
                        "duplicate section {kind} ({})",
                        section_name(kind)
                    )));
                }
                found = Some(e);
            }
        }
        match found {
            None => Ok(None),
            Some(e) => {
                let payload = e.payload(container);
                let computed = checksum(payload);
                if computed != e.stored_checksum {
                    return Err(CodecError::SectionChecksumMismatch {
                        kind,
                        stored: e.stored_checksum,
                        computed,
                    });
                }
                Ok(Some(payload))
            }
        }
    }

    /// [`SectionTable::find`] for a *required* section.
    ///
    /// # Errors
    ///
    /// As [`SectionTable::find`], plus [`CodecError::MissingSection`]
    /// when the section is absent.
    pub fn require<'a>(&self, container: &'a [u8], kind: u16) -> Result<&'a [u8], CodecError> {
        self.find(container, kind)?
            .ok_or(CodecError::MissingSection(kind))
    }
}

/// One section of a parsed v2 container.
#[derive(Debug, Clone, Copy)]
pub struct Section<'a> {
    /// The section's type tag.
    pub kind: u16,
    /// Absolute byte offset of the payload within the container.
    pub offset: usize,
    /// Checksum stored in the section table.
    pub stored_checksum: u64,
    /// The section's payload bytes (not yet checksum-verified).
    pub payload: &'a [u8],
}

impl Section<'_> {
    /// Recomputes the payload checksum and compares it to the table.
    pub fn checksum_ok(&self) -> bool {
        checksum(self.payload) == self.stored_checksum
    }
}

/// A parsed (but not yet per-section-verified) v2 container: the header
/// and section table are validated structurally — magic, version, table
/// checksum, and that the declared payloads tile the container exactly —
/// while each section's payload checksum is verified on access, so tools
/// like `ftd bank-info` can report per-section status without aborting
/// at the first bad section.
#[derive(Debug)]
pub struct Container<'a> {
    version: u16,
    sections: Vec<Section<'a>>,
}

impl<'a> Container<'a> {
    /// Parses a sectioned (v2 or v3) container's header and section
    /// table.
    ///
    /// # Errors
    ///
    /// Magic/version violations, a table checksum mismatch
    /// ([`CodecError::ChecksumMismatch`]), or any size inconsistency
    /// (the container must equal header + table + declared payloads
    /// exactly) are reported before any section is touched.
    pub fn parse(container: &'a [u8]) -> Result<Self, CodecError> {
        let table = SectionTable::parse(container)?;
        let sections = table
            .entries()
            .iter()
            .map(|e| Section {
                kind: e.kind,
                offset: e.offset,
                stored_checksum: e.stored_checksum,
                payload: e.payload(container),
            })
            .collect();
        Ok(Container {
            version: table.version(),
            sections,
        })
    }

    /// The container format version the header declared.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The sections, in table order (payload checksums not yet verified
    /// — see [`Section::checksum_ok`]).
    pub fn sections(&self) -> &[Section<'a>] {
        &self.sections
    }

    /// Locates the unique section of type `kind` and verifies its
    /// checksum. Returns `Ok(None)` when the container has no such
    /// section (an *optional* section being absent is not an error).
    ///
    /// # Errors
    ///
    /// [`CodecError::SectionChecksumMismatch`] (attributed to `kind`) on
    /// payload corruption, [`CodecError::Malformed`] when the type tag
    /// appears more than once.
    pub fn find(&self, kind: u16) -> Result<Option<&'a [u8]>, CodecError> {
        let mut found: Option<&Section<'a>> = None;
        for s in &self.sections {
            if s.kind == kind {
                if found.is_some() {
                    return Err(CodecError::Malformed(format!(
                        "duplicate section {kind} ({})",
                        section_name(kind)
                    )));
                }
                found = Some(s);
            }
        }
        match found {
            None => Ok(None),
            Some(s) => {
                let computed = checksum(s.payload);
                if computed != s.stored_checksum {
                    return Err(CodecError::SectionChecksumMismatch {
                        kind,
                        stored: s.stored_checksum,
                        computed,
                    });
                }
                Ok(Some(s.payload))
            }
        }
    }

    /// [`Container::find`] for a *required* section.
    ///
    /// # Errors
    ///
    /// As [`Container::find`], plus [`CodecError::MissingSection`] when
    /// the section is absent.
    pub fn require(&self, kind: u16) -> Result<&'a [u8], CodecError> {
        self.find(kind)?.ok_or(CodecError::MissingSection(kind))
    }
}

/// Bounds-checked reader over a verified container payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Verifies a **v1** container (magic, version, declared length,
    /// checksum) and returns a decoder positioned at the start of the
    /// payload. v2 containers go through [`Container::parse`] instead;
    /// use [`peek_version`] to dispatch.
    ///
    /// # Errors
    ///
    /// Any header or checksum violation is reported before a single
    /// payload field is parsed.
    pub fn open(container: &'a [u8]) -> Result<Self, CodecError> {
        if container.len() < HEADER_LEN {
            return Err(CodecError::Truncated {
                needed: HEADER_LEN,
                available: container.len(),
            });
        }
        if container[..8] != BANK_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([container[8], container[9]]);
        if version != BANK_VERSION_V1 {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let declared = u64::from_le_bytes(container[10..18].try_into().expect("8 bytes"));
        let payload = &container[HEADER_LEN..];
        if declared != payload.len() as u64 {
            return Err(CodecError::Truncated {
                needed: HEADER_LEN + declared as usize,
                available: container.len(),
            });
        }
        let stored = u64::from_le_bytes(container[18..26].try_into().expect("8 bytes"));
        let computed = checksum(payload);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        Ok(Decoder {
            buf: payload,
            pos: 0,
        })
    }

    /// A decoder over a bare payload slice (a verified v2 section body —
    /// header and checksum checks already done by [`Container`]).
    pub fn over(payload: &'a [u8]) -> Self {
        Decoder {
            buf: payload,
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            available: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated {
                needed: end,
                available: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64` (LE).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` bit pattern (LE).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed count and sanity-checks it against the
    /// bytes remaining (each element at least `elem_size` bytes), so a
    /// corrupt count cannot trigger a huge allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the declared count cannot fit in
    /// the remaining payload.
    pub fn get_count(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.get_u32()? as usize;
        let needed = n.saturating_mul(elem_size.max(1));
        let available = self.buf.len() - self.pos;
        if needed > available {
            // `needed` may have saturated to `usize::MAX` on a poisoned
            // count: saturate the report too instead of overflowing
            // (`pos + needed` panics in debug builds) — the error is the
            // contract here, not a crash.
            return Err(CodecError::Truncated {
                needed: self.pos.saturating_add(needed),
                available: self.buf.len(),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::Malformed`] on invalid
    /// UTF-8.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Malformed("string field is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the declared length overruns the
    /// payload.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when bytes are left over.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return Err(CodecError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_container() -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(3);
        enc.put_u32(77);
        enc.put_u64(1 << 40);
        enc.put_f64(-2.5);
        enc.put_str("R3+20%");
        enc.put_f64s(&[0.0, 1.5, f64::MAX]);
        enc.finish()
    }

    #[test]
    fn primitive_round_trip() {
        let bytes = sample_container();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert_eq!(dec.get_u8().unwrap(), 3);
        assert_eq!(dec.get_u32().unwrap(), 77);
        assert_eq!(dec.get_u64().unwrap(), 1 << 40);
        assert_eq!(dec.get_f64().unwrap(), -2.5);
        assert_eq!(dec.get_str().unwrap(), "R3+20%");
        assert_eq!(dec.get_f64s().unwrap(), vec![0.0, 1.5, f64::MAX]);
        assert_eq!(dec.remaining(), 0);
        dec.finish().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_container();
        bytes[0] ^= 0xff;
        assert!(matches!(Decoder::open(&bytes), Err(CodecError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample_container();
        bytes[8] = 0xfe;
        bytes[9] = 0x01;
        // Version bytes sit in the header, outside the checksum.
        assert!(matches!(
            Decoder::open(&bytes),
            Err(CodecError::UnsupportedVersion(0x01fe))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_container();
        for cut in [0, HEADER_LEN - 1, bytes.len() - 1] {
            assert!(matches!(
                Decoder::open(&bytes[..cut]),
                Err(CodecError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = sample_container();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(matches!(
            Decoder::open(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_count_rejected_before_allocating() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX); // declares ~4 billion elements
        let bytes = enc.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert!(matches!(dec.get_f64s(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn poisoned_count_saturates_instead_of_overflowing() {
        // A corrupt count whose `count × elem_size` product saturates to
        // `usize::MAX` must come back as a `Truncated` error — not a
        // debug-build overflow panic in `pos + needed`.
        let mut enc = Encoder::new();
        enc.put_u8(0xaa); // advance pos past 0 so the add could overflow
        enc.put_u32(u32::MAX);
        let bytes = enc.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert_eq!(dec.get_u8().unwrap(), 0xaa);
        match dec.get_count(usize::MAX) {
            Err(CodecError::Truncated { needed, available }) => {
                assert_eq!(needed, usize::MAX);
                assert_eq!(available, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = sample_container();
        let mut dec = Decoder::open(&bytes).unwrap();
        let _ = dec.get_u8().unwrap();
        assert!(matches!(dec.finish(), Err(CodecError::TrailingBytes(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_u8(0xff);
        enc.put_u8(0xfe);
        let bytes = enc.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert!(matches!(dec.get_str(), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn checksum_parts_matches_concatenation() {
        assert_eq!(checksum_parts(&[b"ab", b"cd"]), checksum(b"abcd"));
        assert_eq!(checksum_parts(&[b"", b"abcd", b""]), checksum(b"abcd"));
    }

    fn sample_v2() -> Vec<u8> {
        let mut b = ContainerBuilder::new();
        b.push_section(SECTION_DICTIONARY, b"dict-payload".to_vec());
        b.push_section(SECTION_TRAJECTORIES, b"traj".to_vec());
        b.push_section(0x7ff0, b"future-section".to_vec());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        b.finish()
    }

    #[test]
    fn v2_container_round_trips_sections() {
        let bytes = sample_v2();
        assert_eq!(peek_version(&bytes).unwrap(), BANK_VERSION);
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(c.sections().len(), 3);
        assert!(c.sections().iter().all(|s| s.checksum_ok()));
        assert_eq!(c.require(SECTION_DICTIONARY).unwrap(), b"dict-payload");
        assert_eq!(c.require(SECTION_TRAJECTORIES).unwrap(), b"traj");
        assert_eq!(c.find(0x7ff0).unwrap(), Some(&b"future-section"[..]));
        assert_eq!(c.find(SECTION_MULTIFAULT).unwrap(), None);
        assert!(matches!(
            c.require(SECTION_MULTIFAULT),
            Err(CodecError::MissingSection(SECTION_MULTIFAULT))
        ));
    }

    #[test]
    fn v2_section_corruption_is_attributed() {
        let bytes = sample_v2();
        let c = Container::parse(&bytes).unwrap();
        let traj_off = c.sections()[1].offset;
        drop(c);
        let mut corrupt = bytes.clone();
        corrupt[traj_off] ^= 0x01;
        let c = Container::parse(&corrupt).unwrap();
        // The untouched section still verifies…
        assert!(c.require(SECTION_DICTIONARY).is_ok());
        // …while the hit one is reported by name.
        assert!(matches!(
            c.require(SECTION_TRAJECTORIES),
            Err(CodecError::SectionChecksumMismatch {
                kind: SECTION_TRAJECTORIES,
                ..
            })
        ));
    }

    #[test]
    fn v2_table_corruption_is_detected() {
        let bytes = sample_v2();
        // Every byte of count + table checksum + table entries.
        for pos in 10..HEADER_LEN_V2 + 3 * SECTION_ENTRY_LEN {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                Container::parse(&corrupt).is_err(),
                "table flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn v2_truncation_and_trailing_garbage_detected() {
        let bytes = sample_v2();
        for cut in [0, 9, HEADER_LEN_V2 - 1, bytes.len() - 1] {
            assert!(Container::parse(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Container::parse(&padded).is_err());
    }

    #[test]
    fn v2_duplicate_section_rejected_on_access() {
        let mut b = ContainerBuilder::new();
        b.push_section(SECTION_DICTIONARY, b"a".to_vec());
        b.push_section(SECTION_DICTIONARY, b"b".to_vec());
        let c = b.finish();
        let c = Container::parse(&c).unwrap();
        assert!(matches!(
            c.require(SECTION_DICTIONARY),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn section_table_matches_container_view() {
        let bytes = sample_v2();
        let table = SectionTable::parse(&bytes).unwrap();
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(table.entries().len(), c.sections().len());
        assert_eq!(table.total_len(), bytes.len());
        for (e, s) in table.entries().iter().zip(c.sections()) {
            assert_eq!(e.kind, s.kind);
            assert_eq!(e.offset, s.offset);
            assert_eq!(e.stored_checksum, s.stored_checksum);
            assert_eq!(e.payload(&bytes), s.payload);
        }
        assert_eq!(
            table.payload_bytes(),
            c.sections().iter().map(|s| s.payload.len() as u64).sum()
        );
        assert_eq!(
            table.require(&bytes, SECTION_DICTIONARY).unwrap(),
            b"dict-payload"
        );
        assert_eq!(table.find(&bytes, SECTION_MULTIFAULT).unwrap(), None);
    }

    #[test]
    fn section_table_verifies_payload_lazily() {
        let bytes = sample_v2();
        let traj_off = SectionTable::parse(&bytes).unwrap().entries()[1].offset;
        let mut corrupt = bytes.clone();
        corrupt[traj_off] ^= 0x01;
        // Parsing never touches payloads, so corruption parses fine…
        let table = SectionTable::parse(&corrupt).unwrap();
        assert!(table.require(&corrupt, SECTION_DICTIONARY).is_ok());
        // …and is attributed on first access to the hit section.
        assert!(matches!(
            table.require(&corrupt, SECTION_TRAJECTORIES),
            Err(CodecError::SectionChecksumMismatch {
                kind: SECTION_TRAJECTORIES,
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "different container")]
    fn section_table_rejects_foreign_container() {
        let bytes = sample_v2();
        let table = SectionTable::parse(&bytes).unwrap();
        let _ = table.find(&bytes[..bytes.len() - 1], SECTION_DICTIONARY);
    }

    #[test]
    fn sectioned_parser_accepts_v2_and_v3_and_reports_the_version() {
        for version in [BANK_VERSION_V2, BANK_VERSION] {
            let mut b = ContainerBuilder::with_version(version);
            b.push_section(SECTION_DICTIONARY, b"dict".to_vec());
            let bytes = b.finish();
            assert_eq!(peek_version(&bytes).unwrap(), version);
            let table = SectionTable::parse(&bytes).unwrap();
            assert_eq!(table.version(), version);
            let c = Container::parse(&bytes).unwrap();
            assert_eq!(c.version(), version);
            assert_eq!(c.require(SECTION_DICTIONARY).unwrap(), b"dict");
        }
        // An unknown sectioned future version is still rejected.
        let mut b = ContainerBuilder::new();
        b.push_section(SECTION_DICTIONARY, b"dict".to_vec());
        let mut bytes = b.finish();
        bytes[8] = 4;
        assert!(matches!(
            SectionTable::parse(&bytes),
            Err(CodecError::UnsupportedVersion(4))
        ));
    }

    #[test]
    fn v1_container_rejected_by_v2_parser_and_vice_versa() {
        let v1 = sample_container();
        assert_eq!(peek_version(&v1).unwrap(), BANK_VERSION_V1);
        assert!(matches!(
            Container::parse(&v1),
            Err(CodecError::UnsupportedVersion(BANK_VERSION_V1))
        ));
        let v2 = sample_v2();
        assert!(matches!(
            Decoder::open(&v2),
            Err(CodecError::UnsupportedVersion(BANK_VERSION))
        ));
    }

    #[test]
    fn in_file_wraps_once_and_names_the_path() {
        let err = CodecError::BadMagic.in_file("/tmp/shard-a.ftb");
        let msg = err.to_string();
        assert!(msg.contains("/tmp/shard-a.ftb"), "{msg}");
        assert!(msg.contains("bad magic"), "{msg}");
        // Re-wrapping keeps the original path.
        let rewrapped = err.in_file("/tmp/other.ftb");
        assert!(rewrapped.to_string().contains("shard-a"), "{rewrapped}");
        assert!(std::error::Error::source(&rewrapped).is_some());
    }
}
