//! Self-contained binary codec for trajectory banks.
//!
//! The vendored `serde` is a marker-only shim (see `vendor/README.md`),
//! so persistence is hand-rolled: a fixed container layout with a
//! versioned header, length-prefixed fields, and a checksum over the
//! payload, decoded by a corruption-detecting reader that never trusts a
//! length it has not bounds-checked.
//!
//! ## Container layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FTBANK\r\n"
//! 8       2     format version (u16 LE)
//! 10      8     payload length in bytes (u64 LE)
//! 18      8     FNV-1a 64 checksum of the payload (u64 LE)
//! 26      n     payload (length-prefixed fields, little-endian)
//! ```
//!
//! Within the payload every variable-length field carries a `u32 LE`
//! count prefix; scalars are fixed-width little-endian. All reads are
//! bounds-checked and a decode must consume the payload exactly.

use std::fmt;

/// Container magic. The `\r\n` tail catches text-mode transfer mangling,
/// PNG-style.
pub const BANK_MAGIC: [u8; 8] = *b"FTBANK\r\n";

/// Current container format version.
pub const BANK_VERSION: u16 = 1;

/// Size of the fixed container header in bytes.
pub const HEADER_LEN: usize = 8 + 2 + 8 + 8;

/// Errors surfaced while encoding to or decoding from the container
/// format.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The container does not start with [`BANK_MAGIC`].
    BadMagic,
    /// The container's format version is newer than this reader.
    UnsupportedVersion(u16),
    /// The container or a field within it is shorter than declared.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes(usize),
    /// A field violated a structural invariant (bad tag, bad UTF-8,
    /// inconsistent counts, non-finite value where one is required, …).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "bank I/O error: {e}"),
            CodecError::BadMagic => write!(f, "not a trajectory bank (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported bank format version {v} (reader supports {BANK_VERSION})"
                )
            }
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated bank: needed {needed} bytes, found {available}"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "bank payload corrupted: checksum {computed:#018x} != stored {stored:#018x}"
            ),
            CodecError::TrailingBytes(n) => write!(f, "bank payload has {n} trailing bytes"),
            CodecError::Malformed(what) => write!(f, "malformed bank: {what}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// FNV-1a 64-bit checksum — small, dependency-free, and plenty to catch
/// the bit rot and truncation a dictionary artifact can suffer on disk.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Appends length-prefixed little-endian fields to a payload buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (LE) — exact, so a
    /// round trip is bit-identical.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u32::MAX` bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string fits u32 length prefix"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds `u32::MAX` elements.
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_u32(u32::try_from(xs.len()).expect("slice fits u32 length prefix"));
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Current payload length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seals the payload into a full container: header (magic, version,
    /// length, checksum) followed by the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len());
        out.extend_from_slice(&BANK_MAGIC);
        out.extend_from_slice(&BANK_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Bounds-checked reader over a verified container payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Verifies a container (magic, version, declared length, checksum)
    /// and returns a decoder positioned at the start of the payload.
    ///
    /// # Errors
    ///
    /// Any header or checksum violation is reported before a single
    /// payload field is parsed.
    pub fn open(container: &'a [u8]) -> Result<Self, CodecError> {
        if container.len() < HEADER_LEN {
            return Err(CodecError::Truncated {
                needed: HEADER_LEN,
                available: container.len(),
            });
        }
        if container[..8] != BANK_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([container[8], container[9]]);
        if version != BANK_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let declared = u64::from_le_bytes(container[10..18].try_into().expect("8 bytes"));
        let payload = &container[HEADER_LEN..];
        if declared != payload.len() as u64 {
            return Err(CodecError::Truncated {
                needed: HEADER_LEN + declared as usize,
                available: container.len(),
            });
        }
        let stored = u64::from_le_bytes(container[18..26].try_into().expect("8 bytes"));
        let computed = checksum(payload);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        Ok(Decoder {
            buf: payload,
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            available: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated {
                needed: end,
                available: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64` (LE).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` bit pattern (LE).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of payload.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed count and sanity-checks it against the
    /// bytes remaining (each element at least `elem_size` bytes), so a
    /// corrupt count cannot trigger a huge allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the declared count cannot fit in
    /// the remaining payload.
    pub fn get_count(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.get_u32()? as usize;
        let needed = n.saturating_mul(elem_size.max(1));
        let available = self.buf.len() - self.pos;
        if needed > available {
            // `needed` may have saturated to `usize::MAX` on a poisoned
            // count: saturate the report too instead of overflowing
            // (`pos + needed` panics in debug builds) — the error is the
            // contract here, not a crash.
            return Err(CodecError::Truncated {
                needed: self.pos.saturating_add(needed),
                available: self.buf.len(),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::Malformed`] on invalid
    /// UTF-8.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Malformed("string field is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the declared length overruns the
    /// payload.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when bytes are left over.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos != self.buf.len() {
            return Err(CodecError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_container() -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(3);
        enc.put_u32(77);
        enc.put_u64(1 << 40);
        enc.put_f64(-2.5);
        enc.put_str("R3+20%");
        enc.put_f64s(&[0.0, 1.5, f64::MAX]);
        enc.finish()
    }

    #[test]
    fn primitive_round_trip() {
        let bytes = sample_container();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert_eq!(dec.get_u8().unwrap(), 3);
        assert_eq!(dec.get_u32().unwrap(), 77);
        assert_eq!(dec.get_u64().unwrap(), 1 << 40);
        assert_eq!(dec.get_f64().unwrap(), -2.5);
        assert_eq!(dec.get_str().unwrap(), "R3+20%");
        assert_eq!(dec.get_f64s().unwrap(), vec![0.0, 1.5, f64::MAX]);
        assert_eq!(dec.remaining(), 0);
        dec.finish().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_container();
        bytes[0] ^= 0xff;
        assert!(matches!(Decoder::open(&bytes), Err(CodecError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample_container();
        bytes[8] = 0xfe;
        bytes[9] = 0x01;
        // Version bytes sit in the header, outside the checksum.
        assert!(matches!(
            Decoder::open(&bytes),
            Err(CodecError::UnsupportedVersion(0x01fe))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_container();
        for cut in [0, HEADER_LEN - 1, bytes.len() - 1] {
            assert!(matches!(
                Decoder::open(&bytes[..cut]),
                Err(CodecError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn payload_corruption_detected() {
        let mut bytes = sample_container();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(matches!(
            Decoder::open(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_count_rejected_before_allocating() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX); // declares ~4 billion elements
        let bytes = enc.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert!(matches!(dec.get_f64s(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn poisoned_count_saturates_instead_of_overflowing() {
        // A corrupt count whose `count × elem_size` product saturates to
        // `usize::MAX` must come back as a `Truncated` error — not a
        // debug-build overflow panic in `pos + needed`.
        let mut enc = Encoder::new();
        enc.put_u8(0xaa); // advance pos past 0 so the add could overflow
        enc.put_u32(u32::MAX);
        let bytes = enc.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert_eq!(dec.get_u8().unwrap(), 0xaa);
        match dec.get_count(usize::MAX) {
            Err(CodecError::Truncated { needed, available }) => {
                assert_eq!(needed, usize::MAX);
                assert_eq!(available, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = sample_container();
        let mut dec = Decoder::open(&bytes).unwrap();
        let _ = dec.get_u8().unwrap();
        assert!(matches!(dec.finish(), Err(CodecError::TrailingBytes(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_u8(0xff);
        enc.put_u8(0xfe);
        let bytes = enc.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert!(matches!(dec.get_str(), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
