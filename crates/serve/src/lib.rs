//! # ft-serve
//!
//! The serving layer over the fault-trajectory method: the paper's
//! pipeline splits into an expensive offline phase (fault simulation →
//! signatures → trajectories) and a cheap online phase (nearest-segment
//! lookup). This crate turns that split into an engine:
//!
//! * [`TrajectoryBank`] — dictionary + trajectories (+ an optional
//!   multi-fault dictionary) persisted to disk through a self-contained
//!   binary [`codec`]: a sectioned v2 container whose sections are
//!   type-tagged, length-prefixed, and independently checksummed
//!   (unknown sections skip; legacy v1 monolithic banks still load; the
//!   vendored `serde` is a marker-only shim, so the codec is
//!   hand-rolled).
//! * [`SegmentIndex`] — a spatial index over signature space: a
//!   cache-flat SoA forest of per-trajectory 8-ary AABB trees with
//!   SIMD-friendly batched box tests, incremental per-trajectory
//!   rebuilds, and a top-k early-termination query path — all
//!   **bit-identical** to the linear scan (the legacy pointer-tree
//!   baseline survives as [`TreeIndex`]).
//! * [`DiagnosisEngine`] — single and batched diagnosis over a shared
//!   loaded bank, fanning batches out over `std::thread::scope` workers
//!   in input order.
//! * [`BankStore`] — multi-circuit sharding: many banks keyed by CUT
//!   id, loaded lazily from `<dir>/<cut-id>.ftb`, each request routed to
//!   its shard's index.
//! * [`ServeHandle`] — the persistent serving front-end: long-lived
//!   worker threads over an mpsc queue with input-order reassembly, so
//!   sustained traffic pays no per-batch thread spawn and batches
//!   pipeline; results stay byte-identical to the scoped path at every
//!   worker count.
//! * [`MetricsRegistry`] ([`obs`]) — hand-rolled serving observability:
//!   lock-free counters, gauges, and log₂-bucket latency histograms
//!   over the engine, store, and pool, snapshotted to JSON, greppable
//!   text, or Prometheus exposition — and provably inert when disabled.
//! * [`NetServer`] ([`net`]) — the non-blocking TCP serving tier: a
//!   hand-rolled epoll/poll readiness loop speaking a length-prefixed,
//!   checksummed frame protocol, with per-connection pipelining,
//!   bounded-memory backpressure, graceful drain, and a matching
//!   pipelined load generator ([`run_loadgen`]).
//! * the `ftd` binary ([`cli`]) — `build-bank`, `diagnose`, `serve`
//!   (stdin or `--listen`), `loadgen`, `gen-requests`, `bank-info`,
//!   `stats`, and `bench-scan-vs-index` front ends over the same API.
//!
//! ## Example
//!
//! ```
//! use ft_circuit::tow_thomas_normalized;
//! use ft_core::TestVector;
//! use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
//! use ft_numerics::FrequencyGrid;
//! use ft_serve::{DiagnosisEngine, EngineConfig, TrajectoryBank};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = tow_thomas_normalized(1.0)?;
//! let universe = FaultUniverse::new(&bench.fault_set, DeviationGrid::paper());
//! let dict = FaultDictionary::build(
//!     &bench.circuit,
//!     &universe,
//!     &bench.input,
//!     &bench.probe,
//!     &FrequencyGrid::log_space(0.01, 100.0, 21),
//! )?;
//!
//! // Offline: build and persist the bank.
//! let bank = TrajectoryBank::build(dict, &TestVector::pair(0.6, 1.6));
//! let bytes = bank.to_bytes();
//!
//! // Online: reload and serve.
//! let bank = TrajectoryBank::from_bytes(&bytes)?;
//! let engine = DiagnosisEngine::new(bank, EngineConfig::default());
//! let mut faulty = bench.circuit.clone();
//! faulty.set_value("R2", 1.25)?;
//! let sig = ft_core::measure_signature(
//!     &faulty, &bench.circuit, &bench.input, &bench.probe,
//!     &TestVector::pair(0.6, 1.6),
//! )?;
//! let verdicts = engine.diagnose_batch(&[sig]);
//! assert_eq!(verdicts[0].best().component, "R2");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bank;
pub mod cli;
pub mod codec;
pub mod engine;
pub mod index;
pub mod mmap;
pub mod net;
pub mod obs;
pub mod pool;
pub mod store;
pub mod synthetic;
pub mod tree_index;

pub use bank::{MappedBank, TrajectoryBank};
pub use codec::{
    checksum, peek_version, section_name, CodecError, Container, ContainerBuilder, Decoder,
    Encoder, Section, SectionEntry, SectionTable, BANK_MAGIC, BANK_VERSION, BANK_VERSION_V1,
    SECTION_DICTIONARY, SECTION_MULTIFAULT, SECTION_TRAJECTORIES,
};
pub use engine::{diagnose_batch_topk_with, diagnose_batch_with, DiagnosisEngine, EngineConfig};
pub use index::{IndexCounters, QueryStats, SegmentIndex};
pub use mmap::{FileGen, Mmap};
pub use net::{
    connect_retry, fetch_stats, install_signal_drain, response_line, run_loadgen, FrameError,
    LoadgenConfig, LoadgenReport, NetConfig, NetError, NetServer, NetSummary, ShutdownHandle,
};
pub use obs::{
    bucket_bounds, bucket_index, labeled, Counter, EngineMetrics, Gauge, Histogram,
    HistogramSnapshot, MetricsRegistry, NetMetrics, PoolMetrics, Snapshot, SpanTimer, StoreMetrics,
};
pub use pool::{BatchId, ServeHandle, ServeResult};
pub use store::{
    diagnose_on, valid_cut_id, BankStore, DiagnosisRequest, RefreshSummary, StoreConfig, StoreError,
};
pub use synthetic::{synthetic_circuit_bank, synthetic_queries, synthetic_trajectory_set};
pub use tree_index::TreeIndex;
