//! The online diagnosis engine: a loaded bank behind an index, serving
//! single and batched queries.
//!
//! The engine owns one immutable [`TrajectoryBank`] plus its
//! [`SegmentIndex`]; batched queries fan out over `std::thread::scope`
//! workers that share the engine by reference (everything inside is
//! plain immutable data, so the borrow is free) and write results into
//! disjoint output slots, preserving input order.

use std::path::Path;

use ft_core::{Diagnoser, DiagnoserConfig, Diagnosis, SegmentQuery, Signature};

use crate::bank::TrajectoryBank;
use crate::codec::CodecError;
use crate::index::SegmentIndex;

/// Diagnoses a batch of signatures through an arbitrary query backend
/// with `std::thread::scope` workers, returning results in input order.
/// This is the engine's fan-out machinery exposed standalone so
/// benchmarks and the CLI can drive bare [`Diagnoser`] + backend pairs.
///
/// # Panics
///
/// Panics on signature dimension mismatch or if a worker panics.
pub fn diagnose_batch_with<B>(
    diagnoser: &Diagnoser,
    backend: &B,
    observed: &[Signature],
    workers: Option<usize>,
) -> Vec<Diagnosis>
where
    B: SegmentQuery + Sync + ?Sized,
{
    let n = observed.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<Diagnosis>> = vec![None; n];
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in observed.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (sig, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(diagnoser.diagnose_with(backend, sig));
                }
            });
        }
    });
    out.into_iter()
        .map(|d| d.expect("every batch slot is filled by exactly one worker"))
        .collect()
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineConfig {
    /// Diagnosis configuration (ambiguity ratio).
    pub diagnoser: DiagnoserConfig,
    /// Worker threads for batched queries; `None` uses the machine's
    /// available parallelism.
    pub workers: Option<usize>,
}

/// A persistent, indexed, batched diagnosis engine over one bank.
#[derive(Debug, Clone)]
pub struct DiagnosisEngine {
    bank: TrajectoryBank,
    index: SegmentIndex,
    diagnoser: Diagnoser,
    config: EngineConfig,
}

impl DiagnosisEngine {
    /// Builds the engine (and its spatial index) over a bank.
    ///
    /// # Panics
    ///
    /// Panics if the bank's trajectory set is empty.
    pub fn new(bank: TrajectoryBank, config: EngineConfig) -> Self {
        let index = SegmentIndex::build(bank.trajectory_set());
        let diagnoser = Diagnoser::new(bank.trajectory_set().clone(), config.diagnoser);
        DiagnosisEngine {
            bank,
            index,
            diagnoser,
            config,
        }
    }

    /// Loads a bank file and builds the engine over it.
    ///
    /// # Errors
    ///
    /// Propagates bank I/O and decode errors, annotated with the file
    /// path ([`CodecError::InFile`]) — a multi-shard store loading many
    /// banks must be able to say *which* shard failed.
    pub fn load(path: impl AsRef<Path>, config: EngineConfig) -> Result<Self, CodecError> {
        Ok(DiagnosisEngine::new(TrajectoryBank::load(path)?, config))
    }

    /// The underlying bank.
    #[inline]
    pub fn bank(&self) -> &TrajectoryBank {
        &self.bank
    }

    /// The spatial index in use.
    #[inline]
    pub fn index(&self) -> &SegmentIndex {
        &self.index
    }

    /// The engine configuration.
    #[inline]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Diagnoses one observed signature through the spatial index.
    ///
    /// # Panics
    ///
    /// Panics on signature dimension mismatch.
    pub fn diagnose(&self, observed: &Signature) -> Diagnosis {
        self.diagnoser.diagnose_with(&self.index, observed)
    }

    /// Diagnoses one observed signature with the exhaustive linear scan
    /// — the reference path the index must agree with bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on signature dimension mismatch.
    pub fn diagnose_linear(&self, observed: &Signature) -> Diagnosis {
        self.diagnoser.diagnose(observed)
    }

    /// Diagnoses a batch of observed signatures concurrently, returning
    /// results in input order.
    ///
    /// # Panics
    ///
    /// Panics on signature dimension mismatch or if a worker panics.
    pub fn diagnose_batch(&self, observed: &[Signature]) -> Vec<Diagnosis> {
        self.batch(observed, true)
    }

    /// [`DiagnosisEngine::diagnose_batch`] over the linear path — kept
    /// for benchmarking the index's win under identical threading.
    ///
    /// # Panics
    ///
    /// As [`DiagnosisEngine::diagnose_batch`].
    pub fn diagnose_batch_linear(&self, observed: &[Signature]) -> Vec<Diagnosis> {
        self.batch(observed, false)
    }

    fn batch(&self, observed: &[Signature], indexed: bool) -> Vec<Diagnosis> {
        if indexed {
            diagnose_batch_with(&self.diagnoser, &self.index, observed, self.config.workers)
        } else {
            diagnose_batch_with(
                &self.diagnoser,
                &ft_core::LinearScan,
                observed,
                self.config.workers,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_trajectory_set;
    use ft_core::TestVector;
    use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
    use ft_numerics::FrequencyGrid;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rc_engine(workers: Option<usize>) -> DiagnosisEngine {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::paper());
        let grid = FrequencyGrid::log_space(1.0, 1e6, 15);
        let dict = FaultDictionary::build(
            &ckt,
            &universe,
            "V1",
            &ft_circuit::Probe::node("out"),
            &grid,
        )
        .unwrap();
        let bank = TrajectoryBank::build(dict, &TestVector::pair(100.0, 1e4));
        DiagnosisEngine::new(
            bank,
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn indexed_and_linear_paths_agree() {
        let engine = rc_engine(Some(2));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let sig = Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]);
            assert_eq!(engine.diagnose(&sig), engine.diagnose_linear(&sig));
        }
    }

    #[test]
    fn batch_preserves_input_order() {
        let engine = rc_engine(Some(3));
        let mut rng = StdRng::seed_from_u64(6);
        let sigs: Vec<Signature> = (0..23)
            .map(|_| Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]))
            .collect();
        let batched = engine.diagnose_batch(&sigs);
        assert_eq!(batched.len(), sigs.len());
        for (sig, got) in sigs.iter().zip(&batched) {
            assert_eq!(&engine.diagnose(sig), got, "order or result drift");
        }
        // Linear batch agrees too.
        assert_eq!(engine.diagnose_batch_linear(&sigs), batched);
    }

    #[test]
    fn batch_edge_cases() {
        let engine = rc_engine(None);
        assert!(engine.diagnose_batch(&[]).is_empty());
        let one = vec![Signature::new(vec![1.0, -1.0])];
        assert_eq!(engine.diagnose_batch(&one).len(), 1);
        // More workers than work.
        let engine = rc_engine(Some(64));
        assert_eq!(engine.diagnose_batch(&one).len(), 1);
    }

    #[test]
    fn engine_over_synthetic_bank_is_exact() {
        let set = synthetic_trajectory_set(24, 6, 2, 99);
        let idx = SegmentIndex::build(&set);
        let diag = Diagnoser::new(set, DiagnoserConfig::default());
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..40 {
            let sig = Signature::new(vec![rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)]);
            assert_eq!(diag.diagnose(&sig), diag.diagnose_with(&idx, &sig));
        }
    }
}
