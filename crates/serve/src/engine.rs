//! The online diagnosis engine: a loaded bank behind an index, serving
//! single and batched queries.
//!
//! The engine owns one immutable bank source — a fully decoded
//! [`TrajectoryBank`] or a zero-copy [`MappedBank`] — plus its
//! [`SegmentIndex`]; batched queries fan out over `std::thread::scope`
//! workers that share the engine by reference (everything inside is
//! plain immutable data, so the borrow is free) and write results into
//! disjoint output slots, preserving input order.
//!
//! A mapped engine ([`DiagnosisEngine::load_mapped`]) decodes only the
//! trajectory section at load; the dictionary and multi-fault sections
//! stay as mapped bytes diagnosis never touches, which is what makes
//! its cold load a fraction of the heap path on dictionary-heavy
//! shards. The price: [`DiagnosisEngine::bank`] is `None` for mapped
//! engines — tools that need the dictionaries go through the bank
//! directly.

use std::path::Path;
use std::sync::Arc;

use ft_core::{Diagnoser, DiagnoserConfig, Diagnosis, SegmentQuery, Signature, TrajectorySet};

use crate::bank::{MappedBank, TrajectoryBank};
use crate::codec::{CodecError, SECTION_TRAJECTORIES};
use crate::index::SegmentIndex;
use crate::mmap::FileGen;
use crate::obs::{EngineMetrics, SpanTimer};

/// Diagnoses a batch of signatures through an arbitrary query backend
/// with `std::thread::scope` workers, returning results in input order.
/// This is the engine's fan-out machinery exposed standalone so
/// benchmarks and the CLI can drive bare [`Diagnoser`] + backend pairs.
///
/// # Panics
///
/// Panics on signature dimension mismatch or if a worker panics.
pub fn diagnose_batch_with<B>(
    diagnoser: &Diagnoser,
    backend: &B,
    observed: &[Signature],
    workers: Option<usize>,
) -> Vec<Diagnosis>
where
    B: SegmentQuery + Sync + ?Sized,
{
    let n = observed.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<Diagnosis>> = vec![None; n];
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in observed.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (sig, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(diagnoser.diagnose_with(backend, sig));
                }
            });
        }
    });
    out.into_iter()
        .map(|d| d.expect("every batch slot is filled by exactly one worker"))
        .collect()
}

/// [`diagnose_batch_with`] over the top-k / early-termination path:
/// each diagnosis ranks only the `k` best trajectories plus the rest of
/// the winner's ambiguity set (see [`Diagnoser::diagnose_topk`]).
///
/// # Panics
///
/// Panics if `k` is zero, on signature dimension mismatch, or if a
/// worker panics.
pub fn diagnose_batch_topk_with<B>(
    diagnoser: &Diagnoser,
    backend: &B,
    observed: &[Signature],
    k: usize,
    workers: Option<usize>,
) -> Vec<Diagnosis>
where
    B: SegmentQuery + Sync + ?Sized,
{
    let n = observed.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<Diagnosis>> = vec![None; n];
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in observed.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (sig, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(diagnoser.diagnose_topk(backend, sig, k));
                }
            });
        }
    });
    out.into_iter()
        .map(|d| d.expect("every batch slot is filled by exactly one worker"))
        .collect()
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineConfig {
    /// Diagnosis configuration (ambiguity ratio).
    pub diagnoser: DiagnoserConfig,
    /// Worker threads for batched queries; `None` uses the machine's
    /// available parallelism.
    pub workers: Option<usize>,
    /// When `Some(k)`, indexed diagnoses take the top-k /
    /// early-termination path: rankings stop after the `k` best
    /// trajectories plus the winner's full ambiguity set, so the rank-1
    /// verdict and ambiguity set stay identical to the full ranking
    /// while the search skips the tail. `None` (the default) ranks the
    /// full universe.
    pub topk: Option<usize>,
}

/// Where an engine's bank came from, and how much of it is decoded.
#[derive(Debug)]
enum BankSource {
    /// A fully decoded in-memory bank (built in-process or heap-loaded
    /// from a file, in which case the file's generation rides along).
    Heap {
        /// Boxed so the variant stays close in size to `Mapped` (a
        /// decoded bank is megabytes of owned vectors behind the box).
        bank: Box<TrajectoryBank>,
        generation: Option<FileGen>,
        file_len: u64,
    },
    /// A zero-copy mapped shard; only the trajectory set is decoded
    /// (and it lives in the diagnoser, not here).
    Mapped(MappedBank),
}

/// A persistent, indexed, batched diagnosis engine over one bank.
#[derive(Debug)]
pub struct DiagnosisEngine {
    source: BankSource,
    index: SegmentIndex,
    diagnoser: Diagnoser,
    config: EngineConfig,
    metrics: Option<EngineMetrics>,
}

impl DiagnosisEngine {
    /// Builds the engine (and its spatial index) over a bank.
    ///
    /// # Panics
    ///
    /// Panics if the bank's trajectory set is empty.
    pub fn new(bank: TrajectoryBank, config: EngineConfig) -> Self {
        let index = SegmentIndex::build(bank.trajectory_set());
        let diagnoser = Diagnoser::new(bank.trajectory_set().clone(), config.diagnoser);
        DiagnosisEngine {
            source: BankSource::Heap {
                bank: Box::new(bank),
                generation: None,
                file_len: 0,
            },
            index,
            diagnoser,
            config,
            metrics: None,
        }
    }

    /// Loads a bank file (full heap decode) and builds the engine over
    /// it, recording the file's generation for the store's hot-reload
    /// detection.
    ///
    /// # Errors
    ///
    /// Propagates bank I/O and decode errors, annotated with the file
    /// path ([`CodecError::InFile`]) — a multi-shard store loading many
    /// banks must be able to say *which* shard failed.
    pub fn load(path: impl AsRef<Path>, config: EngineConfig) -> Result<Self, CodecError> {
        let path = path.as_ref();
        let generation = FileGen::probe(path).map_err(|e| CodecError::from(e).in_file(path))?;
        let bank = TrajectoryBank::load(path)?;
        let index = SegmentIndex::build(bank.trajectory_set());
        let diagnoser = Diagnoser::new(bank.trajectory_set().clone(), config.diagnoser);
        Ok(DiagnosisEngine {
            source: BankSource::Heap {
                bank: Box::new(bank),
                generation: Some(generation),
                file_len: generation.len(),
            },
            index,
            diagnoser,
            config,
            metrics: None,
        })
    }

    /// Maps a bank file zero-copy and builds the engine over it: only
    /// the trajectory section is decoded; dictionary and multi-fault
    /// sections stay as untouched mapped bytes ([`MappedBank`]), so
    /// [`bank`](DiagnosisEngine::bank) is `None`.
    ///
    /// A v3 open is O(header) — it reads no trajectory payload bytes —
    /// so this method immediately runs the verification `open` skipped:
    /// the trajectory section's checksum and a deep content validation
    /// (finite coordinates, sound deviation ladders) of the packed
    /// view. A corrupt shard is therefore still rejected at load, just
    /// here instead of inside `open`.
    ///
    /// # Errors
    ///
    /// As [`DiagnosisEngine::load`]; corruption confined to sections
    /// diagnosis never reads (dictionary, multi-fault) does *not* fail
    /// the load (it surfaces if a tool later touches them through the
    /// mapped bank).
    pub fn load_mapped(path: impl AsRef<Path>, config: EngineConfig) -> Result<Self, CodecError> {
        let path = path.as_ref();
        let (mapped, set) = MappedBank::open(path)?;
        mapped.verify_trajectory_payload()?;
        set.validate_deep()
            .map_err(|msg| CodecError::Malformed(msg).in_file(path))?;
        let index = SegmentIndex::build(&set);
        let diagnoser = Diagnoser::new(set, config.diagnoser);
        Ok(DiagnosisEngine {
            source: BankSource::Mapped(mapped),
            index,
            diagnoser,
            config,
            metrics: None,
        })
    }

    /// Attaches observability handles: per-diagnose latency and path
    /// counters on this engine, per-query work counters (nodes visited,
    /// segments examined, top-k early exits) on its index, and the
    /// lazy-decode counter on a mapped bank source. Without this call
    /// every diagnose path is entirely uninstrumented (no clocks read,
    /// no atomics touched).
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        if let BankSource::Mapped(mapped) = &mut self.source {
            mapped.set_decode_counter(Arc::clone(&metrics.lazy_decodes));
        }
        self.index.set_counters(crate::index::IndexCounters {
            nodes_visited: Arc::clone(&metrics.index_nodes_visited),
            segments_examined: Arc::clone(&metrics.index_segments_examined),
            topk_early_exits: Arc::clone(&metrics.topk_early_exits),
        });
        self.metrics = Some(metrics);
    }

    /// The fully decoded bank, when this engine holds one (`None` for
    /// mapped engines, whose dictionaries live undecoded in the
    /// mapping — see [`DiagnosisEngine::mapped_bank`]).
    #[inline]
    pub fn bank(&self) -> Option<&TrajectoryBank> {
        match &self.source {
            BankSource::Heap { bank, .. } => Some(bank.as_ref()),
            BankSource::Mapped(_) => None,
        }
    }

    /// The mapped shard behind this engine, when it was opened with
    /// [`DiagnosisEngine::load_mapped`].
    #[inline]
    pub fn mapped_bank(&self) -> Option<&MappedBank> {
        match &self.source {
            BankSource::Heap { .. } => None,
            BankSource::Mapped(mapped) => Some(mapped),
        }
    }

    /// The trajectory set diagnosis runs against — always available,
    /// whatever the bank source.
    #[inline]
    pub fn trajectory_set(&self) -> &TrajectorySet {
        self.diagnoser.trajectory_set()
    }

    /// The source file's generation at load time: `Some` for engines
    /// loaded (heap or mapped) from a shard file, `None` for in-process
    /// banks. The store compares this against a fresh `stat` to detect
    /// rebuilt shards.
    #[inline]
    pub fn generation(&self) -> Option<FileGen> {
        match &self.source {
            BankSource::Heap { generation, .. } => *generation,
            BankSource::Mapped(mapped) => Some(mapped.generation()),
        }
    }

    /// Estimated bytes this engine's shard pins resident — what the
    /// store's memory budget accounts per shard. Zero for in-process
    /// banks (they have no file to re-load from, so they are never
    /// evicted and never counted).
    #[inline]
    pub fn source_bytes(&self) -> u64 {
        match &self.source {
            BankSource::Heap { file_len, .. } => *file_len,
            BankSource::Mapped(mapped) => mapped.payload_bytes(),
        }
    }

    /// Bytes this engine's shard pins resident *right now*: for mapped
    /// engines, the trajectory section plus whichever cold-section
    /// decodes are currently cached (see [`MappedBank::resident_bytes`]);
    /// for heap engines, the whole file. The store's budget accounts
    /// with this, so section eviction relieves pressure immediately.
    #[inline]
    pub fn resident_bytes(&self) -> u64 {
        match &self.source {
            BankSource::Heap { file_len, .. } => *file_len,
            BankSource::Mapped(mapped) => mapped.resident_bytes(),
        }
    }

    /// Drops any cached cold-section decodes (dictionary, multi-fault)
    /// of a mapped engine, returning the bytes freed. The trajectory
    /// view — and every diagnose path — is untouched; a later accessor
    /// call simply decodes again from the mapped bytes. Heap engines
    /// free nothing (their decode *is* the bank).
    pub fn evict_cold_sections(&self) -> u64 {
        match &self.source {
            BankSource::Heap { .. } => 0,
            BankSource::Mapped(mapped) => mapped.evict_decoded(),
        }
    }

    /// Bytes of cold-section decodes currently cached — the part of
    /// [`resident_bytes`](DiagnosisEngine::resident_bytes) that
    /// [`evict_cold_sections`](DiagnosisEngine::evict_cold_sections)
    /// can reclaim. Zero for heap engines.
    pub fn cold_section_bytes(&self) -> u64 {
        match &self.source {
            BankSource::Heap { .. } => 0,
            BankSource::Mapped(mapped) => mapped
                .section_residency()
                .iter()
                .filter(|(kind, _, resident)| *resident && *kind != SECTION_TRAJECTORIES)
                .map(|(_, len, _)| len)
                .sum(),
        }
    }

    /// `true` when the engine's undecoded sections are served by a
    /// genuine kernel mapping.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(&self.source, BankSource::Mapped(m) if m.is_mapped())
    }

    /// The spatial index in use.
    #[inline]
    pub fn index(&self) -> &SegmentIndex {
        &self.index
    }

    /// The engine configuration.
    #[inline]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Diagnoses one observed signature through the spatial index —
    /// the full ranking, or the top-k / early-termination path when
    /// [`EngineConfig::topk`] is set (rank-1 and ambiguity set are
    /// identical either way).
    ///
    /// # Panics
    ///
    /// Panics on signature dimension mismatch.
    pub fn diagnose(&self, observed: &Signature) -> Diagnosis {
        match self.config.topk {
            Some(k) => self.diagnose_topk(observed, k),
            None => {
                let _span = self.metrics.as_ref().map(|m| {
                    m.indexed.inc();
                    SpanTimer::start(Arc::clone(&m.diagnose_latency))
                });
                self.diagnoser.diagnose_with(&self.index, observed)
            }
        }
    }

    /// Diagnoses through the index's top-k / early-termination search:
    /// the ranking stops after the `k` best trajectories plus the
    /// winner's full ambiguity set, both provably identical to the full
    /// ranking's ([`Diagnoser::diagnose_topk`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or on signature dimension mismatch.
    pub fn diagnose_topk(&self, observed: &Signature, k: usize) -> Diagnosis {
        let _span = self.metrics.as_ref().map(|m| {
            m.indexed.inc();
            SpanTimer::start(Arc::clone(&m.diagnose_latency))
        });
        self.diagnoser.diagnose_topk(&self.index, observed, k)
    }

    /// Diagnoses one observed signature with the exhaustive linear scan
    /// — the reference path the index must agree with bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on signature dimension mismatch.
    pub fn diagnose_linear(&self, observed: &Signature) -> Diagnosis {
        let _span = self.metrics.as_ref().map(|m| {
            m.linear.inc();
            SpanTimer::start(Arc::clone(&m.diagnose_latency))
        });
        self.diagnoser.diagnose(observed)
    }

    /// Diagnoses a batch of observed signatures concurrently, returning
    /// results in input order.
    ///
    /// # Panics
    ///
    /// Panics on signature dimension mismatch or if a worker panics.
    pub fn diagnose_batch(&self, observed: &[Signature]) -> Vec<Diagnosis> {
        self.batch(observed, true)
    }

    /// [`DiagnosisEngine::diagnose_batch`] over the linear path — kept
    /// for benchmarking the index's win under identical threading.
    ///
    /// # Panics
    ///
    /// As [`DiagnosisEngine::diagnose_batch`].
    pub fn diagnose_batch_linear(&self, observed: &[Signature]) -> Vec<Diagnosis> {
        self.batch(observed, false)
    }

    fn batch(&self, observed: &[Signature], indexed: bool) -> Vec<Diagnosis> {
        if indexed {
            match self.config.topk {
                Some(k) => diagnose_batch_topk_with(
                    &self.diagnoser,
                    &self.index,
                    observed,
                    k,
                    self.config.workers,
                ),
                None => {
                    diagnose_batch_with(&self.diagnoser, &self.index, observed, self.config.workers)
                }
            }
        } else {
            diagnose_batch_with(
                &self.diagnoser,
                &ft_core::LinearScan,
                observed,
                self.config.workers,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_trajectory_set;
    use ft_core::TestVector;
    use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
    use ft_numerics::FrequencyGrid;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rc_engine(workers: Option<usize>) -> DiagnosisEngine {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::paper());
        let grid = FrequencyGrid::log_space(1.0, 1e6, 15);
        let dict = FaultDictionary::build(
            &ckt,
            &universe,
            "V1",
            &ft_circuit::Probe::node("out"),
            &grid,
        )
        .unwrap();
        let bank = TrajectoryBank::build(dict, &TestVector::pair(100.0, 1e4));
        DiagnosisEngine::new(
            bank,
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn indexed_and_linear_paths_agree() {
        let engine = rc_engine(Some(2));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let sig = Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]);
            assert_eq!(engine.diagnose(&sig), engine.diagnose_linear(&sig));
        }
    }

    #[test]
    fn batch_preserves_input_order() {
        let engine = rc_engine(Some(3));
        let mut rng = StdRng::seed_from_u64(6);
        let sigs: Vec<Signature> = (0..23)
            .map(|_| Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]))
            .collect();
        let batched = engine.diagnose_batch(&sigs);
        assert_eq!(batched.len(), sigs.len());
        for (sig, got) in sigs.iter().zip(&batched) {
            assert_eq!(&engine.diagnose(sig), got, "order or result drift");
        }
        // Linear batch agrees too.
        assert_eq!(engine.diagnose_batch_linear(&sigs), batched);
    }

    #[test]
    fn batch_edge_cases() {
        let engine = rc_engine(None);
        assert!(engine.diagnose_batch(&[]).is_empty());
        let one = vec![Signature::new(vec![1.0, -1.0])];
        assert_eq!(engine.diagnose_batch(&one).len(), 1);
        // More workers than work.
        let engine = rc_engine(Some(64));
        assert_eq!(engine.diagnose_batch(&one).len(), 1);
    }

    #[test]
    fn mapped_engine_matches_heap_engine_exactly() {
        let heap = rc_engine(Some(2));
        let path = std::env::temp_dir().join("ft_serve_engine_mapped_test.ftb");
        heap.bank().expect("heap engine").save(&path).unwrap();
        let mapped = DiagnosisEngine::load_mapped(&path, heap.config()).unwrap();
        assert!(mapped.bank().is_none());
        assert_eq!(mapped.is_mapped(), cfg!(unix));
        assert_eq!(mapped.trajectory_set(), heap.trajectory_set());
        assert_eq!(mapped.generation(), Some(FileGen::probe(&path).unwrap()));
        assert!(mapped.source_bytes() > 0);
        // Heap-loaded engines carry the file generation too; in-process
        // ones carry none.
        let loaded = DiagnosisEngine::load(&path, heap.config()).unwrap();
        assert_eq!(loaded.generation(), mapped.generation());
        assert_eq!(
            loaded.source_bytes(),
            std::fs::metadata(&path).unwrap().len()
        );
        assert_eq!(heap.generation(), None);
        assert_eq!(heap.source_bytes(), 0);
        std::fs::remove_file(&path).ok();

        let mut rng = StdRng::seed_from_u64(17);
        let sigs: Vec<Signature> = (0..40)
            .map(|_| Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]))
            .collect();
        assert_eq!(mapped.diagnose_batch(&sigs), heap.diagnose_batch(&sigs));
        for sig in &sigs {
            assert_eq!(mapped.diagnose(sig), heap.diagnose(sig));
            assert_eq!(mapped.diagnose_linear(sig), heap.diagnose_linear(sig));
        }
    }

    #[test]
    fn attached_metrics_count_paths_and_preserve_output() {
        let plain = rc_engine(Some(2));
        let mut metered = rc_engine(Some(2));
        let registry = crate::obs::MetricsRegistry::new();
        metered.set_metrics(EngineMetrics::from_registry(&registry));
        let sig = Signature::new(vec![1.0, -2.0]);
        assert_eq!(plain.diagnose(&sig), metered.diagnose(&sig));
        assert_eq!(plain.diagnose_linear(&sig), metered.diagnose_linear(&sig));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine_diagnose_indexed_total"), Some(1));
        assert_eq!(snap.counter("engine_diagnose_linear_total"), Some(1));
        assert_eq!(
            snap.histogram("engine_diagnose_latency_us").unwrap().count,
            2
        );
    }

    #[test]
    fn topk_engine_keeps_rank1_and_ambiguity_set() {
        let full = rc_engine(Some(2));
        let mut topk = rc_engine(Some(2));
        topk.config.topk = Some(1);
        let registry = crate::obs::MetricsRegistry::new();
        topk.set_metrics(EngineMetrics::from_registry(&registry));
        let mut rng = StdRng::seed_from_u64(21);
        let sigs: Vec<Signature> = (0..30)
            .map(|_| Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]))
            .collect();
        let batched_full = full.diagnose_batch(&sigs);
        let batched_topk = topk.diagnose_batch(&sigs);
        for ((sig, f), t) in sigs.iter().zip(&batched_full).zip(&batched_topk) {
            assert_eq!(f.best(), t.best(), "rank-1 drift at {sig}");
            assert_eq!(f.ambiguity_set(), t.ambiguity_set());
            assert_eq!(
                t.candidates(),
                &f.candidates()[..t.candidates().len()],
                "top-k is not a prefix at {sig}"
            );
            // Single-query path agrees with the batch.
            assert_eq!(&topk.diagnose(sig), t);
            assert_eq!(&full.diagnose_topk(sig, 1), t);
        }
        // The index counters flowed through EngineMetrics.
        let snap = registry.snapshot();
        assert!(snap.counter("engine_index_nodes_visited_total").unwrap() > 0);
        assert!(
            snap.counter("engine_index_segments_examined_total")
                .unwrap()
                > 0
        );
        // Only the single-query loop above counts here: batch accounting
        // lives in the pool layer, matching the full-ranking path.
        assert_eq!(
            snap.counter("engine_diagnose_indexed_total"),
            Some(sigs.len() as u64)
        );
    }

    #[test]
    fn batch_topk_helper_matches_single_calls() {
        let engine = rc_engine(Some(3));
        let mut rng = StdRng::seed_from_u64(22);
        let sigs: Vec<Signature> = (0..17)
            .map(|_| Signature::new(vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)]))
            .collect();
        let diagnoser = Diagnoser::new(engine.trajectory_set().clone(), engine.config().diagnoser);
        let batched = diagnose_batch_topk_with(&diagnoser, engine.index(), &sigs, 2, Some(3));
        assert_eq!(batched.len(), sigs.len());
        for (sig, got) in sigs.iter().zip(&batched) {
            assert_eq!(&engine.diagnose_topk(sig, 2), got);
        }
        assert!(diagnose_batch_topk_with(&diagnoser, engine.index(), &[], 2, None).is_empty());
    }

    #[test]
    fn engine_over_synthetic_bank_is_exact() {
        let set = synthetic_trajectory_set(24, 6, 2, 99);
        let idx = SegmentIndex::build(&set);
        let diag = Diagnoser::new(set, DiagnoserConfig::default());
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..40 {
            let sig = Signature::new(vec![rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)]);
            assert_eq!(diag.diagnose(&sig), diag.diagnose_with(&idx, &sig));
        }
    }
}
