//! The network serving tier: a non-blocking TCP front over the
//! [`ServeHandle`] pool, plus the matching load-generator client.
//!
//! The server is a single-threaded readiness loop — `epoll(7)` on
//! Linux, `poll(2)` on other unixes, both hand-rolled over raw
//! `extern "C"` syscalls the way [`crate::mmap`] wraps `mmap(2)` (the
//! vendored environment has no libc crate) — that owns every socket and
//! feeds decoded requests into the existing worker pool. Workers wake
//! the loop back through a self-pipe (see [`ServeHandle::with_notifier`]),
//! so the loop never blocks on anything but the poller.
//!
//! ## Wire protocol
//!
//! Length-prefixed binary frames, reusing the bank codec primitives
//! ([`Encoder`]/[`Decoder`] payloads, FNV-1a checksums):
//!
//! ```text
//! +--------+----------+------------------+------------------+
//! | kind   | len      | checksum         | payload          |
//! | u16 LE | u32 LE   | u64 LE FNV-1a    | len bytes        |
//! +--------+----------+------------------+------------------+
//! ```
//!
//! The checksum covers `kind ‖ len ‖ payload`, so a corrupted kind or
//! length never masquerades as a different valid frame. Payloads are
//! codec payloads: requests carry `str cut_id` + `[f64] signature`,
//! responses carry a status byte + the **exact serve output line** the
//! stdin front-end would print — which is what makes TCP responses
//! byte-identical to `ftd serve` and `ftd diagnose --requests` (the CI
//! `cmp` oracle).
//!
//! ## Flow control
//!
//! Responses go back in request order per connection (pipelining).
//! Each connection has a bounded in-flight budget and a write-buffer
//! high-water mark; crossing either deregisters read interest until the
//! pool and the peer catch up, so a slow reader costs bounded memory,
//! never an OOM. On shutdown (signal or [`ShutdownHandle::shutdown`])
//! the listener closes first, in-flight requests finish, responses
//! flush, and only then do connections close — bounded by
//! [`NetConfig::drain_deadline`].
//!
//! [`Encoder`]: crate::codec::Encoder
//! [`Decoder`]: crate::codec::Decoder

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::codec::{checksum_parts, CodecError, Decoder, Encoder};
use crate::obs::{MetricsRegistry, NetMetrics};
use crate::pool::{ServeHandle, ServeResult};
use crate::store::{BankStore, DiagnosisRequest};
use ft_core::Signature;

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Bytes in a frame header: `u16` kind + `u32` payload length + `u64`
/// FNV-1a checksum over `kind ‖ len ‖ payload`.
pub const FRAME_HEADER_LEN: usize = 14;

/// Hard per-frame payload cap (1 MiB): anything larger is rejected from
/// the header alone, before buffering a body.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Client → server: one diagnosis request (`str` CUT id + `[f64]`
/// signature coordinates, both in codec payload encoding).
pub const FRAME_REQUEST: u16 = 1;
/// Server → client: one diagnosis response — a status byte (0 ok,
/// 1 error) plus the exact tab-separated serve output line.
pub const FRAME_RESPONSE: u16 = 2;
/// Client → server: asks for a stats frame (empty payload).
pub const FRAME_STATS_REQUEST: u16 = 3;
/// Server → client: Prometheus text exposition of the live registry.
pub const FRAME_STATS: u16 = 4;
/// Server → client: terminal protocol-error report (`str` message);
/// the server closes the connection after flushing it.
pub const FRAME_ERROR: u16 = 5;

/// Human-readable name for a frame kind (`"unknown"` for anything
/// outside the protocol) — used in error attribution and metrics.
pub fn frame_name(kind: u16) -> &'static str {
    match kind {
        FRAME_REQUEST => "request",
        FRAME_RESPONSE => "response",
        FRAME_STATS_REQUEST => "stats-request",
        FRAME_STATS => "stats",
        FRAME_ERROR => "error",
        _ => "unknown",
    }
}

fn frame_checksum(kind: u16, len: u32, payload: &[u8]) -> u64 {
    checksum_parts(&[&kind.to_le_bytes(), &len.to_le_bytes(), payload])
}

/// Encodes one frame (header + payload). Panics if `payload` exceeds
/// [`MAX_FRAME_PAYLOAD`] — callers control payload sizes.
pub fn encode_frame(kind: u16, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD as usize,
        "frame payload over the wire cap"
    );
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame_checksum(kind, len, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One whole decoded frame: `(kind, payload, consumed)` — the caller
/// drops `consumed` bytes off the front of its read buffer.
pub type DecodedFrame<'a> = (u16, &'a [u8], usize);

/// Tries to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds a valid prefix; read more bytes.
/// * `Ok(Some((kind, payload, consumed)))` — one whole frame; the
///   caller drops `consumed` bytes off the front.
/// * `Err((kind, error))` — the stream is corrupt at the front; `kind`
///   is whatever the (possibly corrupt) header claimed, for
///   attribution. The connection cannot be resynchronized.
///
/// # Errors
///
/// Returns the claimed frame kind plus a [`FrameError`] when the front
/// of `buf` is not a valid frame (oversized length, checksum mismatch,
/// or unknown kind).
pub fn decode_frame(buf: &[u8]) -> Result<Option<DecodedFrame<'_>>, (u16, FrameError)> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let kind = u16::from_le_bytes([buf[0], buf[1]]);
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]);
    if len > MAX_FRAME_PAYLOAD {
        return Err((
            kind,
            FrameError::Oversized {
                len,
                max: MAX_FRAME_PAYLOAD,
            },
        ));
    }
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let stored = u64::from_le_bytes(buf[6..14].try_into().expect("8 header bytes"));
    let payload = &buf[FRAME_HEADER_LEN..total];
    let computed = frame_checksum(kind, len, payload);
    if stored != computed {
        return Err((kind, FrameError::ChecksumMismatch { stored, computed }));
    }
    if !(FRAME_REQUEST..=FRAME_ERROR).contains(&kind) {
        return Err((kind, FrameError::UnknownKind(kind)));
    }
    Ok(Some((kind, payload, total)))
}

/// Encodes a diagnosis request frame.
pub fn encode_request(request: &DiagnosisRequest) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_str(&request.cut_id);
    enc.put_f64s(request.signature.coords());
    encode_frame(FRAME_REQUEST, &enc.into_payload())
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// [`FrameError::Malformed`] with the underlying [`CodecError`] text.
pub fn decode_request(payload: &[u8]) -> Result<DiagnosisRequest, FrameError> {
    let mut dec = Decoder::over(payload);
    let inner = |e: CodecError| FrameError::Malformed(e.to_string());
    let cut_id = dec.get_str().map_err(inner)?;
    let coords = dec.get_f64s().map_err(inner)?;
    dec.finish().map_err(inner)?;
    Ok(DiagnosisRequest::new(cut_id, Signature::new(coords)))
}

/// Appended in place of whatever [`clip_text`] cut off.
const TRUNCATION_MARK: &str = "\n# truncated to fit the frame cap\n";

/// Clips `text` to at most `max` bytes (on a char boundary), replacing
/// the tail with [`TRUNCATION_MARK`] when anything was cut. Server
/// frame payloads echo peer-controlled input (a response line carries
/// the request's CUT id) or grow with registry contents (the stats
/// exposition), so every server-side encode path clips rather than
/// trusting itself to stay under [`MAX_FRAME_PAYLOAD`] — an oversized
/// body must degrade, never hit the [`encode_frame`] cap and panic the
/// event loop.
fn clip_text(text: &str, max: usize) -> Cow<'_, str> {
    if text.len() <= max {
        return Cow::Borrowed(text);
    }
    let mut end = max - TRUNCATION_MARK.len();
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    Cow::Owned(format!("{}{}", &text[..end], TRUNCATION_MARK))
}

/// Encodes a response frame: status byte (0 ok, 1 error) + the serve
/// output line (clipped via [`clip_text`] in the pathological case of
/// a line that would overflow the frame cap).
pub fn encode_response(line: &str, is_error: bool) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(u8::from(is_error));
    // Payload overhead: 1 status byte + 4-byte string length prefix.
    enc.put_str(&clip_text(line, MAX_FRAME_PAYLOAD as usize - 5));
    encode_frame(FRAME_RESPONSE, &enc.into_payload())
}

/// Decodes a response frame payload into `(is_error, line)`.
///
/// # Errors
///
/// [`FrameError::Malformed`] with the underlying [`CodecError`] text.
pub fn decode_response(payload: &[u8]) -> Result<(bool, String), FrameError> {
    let mut dec = Decoder::over(payload);
    let inner = |e: CodecError| FrameError::Malformed(e.to_string());
    let status = dec.get_u8().map_err(inner)?;
    let line = dec.get_str().map_err(inner)?;
    dec.finish().map_err(inner)?;
    Ok((status != 0, line))
}

/// Encodes a single-string frame ([`FRAME_STATS`] or [`FRAME_ERROR`]).
/// Oversized text — a Prometheus snapshot can outgrow the wire cap —
/// is clipped via [`clip_text`] instead of panicking.
pub fn encode_text_frame(kind: u16, text: &str) -> Vec<u8> {
    let mut enc = Encoder::new();
    // Payload overhead: the 4-byte string length prefix.
    enc.put_str(&clip_text(text, MAX_FRAME_PAYLOAD as usize - 4));
    encode_frame(kind, &enc.into_payload())
}

/// Decodes a single-string frame payload.
///
/// # Errors
///
/// [`FrameError::Malformed`] with the underlying [`CodecError`] text.
pub fn decode_text_frame(payload: &[u8]) -> Result<String, FrameError> {
    let mut dec = Decoder::over(payload);
    let inner = |e: CodecError| FrameError::Malformed(e.to_string());
    let text = dec.get_str().map_err(inner)?;
    dec.finish().map_err(inner)?;
    Ok(text)
}

/// Renders the serve output line for one pool result — **the** line the
/// stdin front-end prints for the same request, byte for byte: the TCP
/// tier, `ftd loadgen --out`, and the integration tests all route
/// through this one function so the byte-identity oracle has a single
/// source of truth.
pub fn response_line(cut_id: &str, result: &ServeResult) -> String {
    match result {
        Ok(diagnosis) => crate::cli::render_diagnosis_line(cut_id, diagnosis),
        Err(e) => format!("{cut_id}\terror\t{e}"),
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header claims a payload over the wire cap.
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// The cap ([`MAX_FRAME_PAYLOAD`]).
        max: u32,
    },
    /// The kind tag is outside the protocol.
    UnknownKind(u16),
    /// The stored checksum does not match the frame bytes.
    ChecksumMismatch {
        /// Checksum carried in the header.
        stored: u64,
        /// Checksum computed over `kind ‖ len ‖ payload`.
        computed: u64,
    },
    /// The frame decoded but its payload did not (codec error text),
    /// or a structurally valid frame arrived in the wrong direction.
    Malformed(String),
}

impl FrameError {
    /// Stable short label for metrics
    /// (`net_protocol_errors_total{kind=…}`).
    pub fn label(&self) -> &'static str {
        match self {
            FrameError::Oversized { .. } => "oversized",
            FrameError::UnknownKind(_) => "unknown-kind",
            FrameError::ChecksumMismatch { .. } => "checksum",
            FrameError::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            FrameError::Malformed(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Errors surfaced by the network tier, attributed the way
/// [`CodecError`] attributes bank failures: protocol errors name the
/// peer address and the frame kind they arrived in.
#[derive(Debug)]
pub enum NetError {
    /// An OS-level failure, with what the tier was doing at the time.
    Io {
        /// What was being attempted (`"bind"`, `"poll wait"`, …).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A peer sent bytes that are not a valid frame.
    Protocol {
        /// The peer's socket address.
        peer: String,
        /// Frame-kind name the corrupt bytes claimed (or arrived in).
        frame: &'static str,
        /// What was wrong with them.
        error: FrameError,
    },
}

impl NetError {
    fn io(context: impl Into<String>) -> impl FnOnce(io::Error) -> NetError {
        let context = context.into();
        move |source| NetError::Io { context, source }
    }

    /// Stable short label for metrics: the frame-error label, or
    /// `"io"`.
    pub fn kind_label(&self) -> &'static str {
        match self {
            NetError::Io { .. } => "io",
            NetError::Protocol { error, .. } => error.label(),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "{context}: {source}"),
            NetError::Protocol { peer, frame, error } => {
                write!(f, "peer {peer}: bad {frame} frame: {error}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Protocol { error, .. } => Some(error),
        }
    }
}

// ---------------------------------------------------------------------
// Raw syscalls (no libc crate in the vendored environment)
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const POLLNVAL: i16 = 0x20;

    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x4;

    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::os::raw::c_int;

        // The kernel ABI packs the struct on x86_64 only.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;
        pub const EPOLLRDHUP: u32 = 0x2000;
    }
}

// ---------------------------------------------------------------------
// Poller: epoll on Linux, poll(2) elsewhere (both backends compile and
// are tested on Linux so the fallback cannot rot)
// ---------------------------------------------------------------------

#[cfg(unix)]
pub(crate) use poller::{Event, Poller};

#[cfg(unix)]
mod poller {
    use super::sys;
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// One readiness report from [`Poller::wait`].
    pub(crate) struct Event {
        pub token: u64,
        pub readable: bool,
        pub writable: bool,
    }

    /// Readiness poller over raw fds, keyed by caller tokens.
    pub(crate) struct Poller {
        backend: Backend,
    }

    enum Backend {
        #[cfg(target_os = "linux")]
        Epoll(EpollFd),
        // On Linux the poll backend is only constructed by tests (it is
        // the production backend everywhere else).
        #[cfg_attr(target_os = "linux", allow(dead_code))]
        Poll(Vec<Entry>),
    }

    #[cfg(target_os = "linux")]
    struct EpollFd(RawFd);

    #[cfg(target_os = "linux")]
    impl Drop for EpollFd {
        fn drop(&mut self) {
            unsafe { sys::close(self.0) };
        }
    }

    struct Entry {
        fd: RawFd,
        token: u64,
        read: bool,
        write: bool,
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Millisecond timeout for poll/epoll: `None` blocks forever; a
    /// sub-millisecond remainder rounds **up** so a pending timer never
    /// busy-spins.
    fn timeout_ms(timeout: Option<Duration>) -> c_int {
        match timeout {
            None => -1,
            Some(d) => {
                d.as_millis().min(i32::MAX as u128) as c_int
                    + c_int::from(
                        d.subsec_nanos() % 1_000_000 != 0 && d.as_millis() < i32::MAX as u128,
                    )
            }
        }
    }

    impl Poller {
        /// The platform's best backend: epoll on Linux, poll elsewhere.
        pub fn new() -> io::Result<Poller> {
            #[cfg(target_os = "linux")]
            {
                let epfd = check(unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) })?;
                Ok(Poller {
                    backend: Backend::Epoll(EpollFd(epfd)),
                })
            }
            #[cfg(not(target_os = "linux"))]
            {
                Poller::poll_backend()
            }
        }

        /// Forces the portable `poll(2)` backend — exercised by tests
        /// on Linux too, so the non-Linux path stays correct.
        #[cfg_attr(target_os = "linux", allow(dead_code))]
        pub fn poll_backend() -> io::Result<Poller> {
            Ok(Poller {
                backend: Backend::Poll(Vec::new()),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(ep) => {
                    epoll_ctl(ep.0, sys::epoll::EPOLL_CTL_ADD, fd, token, read, write)
                }
                Backend::Poll(entries) => {
                    entries.retain(|e| e.fd != fd);
                    entries.push(Entry {
                        fd,
                        token,
                        read,
                        write,
                    });
                    Ok(())
                }
            }
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(ep) => {
                    epoll_ctl(ep.0, sys::epoll::EPOLL_CTL_MOD, fd, token, read, write)
                }
                Backend::Poll(entries) => {
                    for e in entries.iter_mut() {
                        if e.fd == fd {
                            e.token = token;
                            e.read = read;
                            e.write = write;
                        }
                    }
                    Ok(())
                }
            }
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(ep) => {
                    let mut ev = sys::epoll::EpollEvent { events: 0, data: 0 };
                    check(unsafe {
                        sys::epoll::epoll_ctl(ep.0, sys::epoll::EPOLL_CTL_DEL, fd, &mut ev)
                    })
                    .map(|_| ())
                }
                Backend::Poll(entries) => {
                    entries.retain(|e| e.fd != fd);
                    Ok(())
                }
            }
        }

        /// Waits for readiness, filling `out` (cleared first). A signal
        /// interruption reports zero events instead of an error, so the
        /// caller re-checks its shutdown flag.
        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let ms = timeout_ms(timeout);
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(ep) => {
                    let mut events = [sys::epoll::EpollEvent { events: 0, data: 0 }; 256];
                    let n = unsafe {
                        sys::epoll::epoll_wait(ep.0, events.as_mut_ptr(), events.len() as c_int, ms)
                    };
                    if n < 0 {
                        let err = io::Error::last_os_error();
                        if err.kind() == io::ErrorKind::Interrupted {
                            return Ok(());
                        }
                        return Err(err);
                    }
                    for ev in events.iter().take(n as usize) {
                        let bits = ev.events;
                        out.push(Event {
                            token: ev.data,
                            readable: bits
                                & (sys::epoll::EPOLLIN
                                    | sys::epoll::EPOLLERR
                                    | sys::epoll::EPOLLHUP
                                    | sys::epoll::EPOLLRDHUP)
                                != 0,
                            writable: bits & (sys::epoll::EPOLLOUT | sys::epoll::EPOLLERR) != 0,
                        });
                    }
                    Ok(())
                }
                Backend::Poll(entries) => {
                    let mut fds: Vec<sys::PollFd> = entries
                        .iter()
                        .map(|e| sys::PollFd {
                            fd: e.fd,
                            events: if e.read { sys::POLLIN } else { 0 }
                                | if e.write { sys::POLLOUT } else { 0 },
                            revents: 0,
                        })
                        .collect();
                    let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
                    if n < 0 {
                        let err = io::Error::last_os_error();
                        if err.kind() == io::ErrorKind::Interrupted {
                            return Ok(());
                        }
                        return Err(err);
                    }
                    for (entry, fd) in entries.iter().zip(&fds) {
                        let bits = fd.revents;
                        if bits == 0 {
                            continue;
                        }
                        out.push(Event {
                            token: entry.token,
                            readable: bits
                                & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                                != 0,
                            writable: bits & (sys::POLLOUT | sys::POLLERR) != 0,
                        });
                    }
                    Ok(())
                }
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        token: u64,
        read: bool,
        write: bool,
    ) -> io::Result<()> {
        let mut ev = sys::epoll::EpollEvent {
            events: if read {
                sys::epoll::EPOLLIN | sys::epoll::EPOLLRDHUP
            } else {
                0
            } | if write { sys::epoll::EPOLLOUT } else { 0 },
            data: token,
        };
        check(unsafe { sys::epoll::epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }
}

/// A nonblocking self-pipe: the read end wakes the poller, the write
/// end is poked by pool workers and signal handlers.
#[cfg(unix)]
struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

#[cfg(unix)]
impl WakePipe {
    fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if unsafe { sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    sys::close(fds[0]);
                    sys::close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// Reads pending wake bytes off the pipe (level-triggered pollers
    /// re-report anything left behind).
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                break;
            }
        }
    }
}

#[cfg(unix)]
impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(unix)]
fn poke(fd: i32) {
    if fd >= 0 {
        let byte = [1u8];
        unsafe { sys::write(fd, byte.as_ptr().cast(), 1) };
    }
}

// ---------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ShutdownShared {
    flag: AtomicBool,
    /// The event loop's wake-pipe write fd once `run` starts; −1
    /// otherwise. Only ever poked (async-signal-safe `write(2)`).
    wake_fd: AtomicI32,
}

/// Requests a graceful drain of a running [`NetServer`] from any thread
/// (or signal handler): stop accepting, finish in-flight requests,
/// flush, close. Cloneable; all clones target the same server.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shared: Arc<ShutdownShared>,
}

impl ShutdownHandle {
    fn new() -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::new(ShutdownShared {
                flag: AtomicBool::new(false),
                wake_fd: AtomicI32::new(-1),
            }),
        }
    }

    /// Flips the drain flag and wakes the event loop. Safe to call
    /// repeatedly, from any thread, and from a signal handler (it only
    /// does an atomic store and a `write(2)`).
    pub fn shutdown(&self) {
        self.shared.flag.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        poke(self.shared.wake_fd.load(Ordering::SeqCst));
    }

    /// Whether a drain has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.flag.load(Ordering::SeqCst)
    }
}

#[cfg(unix)]
static SIGNAL_TARGET: std::sync::OnceLock<ShutdownHandle> = std::sync::OnceLock::new();

#[cfg(unix)]
extern "C" fn drain_on_signal(_sig: std::os::raw::c_int) {
    // Async-signal-safe: an atomic store and a write(2), nothing else.
    if let Some(handle) = SIGNAL_TARGET.get() {
        handle.shared.flag.store(true, Ordering::SeqCst);
        poke(handle.shared.wake_fd.load(Ordering::SeqCst));
    }
}

/// Installs SIGINT/SIGTERM handlers that trigger a graceful drain on
/// `handle`'s server — `kill -TERM` (or Ctrl-C) finishes in-flight
/// requests, flushes, and lets `ftd serve --listen` exit 0. First
/// installation wins for the life of the process. No-op off unix.
pub fn install_signal_drain(handle: &ShutdownHandle) {
    #[cfg(unix)]
    {
        let _ = SIGNAL_TARGET.set(handle.clone());
        unsafe {
            sys::signal(sys::SIGINT, drain_on_signal as *const () as usize);
            sys::signal(sys::SIGTERM, drain_on_signal as *const () as usize);
        }
    }
    #[cfg(not(unix))]
    {
        let _ = handle;
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Tunables for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Pool worker threads (at least 1).
    pub workers: usize,
    /// Per-connection in-flight request budget: parsing pauses (read
    /// interest drops) while this many responses are pending.
    pub max_inflight: usize,
    /// Per-connection unsent-bytes high-water mark with the same
    /// effect: a peer that stops reading stalls its own connection.
    pub write_highwater: usize,
    /// Period of the [`BankStore::refresh`] timer tick;
    /// [`Duration::ZERO`] disables the tick.
    pub refresh_interval: Duration,
    /// How long a graceful drain waits for connections to finish
    /// before force-closing them.
    pub drain_deadline: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_inflight: 128,
            write_highwater: 1 << 20,
            refresh_interval: Duration::from_secs(1),
            drain_deadline: Duration::from_secs(10),
        }
    }
}

/// What a finished [`NetServer::run`] saw.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests answered (including per-request error lines).
    pub served: u64,
    /// Answered requests that carried an error line.
    pub errors: u64,
    /// Frames that killed their connection (malformed / oversized /
    /// checksum-failed / misdirected).
    pub protocol_errors: u64,
}

/// The non-blocking TCP serving tier: one readiness loop over all
/// connections, feeding the [`ServeHandle`] pool.
///
/// ```no_run
/// use std::sync::Arc;
/// use ft_serve::{BankStore, EngineConfig, MetricsRegistry};
/// use ft_serve::net::{NetConfig, NetServer};
///
/// let store = Arc::new(BankStore::in_memory(EngineConfig::default()));
/// let registry = Arc::new(MetricsRegistry::new());
/// let server = NetServer::bind("127.0.0.1:0", store, &registry, NetConfig::default())?;
/// let shutdown = server.shutdown_handle(); // e.g. hand to a signal handler
/// let summary = server.run()?;             // blocks until drained
/// # let _ = (shutdown, summary);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct NetServer {
    listener: TcpListener,
    store: Arc<BankStore>,
    registry: Arc<MetricsRegistry>,
    config: NetConfig,
    shutdown: ShutdownHandle,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:4174"`; port 0 picks a free one).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<BankStore>,
        registry: &Arc<MetricsRegistry>,
        config: NetConfig,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(addr).map_err(NetError::io("bind"))?;
        Ok(NetServer {
            listener,
            store,
            registry: Arc::clone(registry),
            config,
            shutdown: ShutdownHandle::new(),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        self.listener
            .local_addr()
            .map_err(NetError::io("local addr"))
    }

    /// A handle that triggers a graceful drain of [`NetServer::run`].
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Runs the server until a drain completes; returns what it served.
    /// On unix this is the non-blocking readiness loop; elsewhere it
    /// falls back to [`NetServer::run_blocking`].
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on a fatal loop error (poller or listener —
    /// never an individual connection).
    pub fn run(self) -> Result<NetSummary, NetError> {
        #[cfg(unix)]
        {
            self.run_event_loop()
        }
        #[cfg(not(unix))]
        {
            self.run_blocking()
        }
    }

    #[cfg(unix)]
    fn run_event_loop(self) -> Result<NetSummary, NetError> {
        let NetServer {
            listener,
            store,
            registry,
            config,
            shutdown,
        } = self;
        use std::os::unix::io::AsRawFd;

        listener
            .set_nonblocking(true)
            .map_err(NetError::io("listener nonblock"))?;
        let wake = WakePipe::new().map_err(NetError::io("wake pipe"))?;
        shutdown
            .shared
            .wake_fd
            .store(wake.write_fd, Ordering::SeqCst);
        let metrics = registry
            .is_enabled()
            .then(|| NetMetrics::from_registry(&registry));
        let notify_fd = wake.write_fd;
        let handle = ServeHandle::with_notifier(
            Arc::clone(&store),
            config.workers,
            &registry,
            Arc::new(move || poke(notify_fd)),
        );

        let mut poller = Poller::new().map_err(NetError::io("poller"))?;
        let listener_fd = listener.as_raw_fd();
        poller
            .add(listener_fd, TOKEN_LISTENER, true, false)
            .map_err(NetError::io("register listener"))?;
        poller
            .add(wake.read_fd, TOKEN_WAKE, true, false)
            .map_err(NetError::io("register wake pipe"))?;

        let mut lp = EventLoop {
            poller,
            conns: HashMap::new(),
            submissions: VecDeque::new(),
            handle,
            registry: Arc::clone(&registry),
            metrics,
            config: config.clone(),
            next_token: FIRST_CONN_TOKEN,
            summary: NetSummary::default(),
        };
        let mut listener = Some(listener);
        let mut draining = false;
        let mut deadline: Option<Instant> = None;
        let mut next_refresh = (config.refresh_interval > Duration::ZERO)
            .then(|| Instant::now() + config.refresh_interval);
        let mut events: Vec<Event> = Vec::new();

        loop {
            if shutdown.is_shutdown() && !draining {
                draining = true;
                deadline = Some(Instant::now() + config.drain_deadline);
                next_refresh = None;
                if let Some(l) = listener.take() {
                    // Connections whose handshake already completed sit
                    // in the accept backlog; closing the listener would
                    // RST them. Adopt them into the drain first.
                    lp.accept_all(&l);
                    let _ = lp.poller.remove(l.as_raw_fd());
                    // Dropping closes the socket: no new connections.
                }
            }
            if draining && lp.conns.is_empty() {
                break;
            }

            let now = Instant::now();
            let mut timeout: Option<Duration> =
                next_refresh.map(|t| t.saturating_duration_since(now));
            if let Some(d) = deadline {
                let until = d.saturating_duration_since(now);
                timeout = Some(timeout.map_or(until, |t| t.min(until)));
            }
            lp.poller
                .wait(timeout, &mut events)
                .map_err(NetError::io("poll wait"))?;

            let mut touched: Vec<u64> = Vec::new();
            for ev in &events {
                match ev.token {
                    TOKEN_WAKE => wake.drain(),
                    TOKEN_LISTENER => {
                        if let Some(l) = &listener {
                            lp.accept_all(l);
                        }
                    }
                    token => {
                        if let Some(conn) = lp.conns.get_mut(&token) {
                            if ev.readable {
                                read_into(conn, &lp.metrics);
                            }
                            let _ = ev.writable; // pump retries the write either way
                            touched.push(token);
                        }
                    }
                }
            }
            touched.extend(lp.absorb_completions());
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                lp.pump(token);
            }

            if let Some(t) = next_refresh {
                if Instant::now() >= t {
                    lp.handle.store().refresh();
                    if let Some(m) = &lp.metrics {
                        m.refresh_ticks.inc();
                    }
                    next_refresh = Some(Instant::now() + config.refresh_interval);
                }
            }
            if draining {
                if let Some(d) = deadline {
                    if Instant::now() >= d && !lp.conns.is_empty() {
                        let stragglers: Vec<u64> = lp.conns.keys().copied().collect();
                        for token in stragglers {
                            lp.close_conn(token);
                        }
                    }
                }
            }
        }

        let EventLoop {
            handle, summary, ..
        } = lp;
        drop(handle); // joins the workers (discarding any orphaned runs)
        shutdown.shared.wake_fd.store(-1, Ordering::SeqCst);
        Ok(summary)
    }

    /// Portable blocking fallback: one thread per connection, requests
    /// served in arrival order straight off the store. Same protocol,
    /// same response bytes, same drain semantics (stop accepting,
    /// connections finish when their peer half-closes, stragglers are
    /// force-closed once [`NetConfig::drain_deadline`] passes) — used
    /// as [`NetServer::run`] off unix, and kept compiled and tested
    /// everywhere so it cannot rot.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the listener breaks.
    pub fn run_blocking(self) -> Result<NetSummary, NetError> {
        let NetServer {
            listener,
            store,
            registry,
            config,
            shutdown,
        } = self;
        listener
            .set_nonblocking(true)
            .map_err(NetError::io("listener nonblock"))?;
        let metrics = registry
            .is_enabled()
            .then(|| NetMetrics::from_registry(&registry));
        let counters = Arc::new(BlockingCounters::default());
        // Clones of every live accepted stream, so the drain watchdog
        // can `shutdown(Both)` stragglers (which unblocks their
        // connection thread's read/write); each thread removes its own
        // entry on exit so the registry doesn't grow with server age.
        let tracked: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        let mut accepted = 0u64;
        let mut next_refresh = (config.refresh_interval > Duration::ZERO)
            .then(|| Instant::now() + config.refresh_interval);
        while !shutdown.is_shutdown() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    accepted += 1;
                    if let Some(m) = &metrics {
                        m.accepted.inc();
                        m.active_connections.add(1);
                    }
                    let id = accepted;
                    if let Ok(clone) = stream.try_clone() {
                        lock_tracked(&tracked).push((id, clone));
                    }
                    let store = Arc::clone(&store);
                    let registry = Arc::clone(&registry);
                    let metrics = metrics.clone();
                    let counters = Arc::clone(&counters);
                    let tracked = Arc::clone(&tracked);
                    joins.push(std::thread::spawn(move || {
                        serve_blocking(
                            stream,
                            peer.to_string(),
                            store,
                            registry,
                            metrics,
                            counters,
                        );
                        lock_tracked(&tracked).retain(|(tid, _)| *tid != id);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(NetError::Io {
                        context: "accept".into(),
                        source: e,
                    })
                }
            }
            if let Some(t) = next_refresh {
                if Instant::now() >= t {
                    store.refresh();
                    if let Some(m) = &metrics {
                        m.refresh_ticks.inc();
                    }
                    next_refresh = Some(Instant::now() + config.refresh_interval);
                }
            }
        }
        drop(listener);
        // Honor the drain deadline (the analog of the event loop's
        // force-close): a watchdog shuts down every still-tracked
        // stream once it passes, so an idle connected peer cannot
        // block shutdown indefinitely.
        let drained = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let tracked = Arc::clone(&tracked);
            let drained = Arc::clone(&drained);
            let deadline = Instant::now() + config.drain_deadline;
            std::thread::spawn(move || {
                while !drained.load(Ordering::SeqCst) {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        for (_, stream) in lock_tracked(&tracked).iter() {
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                        return;
                    }
                    std::thread::sleep(left.min(Duration::from_millis(20)));
                }
            })
        };
        for join in joins {
            let _ = join.join();
        }
        drained.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        Ok(NetSummary {
            accepted,
            served: counters.served.load(Ordering::SeqCst),
            errors: counters.errors.load(Ordering::SeqCst),
            protocol_errors: counters.protocol_errors.load(Ordering::SeqCst),
        })
    }
}

/// Locks the blocking tier's stream registry, recovering from
/// poisoning the same way the metrics registry does (the state is just
/// a list of fds; a panicked holder leaves it usable).
fn lock_tracked(
    tracked: &Mutex<Vec<(u64, TcpStream)>>,
) -> std::sync::MutexGuard<'_, Vec<(u64, TcpStream)>> {
    tracked
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Default)]
struct BlockingCounters {
    served: AtomicU64,
    errors: AtomicU64,
    protocol_errors: AtomicU64,
}

/// One blocking connection: decode → diagnose → respond, in order.
fn serve_blocking(
    mut stream: TcpStream,
    peer: String,
    store: Arc<BankStore>,
    registry: Arc<MetricsRegistry>,
    metrics: Option<NetMetrics>,
    counters: Arc<BlockingCounters>,
) {
    let _ = stream.set_nodelay(true);
    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        loop {
            let (kind, payload, consumed) = match decode_frame(&rbuf) {
                Ok(None) => break,
                Ok(Some((kind, payload, consumed))) => (kind, payload.to_vec(), consumed),
                Err((kind, error)) => {
                    report_protocol_error(&peer, frame_name(kind), &error, &metrics);
                    counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    let _ = stream.write_all(&encode_text_frame(FRAME_ERROR, &error.to_string()));
                    break 'conn;
                }
            };
            rbuf.drain(..consumed);
            let started = Instant::now();
            let reply = match kind {
                FRAME_REQUEST => match decode_request(&payload) {
                    Ok(request) => {
                        if let Some(m) = &metrics {
                            m.requests.inc();
                        }
                        let result = store.diagnose(&request);
                        counters.served.fetch_add(1, Ordering::SeqCst);
                        if result.is_err() {
                            counters.errors.fetch_add(1, Ordering::SeqCst);
                        }
                        encode_response(&response_line(&request.cut_id, &result), result.is_err())
                    }
                    Err(error) => {
                        report_protocol_error(&peer, "request", &error, &metrics);
                        counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                        let _ =
                            stream.write_all(&encode_text_frame(FRAME_ERROR, &error.to_string()));
                        break 'conn;
                    }
                },
                FRAME_STATS_REQUEST => {
                    encode_text_frame(FRAME_STATS, &registry.snapshot().to_prometheus())
                }
                other => {
                    let error =
                        FrameError::Malformed(format!("unexpected {} frame", frame_name(other)));
                    report_protocol_error(&peer, frame_name(other), &error, &metrics);
                    counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    let _ = stream.write_all(&encode_text_frame(FRAME_ERROR, &error.to_string()));
                    break 'conn;
                }
            };
            if stream.write_all(&reply).is_err() {
                break 'conn;
            }
            if let Some(m) = &metrics {
                m.bytes_out.add(reply.len() as u64);
                if kind == FRAME_REQUEST {
                    m.wire_latency
                        .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                rbuf.extend_from_slice(&chunk[..n]);
                if let Some(m) = &metrics {
                    m.bytes_in.add(n as u64);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(m) = &metrics {
        m.closed.inc();
        m.active_connections.sub(1);
    }
}

fn report_protocol_error(
    peer: &str,
    frame: &'static str,
    error: &FrameError,
    metrics: &Option<NetMetrics>,
) {
    let err = NetError::Protocol {
        peer: peer.to_string(),
        frame,
        error: error.clone(),
    };
    eprintln!("ftd net: {err}");
    if let Some(m) = metrics {
        m.record_protocol_error(peer, err.kind_label());
    }
}

// ---------------------------------------------------------------------
// Event loop internals (unix)
// ---------------------------------------------------------------------

#[cfg(unix)]
const TOKEN_LISTENER: u64 = 0;
#[cfg(unix)]
const TOKEN_WAKE: u64 = 1;
#[cfg(unix)]
const FIRST_CONN_TOKEN: u64 = 2;

/// One queued reply slot. Replies leave in queue order; a diagnosis
/// slot's body arrives when its pool batch completes, a stats or error
/// slot is born with its body.
#[cfg(unix)]
struct Reply {
    received: Instant,
    body: Option<Vec<u8>>,
    /// Whether this reply samples the wire-latency histogram — true
    /// only for diagnosis requests, so stats and error frames never
    /// skew `net_request_wire_us`.
    measure: bool,
}

#[cfg(unix)]
struct Conn {
    stream: TcpStream,
    fd: std::os::unix::io::RawFd,
    token: u64,
    peer: String,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    queue: VecDeque<Reply>,
    /// Peer half-closed (or a protocol error poisoned the stream):
    /// stop reading, finish pending replies, flush, close.
    read_closed: bool,
    /// Fatal socket error: close as soon as control returns.
    dead: bool,
    /// Read interest dropped under backpressure.
    stalled: bool,
    want_read: bool,
    want_write: bool,
}

#[cfg(unix)]
impl Conn {
    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn finished(&self) -> bool {
        self.dead || (self.read_closed && self.queue.is_empty() && self.unsent() == 0)
    }
}

/// One pool submission's bookkeeping: which connection it came from and
/// the CUT id of each request, in order (needed to render lines).
#[cfg(unix)]
struct Submission {
    conn: u64,
    cuts: Vec<String>,
}

#[cfg(unix)]
struct EventLoop {
    poller: Poller,
    conns: HashMap<u64, Conn>,
    submissions: VecDeque<Submission>,
    handle: ServeHandle,
    registry: Arc<MetricsRegistry>,
    metrics: Option<NetMetrics>,
    config: NetConfig,
    next_token: u64,
    summary: NetSummary,
}

#[cfg(unix)]
impl EventLoop {
    fn accept_all(&mut self, listener: &TcpListener) {
        use std::os::unix::io::AsRawFd;
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(fd, token, true, false).is_err() {
                        continue; // dropping the stream closes it
                    }
                    self.summary.accepted += 1;
                    if let Some(m) = &self.metrics {
                        m.accepted.inc();
                        m.active_connections.add(1);
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            fd,
                            token,
                            peer: peer.to_string(),
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            queue: VecDeque::new(),
                            read_closed: false,
                            dead: false,
                            stalled: false,
                            want_read: true,
                            want_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // transient (EMFILE, reset mid-accept, …)
            }
        }
    }

    /// Collects every completed pool batch into its connection's reply
    /// queue; returns the touched connection tokens.
    fn absorb_completions(&mut self) -> Vec<u64> {
        let mut touched = Vec::new();
        while let Some(results) = self.handle.try_drain_one() {
            let sub = self
                .submissions
                .pop_front()
                .expect("one submission per pool batch");
            self.summary.served += results.len() as u64;
            self.summary.errors += results.iter().filter(|r| r.is_err()).count() as u64;
            if let Some(conn) = self.conns.get_mut(&sub.conn) {
                fill_replies(conn, &sub.cuts, &results);
                touched.push(sub.conn);
            }
            // A closed connection's results are simply dropped.
        }
        touched
    }

    /// Makes all progress possible on one connection: parse newly read
    /// frames (submitting a pool batch), move completed replies to the
    /// write buffer, write, and either close or update poller interest.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let before = (conn.rbuf.len(), conn.queue.len(), conn.unsent());
            let mut batch = Vec::new();
            let mut cuts = Vec::new();
            self.summary.protocol_errors += parse_frames(
                conn,
                &self.config,
                &self.registry,
                &self.metrics,
                &mut batch,
                &mut cuts,
            );
            flush_ready(conn, &self.metrics);
            write_some(conn, &self.metrics);
            let progressed = (conn.rbuf.len(), conn.queue.len(), conn.unsent()) != before;
            if !batch.is_empty() {
                self.handle.submit(batch);
                self.submissions.push_back(Submission { conn: token, cuts });
            }
            if !progressed {
                break;
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.finished() {
            self.close_conn(token);
        } else {
            update_interest(conn, &mut self.poller, &self.metrics, &self.config);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(conn.fd);
            if let Some(m) = &self.metrics {
                m.closed.inc();
                m.active_connections.sub(1);
            }
            // Dropping the stream closes the socket.
        }
    }
}

/// Reads everything currently available off the socket.
#[cfg(unix)]
fn read_into(conn: &mut Conn, metrics: &Option<NetMetrics>) {
    if conn.read_closed || conn.dead {
        return;
    }
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if let Some(m) = metrics {
                    m.bytes_in.add(n as u64);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Decodes complete frames off `conn.rbuf` up to the in-flight budget.
/// Requests go into `batch`/`cuts`; stats requests answer immediately
/// in-order; a corrupt frame queues a terminal error reply and poisons
/// the read side. Returns how many protocol errors occurred (0 or 1).
#[cfg(unix)]
fn parse_frames(
    conn: &mut Conn,
    config: &NetConfig,
    registry: &MetricsRegistry,
    metrics: &Option<NetMetrics>,
    batch: &mut Vec<DiagnosisRequest>,
    cuts: &mut Vec<String>,
) -> u64 {
    let mut consumed = 0usize;
    let failure = loop {
        // EOF does not gate parsing: bytes already buffered at
        // half-close are complete, valid requests and must be answered
        // (an unfinished trailing frame is simply abandoned).
        if conn.dead || conn.queue.len() >= config.max_inflight {
            break None;
        }
        enum Parsed {
            Request(DiagnosisRequest),
            Stats,
        }
        let step: Result<(Parsed, usize), (&'static str, FrameError)> =
            match decode_frame(&conn.rbuf[consumed..]) {
                Ok(None) => break None,
                Ok(Some((FRAME_REQUEST, payload, used))) => match decode_request(payload) {
                    Ok(request) => Ok((Parsed::Request(request), used)),
                    Err(error) => Err(("request", error)),
                },
                Ok(Some((FRAME_STATS_REQUEST, _, used))) => Ok((Parsed::Stats, used)),
                Ok(Some((other, _, _))) => Err((
                    frame_name(other),
                    FrameError::Malformed(format!("unexpected {} frame", frame_name(other))),
                )),
                Err((kind, error)) => Err((frame_name(kind), error)),
            };
        match step {
            Ok((parsed, used)) => {
                consumed += used;
                match parsed {
                    Parsed::Request(request) => {
                        if let Some(m) = metrics {
                            m.requests.inc();
                        }
                        cuts.push(request.cut_id.clone());
                        batch.push(request);
                        conn.queue.push_back(Reply {
                            received: Instant::now(),
                            body: None,
                            measure: true,
                        });
                    }
                    Parsed::Stats => {
                        let text = registry.snapshot().to_prometheus();
                        conn.queue.push_back(Reply {
                            received: Instant::now(),
                            body: Some(encode_text_frame(FRAME_STATS, &text)),
                            measure: false,
                        });
                    }
                }
            }
            Err((frame, error)) => break Some((frame, error)),
        }
    };
    if let Some((frame, error)) = failure {
        report_protocol_error(&conn.peer, frame, &error, metrics);
        // Terminal reply queued *behind* anything already accepted:
        // earlier requests on this connection still answer, then the
        // error flushes and the connection closes. One bad frame never
        // touches any other connection.
        conn.queue.push_back(Reply {
            received: Instant::now(),
            body: Some(encode_text_frame(FRAME_ERROR, &error.to_string())),
            measure: false,
        });
        conn.read_closed = true;
        conn.rbuf.clear();
        return 1;
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    0
}

/// Fills the next `results.len()` body-less reply slots of `conn` with
/// rendered response frames (global submission order preserves each
/// connection's arrival order, so slots and results line up exactly).
#[cfg(unix)]
fn fill_replies(conn: &mut Conn, cuts: &[String], results: &[ServeResult]) {
    let mut filled = 0usize;
    for reply in conn.queue.iter_mut() {
        if filled == results.len() {
            break;
        }
        if reply.body.is_none() {
            let result = &results[filled];
            let line = response_line(&cuts[filled], result);
            reply.body = Some(encode_response(&line, result.is_err()));
            filled += 1;
        }
    }
    debug_assert_eq!(filled, results.len(), "reply slots match the batch");
}

/// Moves completed replies, in order, from the queue to the write
/// buffer; records wire latency at that moment.
#[cfg(unix)]
fn flush_ready(conn: &mut Conn, metrics: &Option<NetMetrics>) {
    while let Some(front) = conn.queue.front() {
        let Some(body) = &front.body else { break };
        conn.wbuf.extend_from_slice(body);
        if front.measure {
            if let Some(m) = metrics {
                m.wire_latency
                    .record(front.received.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
        }
        conn.queue.pop_front();
    }
    // Reclaim consumed prefix once it dominates the buffer.
    if conn.wpos > 0 && conn.wpos * 2 >= conn.wbuf.len() {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
}

/// Writes as much buffered output as the socket accepts.
#[cfg(unix)]
fn write_some(conn: &mut Conn, metrics: &Option<NetMetrics>) {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.wpos += n;
                if let Some(m) = metrics {
                    m.bytes_out.add(n as u64);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
}

/// Recomputes backpressure state and poller interest for `conn`.
#[cfg(unix)]
fn update_interest(
    conn: &mut Conn,
    poller: &mut Poller,
    metrics: &Option<NetMetrics>,
    config: &NetConfig,
) {
    let throttled =
        conn.queue.len() >= config.max_inflight || conn.unsent() >= config.write_highwater;
    if throttled && !conn.stalled {
        conn.stalled = true;
        if let Some(m) = metrics {
            m.backpressure_stalls.inc();
        }
    } else if !throttled {
        conn.stalled = false;
    }
    let want_read = !conn.read_closed && !conn.stalled;
    let want_write = conn.unsent() > 0;
    if want_read != conn.want_read || want_write != conn.want_write {
        conn.want_read = want_read;
        conn.want_write = want_write;
        let _ = poller.modify(conn.fd, conn.token, want_read, want_write);
    }
}

// ---------------------------------------------------------------------
// Load generator (client side)
// ---------------------------------------------------------------------

/// Tunables for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections.
    pub connections: usize,
    /// Pipeline depth: requests in flight per connection.
    pub depth: usize,
    /// Total requests to send (0 = one pass over the request list).
    /// Requests are dealt round-robin across connections, cycling the
    /// list as needed.
    pub total: usize,
    /// Capture response lines (single connection only — with one
    /// connection, captured lines are in exact request order, which is
    /// what the byte-identity `cmp` consumes).
    pub capture: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            connections: 4,
            depth: 16,
            total: 0,
            capture: false,
        }
    }
}

/// What one [`run_loadgen`] run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections actually used.
    pub connections: usize,
    /// Pipeline depth per connection.
    pub depth: usize,
    /// Requests sent.
    pub requests: u64,
    /// Responses received.
    pub responses: u64,
    /// Responses that carried an error line.
    pub error_lines: u64,
    /// Wall time of the whole run, seconds.
    pub elapsed_s: f64,
    /// Throughput: responses / elapsed.
    pub rps: f64,
    /// Median request→response latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Bytes written to the server.
    pub bytes_out: u64,
    /// Bytes read from the server.
    pub bytes_in: u64,
    /// Response lines in request order (only with
    /// [`LoadgenConfig::capture`] on a single connection).
    pub lines: Option<Vec<String>>,
}

struct ConnOutcome {
    latencies_us: Vec<u64>,
    error_lines: u64,
    bytes_out: u64,
    bytes_in: u64,
    lines: Option<Vec<String>>,
}

/// Connects with retry until `timeout` — smooths over the startup race
/// of a just-spawned `ftd serve --listen` in scripts and CI.
///
/// # Errors
///
/// The last connect error once `timeout` is exhausted.
pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Drives pipelined traffic at a running server and measures it.
///
/// Each connection runs a writer thread (frames out, pipeline depth
/// bounded by a slot channel acquired *before* the send timestamp is
/// taken, so backpressure waits don't count as latency) and a reader
/// (responses in, per-request latency off the matching timestamp).
/// Request *i* of the run goes to connection `i % connections`, so with
/// one connection the stream order is exactly the input order.
///
/// # Errors
///
/// [`NetError::Io`] if a connection fails mid-run, [`NetError::Protocol`]
/// if the server answers with anything but response frames.
pub fn run_loadgen(
    addr: &str,
    requests: &[DiagnosisRequest],
    config: &LoadgenConfig,
) -> Result<LoadgenReport, NetError> {
    if requests.is_empty() {
        return Err(NetError::Io {
            context: "loadgen".into(),
            source: io::Error::new(io::ErrorKind::InvalidInput, "no requests"),
        });
    }
    let total = if config.total == 0 {
        requests.len()
    } else {
        config.total
    };
    let connections = config.connections.clamp(1, total);
    let depth = config.depth.max(1);
    let capture = config.capture && connections == 1;

    let start = Instant::now();
    let mut threads = Vec::with_capacity(connections);
    for c in 0..connections {
        let count = total / connections + usize::from(c < total % connections);
        let frames: Vec<Vec<u8>> = (0..count)
            .map(|k| encode_request(&requests[(c + k * connections) % requests.len()]))
            .collect();
        let addr = addr.to_string();
        threads.push(std::thread::spawn(move || {
            drive_connection(&addr, frames, depth, capture)
        }));
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut error_lines = 0u64;
    let mut bytes_out = 0u64;
    let mut bytes_in = 0u64;
    let mut lines = capture.then(Vec::new);
    for thread in threads {
        let outcome = thread.join().map_err(|_| NetError::Io {
            context: "loadgen connection thread".into(),
            source: io::Error::other("panicked"),
        })??;
        latencies.extend(outcome.latencies_us);
        error_lines += outcome.error_lines;
        bytes_out += outcome.bytes_out;
        bytes_in += outcome.bytes_in;
        if let (Some(all), Some(got)) = (&mut lines, outcome.lines) {
            all.extend(got);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[rank] as f64
    };
    Ok(LoadgenReport {
        connections,
        depth,
        requests: total as u64,
        responses: latencies.len() as u64,
        error_lines,
        elapsed_s: elapsed,
        rps: if elapsed > 0.0 {
            latencies.len() as f64 / elapsed
        } else {
            0.0
        },
        p50_us: quantile(0.50),
        p90_us: quantile(0.90),
        p99_us: quantile(0.99),
        bytes_out,
        bytes_in,
        lines,
    })
}

fn drive_connection(
    addr: &str,
    frames: Vec<Vec<u8>>,
    depth: usize,
    capture: bool,
) -> Result<ConnOutcome, NetError> {
    let expected = frames.len();
    let stream = connect_retry(addr, Duration::from_secs(10)).map_err(NetError::io("connect"))?;
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone().map_err(NetError::io("clone stream"))?;
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());

    // Depth gating and timestamping are separate channels: the slot
    // channel's capacity *is* the pipeline depth, so the writer blocks
    // acquiring slot depth+1 until the reader consumes a response —
    // and only timestamps once it holds the slot, immediately before
    // the write. Timestamps ride an unbounded channel the send never
    // blocks on, so a saturated pipeline's backpressure wait is not
    // counted as request latency.
    let (slots_tx, slots_rx) = sync_channel::<()>(depth);
    let (times_tx, times_rx) = std::sync::mpsc::channel::<Instant>();
    let writer = std::thread::spawn(move || -> io::Result<u64> {
        let mut stream = stream;
        let mut sent = 0u64;
        for frame in &frames {
            if slots_tx.send(()).is_err() || times_tx.send(Instant::now()).is_err() {
                break; // reader bailed; stop writing
            }
            stream.write_all(frame)?;
            sent += frame.len() as u64;
        }
        // Half-close tells the server this stream is done: it finishes
        // the pipeline, flushes, and closes — the graceful-drain path.
        stream.shutdown(Shutdown::Write)?;
        Ok(sent)
    });

    let mut outcome = ConnOutcome {
        latencies_us: Vec::with_capacity(expected),
        error_lines: 0,
        bytes_out: 0,
        bytes_in: 0,
        lines: capture.then(Vec::new),
    };
    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let result = (|| -> Result<(), NetError> {
        while outcome.latencies_us.len() < expected {
            loop {
                let (kind, payload, consumed) = match decode_frame(&rbuf) {
                    Ok(None) => break,
                    Ok(Some((kind, payload, consumed))) => (kind, payload.to_vec(), consumed),
                    Err((kind, error)) => {
                        return Err(NetError::Protocol {
                            peer: peer.clone(),
                            frame: frame_name(kind),
                            error,
                        })
                    }
                };
                rbuf.drain(..consumed);
                match kind {
                    FRAME_RESPONSE => {
                        let (is_error, line) =
                            decode_response(&payload).map_err(|error| NetError::Protocol {
                                peer: peer.clone(),
                                frame: "response",
                                error,
                            })?;
                        let sent_at = times_rx.recv().map_err(|_| NetError::Io {
                            context: "loadgen timestamps".into(),
                            source: io::Error::other("writer gone"),
                        })?;
                        let _ = slots_rx.recv(); // response in: release a pipeline slot
                        outcome
                            .latencies_us
                            .push(sent_at.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        if is_error {
                            outcome.error_lines += 1;
                        }
                        if let Some(lines) = &mut outcome.lines {
                            lines.push(line);
                        }
                    }
                    FRAME_ERROR => {
                        let detail = decode_text_frame(&payload)
                            .unwrap_or_else(|e| format!("undecodable error frame: {e}"));
                        return Err(NetError::Protocol {
                            peer: peer.clone(),
                            frame: "error",
                            error: FrameError::Malformed(format!("server reported: {detail}")),
                        });
                    }
                    other => {
                        return Err(NetError::Protocol {
                            peer: peer.clone(),
                            frame: frame_name(other),
                            error: FrameError::Malformed("unexpected frame".into()),
                        })
                    }
                }
                if outcome.latencies_us.len() == expected {
                    break;
                }
            }
            if outcome.latencies_us.len() == expected {
                break;
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    return Err(NetError::Io {
                        context: format!(
                            "loadgen: server closed after {} of {expected} responses",
                            outcome.latencies_us.len()
                        ),
                        source: io::Error::from(io::ErrorKind::UnexpectedEof),
                    })
                }
                Ok(n) => {
                    rbuf.extend_from_slice(&chunk[..n]);
                    outcome.bytes_in += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(NetError::Io {
                        context: "loadgen read".into(),
                        source: e,
                    })
                }
            }
        }
        Ok(())
    })();
    // Unblock and join the writer whatever happened.
    drop(times_rx);
    drop(slots_rx);
    match writer.join() {
        Ok(Ok(sent)) => outcome.bytes_out = sent,
        Ok(Err(e)) => {
            result?;
            return Err(NetError::Io {
                context: "loadgen write".into(),
                source: e,
            });
        }
        Err(_) => {
            result?;
            return Err(NetError::Io {
                context: "loadgen writer thread".into(),
                source: io::Error::other("panicked"),
            });
        }
    }
    result?;
    Ok(outcome)
}

/// Fetches the server's Prometheus stats over a fresh connection.
///
/// # Errors
///
/// [`NetError::Io`] on connect/read failure, [`NetError::Protocol`] if
/// the reply is not a stats frame.
pub fn fetch_stats(addr: &str) -> Result<String, NetError> {
    let mut stream =
        connect_retry(addr, Duration::from_secs(10)).map_err(NetError::io("connect"))?;
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    stream
        .write_all(&encode_frame(FRAME_STATS_REQUEST, &[]))
        .map_err(NetError::io("stats request"))?;
    stream
        .shutdown(Shutdown::Write)
        .map_err(NetError::io("stats half-close"))?;
    let mut rbuf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decode_frame(&rbuf) {
            Ok(None) => {}
            Ok(Some((FRAME_STATS, payload, _))) => {
                return decode_text_frame(payload).map_err(|error| NetError::Protocol {
                    peer,
                    frame: "stats",
                    error,
                })
            }
            Ok(Some((other, _, _))) => {
                return Err(NetError::Protocol {
                    peer,
                    frame: frame_name(other),
                    error: FrameError::Malformed("expected a stats frame".into()),
                })
            }
            Err((kind, error)) => {
                return Err(NetError::Protocol {
                    peer,
                    frame: frame_name(kind),
                    error,
                })
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(NetError::Io {
                    context: "stats read".into(),
                    source: io::Error::from(io::ErrorKind::UnexpectedEof),
                })
            }
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(NetError::Io {
                    context: "stats read".into(),
                    source: e,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> DiagnosisRequest {
        DiagnosisRequest::new("cut-7", Signature::new(vec![0.25, -1.5, 3.75]))
    }

    #[test]
    fn frames_roundtrip_every_kind() {
        let req = sample_request();
        let frame = encode_request(&req);
        let (kind, payload, consumed) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(kind, FRAME_REQUEST);
        assert_eq!(consumed, frame.len());
        assert_eq!(decode_request(payload).unwrap(), req);

        let frame = encode_response("cut-7\tR2\t25\t-3.5\tR2", false);
        let (kind, payload, _) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(kind, FRAME_RESPONSE);
        assert_eq!(
            decode_response(payload).unwrap(),
            (false, "cut-7\tR2\t25\t-3.5\tR2".to_string())
        );

        let frame = encode_frame(FRAME_STATS_REQUEST, &[]);
        let (kind, payload, _) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!((kind, payload.len()), (FRAME_STATS_REQUEST, 0));

        for kind in [FRAME_STATS, FRAME_ERROR] {
            let frame = encode_text_frame(kind, "some text\nwith lines");
            let (got, payload, _) = decode_frame(&frame).unwrap().unwrap();
            assert_eq!(got, kind);
            assert_eq!(decode_text_frame(payload).unwrap(), "some text\nwith lines");
        }
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let frame = encode_request(&sample_request());
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes decoded: {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_caught() {
        let frame = encode_request(&sample_request());
        let original = decode_frame(&frame).unwrap().unwrap();
        let original = (original.0, original.1.to_vec());
        for i in 0..frame.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = frame.clone();
                bad[i] ^= flip;
                match decode_frame(&bad) {
                    // A length corruption may leave a valid prefix
                    // (waiting for bytes that never come) — but must
                    // never produce the original frame.
                    Ok(None) => assert!((2..6).contains(&i), "byte {i} silently vanished"),
                    Ok(Some((kind, payload, _))) => {
                        assert!(
                            (kind, payload.to_vec()) != original,
                            "byte {i} flip decoded identically"
                        );
                        panic!("byte {i} flip passed the checksum");
                    }
                    Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn oversized_server_text_clips_instead_of_panicking() {
        // A stats snapshot bigger than the wire cap (e.g. from many
        // labeled counters) must encode to a valid, decodable frame —
        // never trip the encode_frame assert on the event loop.
        let big = "x".repeat(MAX_FRAME_PAYLOAD as usize + 4096);
        let frame = encode_text_frame(FRAME_STATS, &big);
        assert!(frame.len() <= FRAME_HEADER_LEN + MAX_FRAME_PAYLOAD as usize);
        let (kind, payload, _) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(kind, FRAME_STATS);
        let text = decode_text_frame(payload).unwrap();
        assert!(
            text.ends_with(TRUNCATION_MARK),
            "truncation must be visible"
        );
        assert!(text.starts_with("xxx"));

        // Same guarantee for response lines (a near-cap CUT id echoes
        // back into the line) — and clipping respects char boundaries.
        let line = "é".repeat(MAX_FRAME_PAYLOAD as usize);
        let frame = encode_response(&line, false);
        assert!(frame.len() <= FRAME_HEADER_LEN + MAX_FRAME_PAYLOAD as usize);
        let (kind, payload, _) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(kind, FRAME_RESPONSE);
        let (is_error, got) = decode_response(payload).unwrap();
        assert!(!is_error);
        assert!(got.ends_with(TRUNCATION_MARK));

        // Under the cap nothing changes.
        let small = encode_text_frame(FRAME_STATS, "ok");
        let (_, payload, _) = decode_frame(&small).unwrap().unwrap();
        assert_eq!(decode_text_frame(payload).unwrap(), "ok");
    }

    #[test]
    fn oversized_frames_reject_from_the_header() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&FRAME_REQUEST.to_le_bytes());
        bad.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        bad.extend_from_slice(&[0u8; 8]);
        match decode_frame(&bad) {
            Err((kind, FrameError::Oversized { len, max })) => {
                assert_eq!(kind, FRAME_REQUEST);
                assert_eq!(len, MAX_FRAME_PAYLOAD + 1);
                assert_eq!(max, MAX_FRAME_PAYLOAD);
            }
            other => panic!("expected oversized rejection, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kinds_fail_after_the_checksum() {
        // A checksummed frame of kind 99: the checksum passes, the kind
        // doesn't — proving corruption attribution runs first.
        let frame = encode_frame(99, b"xyz");
        match decode_frame(&frame) {
            Err((99, FrameError::UnknownKind(99))) => {}
            other => panic!("expected unknown kind, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_stream_reassembles_at_every_split_point() {
        let requests = [
            DiagnosisRequest::new("a", Signature::new(vec![1.0, 2.0])),
            DiagnosisRequest::new("bb", Signature::new(vec![-0.5])),
            DiagnosisRequest::new("ccc", Signature::new(vec![0.0, 9.25, -7.0, 1e-9])),
        ];
        let stream: Vec<u8> = requests.iter().flat_map(encode_request).collect();
        for cut in 0..=stream.len() {
            let mut rbuf: Vec<u8> = Vec::new();
            let mut decoded: Vec<DiagnosisRequest> = Vec::new();
            for part in [&stream[..cut], &stream[cut..]] {
                rbuf.extend_from_slice(part);
                loop {
                    match decode_frame(&rbuf).expect("valid stream") {
                        None => break,
                        Some((kind, payload, consumed)) => {
                            assert_eq!(kind, FRAME_REQUEST);
                            decoded.push(decode_request(payload).unwrap());
                            rbuf.drain(..consumed);
                        }
                    }
                }
            }
            assert_eq!(decoded, requests, "split at byte {cut}");
            assert!(rbuf.is_empty());
        }
    }

    #[test]
    fn net_error_display_names_peer_and_frame() {
        let err = NetError::Protocol {
            peer: "10.0.0.7:51324".into(),
            frame: "request",
            error: FrameError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
        };
        let text = err.to_string();
        assert!(text.contains("10.0.0.7:51324"), "{text}");
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("checksum"), "{text}");
        assert_eq!(err.kind_label(), "checksum");
        assert_eq!(
            NetError::Protocol {
                peer: String::new(),
                frame: "x",
                error: FrameError::Oversized { len: 9, max: 1 },
            }
            .kind_label(),
            "oversized"
        );
        assert_eq!(
            NetError::Protocol {
                peer: String::new(),
                frame: "x",
                error: FrameError::UnknownKind(7),
            }
            .kind_label(),
            "unknown-kind"
        );
        assert_eq!(
            NetError::Protocol {
                peer: String::new(),
                frame: "x",
                error: FrameError::Malformed("nope".into()),
            }
            .kind_label(),
            "malformed"
        );
    }

    #[cfg(unix)]
    #[test]
    fn poll_backend_reports_pipe_readiness() {
        let mut poller = Poller::poll_backend().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd, 42, true, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "nothing written yet");
        poke(pipe.write_fd);
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        pipe.drain();
        poller.remove(pipe.read_fd).unwrap();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "removed fd reports nothing");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_pipe_readiness() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd, 7, true, false).unwrap();
        let mut events = Vec::new();
        poke(pipe.write_fd);
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        poller.modify(pipe.read_fd, 7, false, false).unwrap();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "interest dropped");
    }
}
