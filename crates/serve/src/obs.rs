//! Serving-stack observability: lock-free counters, gauges, log₂-bucket
//! latency histograms, RAII span timers, and snapshot export as JSON,
//! Prometheus text exposition, and greppable `name value` lines.
//!
//! Everything is hand-rolled over `std::sync::atomic` (the vendored
//! environment has no metrics crates) and designed around two hard
//! requirements of the serving stack:
//!
//! * **Provably inert.** A [`MetricsRegistry::noop`] registry hands out
//!   fresh unregistered handles with the same call-site cost as live
//!   ones, and the instrumented layers gate every `Instant::now` behind
//!   an `Option<…Metrics>` that is `None` unless metrics were requested
//!   — so diagnosis output is byte-identical with metrics on or off
//!   (asserted by `tests/obs.rs` and the CI `cmp`).
//! * **Lock-free hot path.** Recording is a relaxed atomic add; the
//!   registry's `Mutex` is touched only at handle registration and
//!   snapshot time, never per request.
//!
//! Histograms bucket microsecond values by log₂: bucket 0 holds the
//! value 0, bucket *i* ≥ 1 holds `[2^(i−1), 2^i)`. Quantiles are read
//! back from the bucket counts by rank walk with linear interpolation
//! inside the bucket, so a reported p99 is always bounded by the edges
//! of the bucket containing the true p99 — exact to bucket resolution.
//!
//! The per-layer handle bundles ([`EngineMetrics`], [`StoreMetrics`],
//! [`PoolMetrics`]) pre-resolve every hot-path handle once at
//! attachment, so instrumented code never touches the registry map.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::mmap::FileGen;

/// Number of histogram buckets: one for the value 0 plus one per power
/// of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index `value` lands in: 0 for the value 0, otherwise
/// `⌊log₂ value⌋ + 1`, so bucket *i* ≥ 1 covers `[2^(i−1), 2^i)`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `index`.
///
/// # Panics
///
/// If `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding a registry lock leaves plain numeric state;
    // recover the guard rather than propagating poisoning.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A monotonically increasing `u64` metric. All operations are relaxed
/// atomics — safe and lock-free from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for mirroring a total maintained
    /// elsewhere (e.g. `ft_core`'s scratch-pool statistics) into a
    /// registry at snapshot time.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, resident bytes). All
/// operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂ histogram of `u64` samples (microseconds, batch
/// sizes, …). Recording touches exactly two relaxed atomics; reading is
/// a [`Histogram::snapshot`] whose `count` is derived from one pass
/// over the bucket counts, so `count == Σ buckets` holds even while
/// writers race the snapshot.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same `value` (one batch, `n`
    /// requests) with a single pair of atomic adds.
    pub fn record_n(&self, value: u64, n: u64) {
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds (saturating).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the bucket counts and running sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        // `sum` is read after the buckets, so under concurrent writes it
        // is an estimate for the mean only; `count` is exact w.r.t. the
        // buckets read above.
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time histogram state; quantiles and means are computed here
/// so a snapshot persisted as JSON reads back identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, `HISTOGRAM_BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Total samples (always `Σ buckets`).
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q` in `[0, 1]`), estimated by rank walk over
    /// the bucket counts with linear interpolation inside the bucket.
    /// The result is always within the inclusive bounds of the bucket
    /// containing the rank; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let (lower, upper) = bucket_bounds(index);
                if index == 0 {
                    return 0.0;
                }
                let within = (rank - cumulative) as f64 / n as f64;
                let (lower, upper) = (lower as f64, upper as f64);
                return (lower + (upper - lower) * within).clamp(lower, upper);
            }
            cumulative += n;
        }
        bucket_bounds(HISTOGRAM_BUCKETS - 1).1 as f64
    }

    /// Mean of all recorded values; 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// RAII timing guard: records the elapsed time into its histogram (as
/// whole microseconds) when dropped.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Starts a span that will record into `histogram` on drop.
    pub fn start(histogram: Arc<Histogram>) -> SpanTimer {
        SpanTimer {
            histogram,
            start: Instant::now(),
        }
    }

    /// Time elapsed since the span started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// Renders `name{k="v",…}` — the registry key and Prometheus sample
/// name for a labeled metric. Label values are escaped per the text
/// exposition format (`\\`, `\"`, `\n`).
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::from(name);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for ch in value.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s.
///
/// Handles are `Arc`s resolved once (get-or-register under a mutex) and
/// then updated lock-free. A [`MetricsRegistry::noop`] registry never
/// registers anything: its getters hand back fresh detached handles, so
/// instrumented code runs identically but every snapshot stays empty.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    started: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    fn with_enabled(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            started: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// A live registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_enabled(true)
    }

    /// A disabled registry: same API, but handles are never registered
    /// and snapshots are always empty.
    pub fn noop() -> MetricsRegistry {
        MetricsRegistry::with_enabled(false)
    }

    /// `false` for a [`MetricsRegistry::noop`] registry.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Time since the registry was created — the denominator for rate
    /// metrics like qps.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The counter registered under `name`, registering it if new.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if !self.enabled {
            return Arc::new(Counter::default());
        }
        Arc::clone(lock(&self.counters).entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, registering it if new.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if !self.enabled {
            return Arc::new(Gauge::default());
        }
        Arc::clone(lock(&self.gauges).entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, registering it if new.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if !self.enabled {
            return Arc::new(Histogram::default());
        }
        Arc::clone(lock(&self.histograms).entry(name.to_string()).or_default())
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name. Process-global totals maintained outside the registry
    /// (`ft_core`'s interpolation scratch pool) are mirrored in first,
    /// so they appear as ordinary counters.
    pub fn snapshot(&self) -> Snapshot {
        if self.enabled {
            let (hits, allocs) = ft_core::scratch_pool_stats();
            self.counter("core_interp_pool_hits_total").set(hits);
            self.counter("core_interp_pool_allocs_total").set(allocs);
        }
        Snapshot {
            uptime_s: self.started.elapsed().as_secs_f64(),
            counters: lock(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time export of a registry: what `--stats-file` writes (as
/// JSON), `!stats` prints (as text), and `ftd stats` reads back.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Registry uptime in seconds at snapshot time.
    pub uptime_s: f64,
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The state of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Values derived from the raw series: requests per second and the
    /// shard-cache hit rate, when their inputs are present.
    pub fn derived(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::new();
        if let Some(requests) = self.counter("serve_requests_total") {
            if self.uptime_s > 0.0 {
                out.push(("qps", requests as f64 / self.uptime_s));
            }
        }
        if let (Some(hits), Some(misses)) = (
            self.counter("store_shard_cache_hits_total"),
            self.counter("store_shard_cache_misses_total"),
        ) {
            if hits + misses > 0 {
                out.push(("shard_cache_hit_rate", hits as f64 / (hits + misses) as f64));
            }
        }
        out
    }

    /// Serializes the snapshot as a single JSON object. Histogram
    /// buckets are `[inclusive_lower_edge_us, count]` pairs for the
    /// nonzero buckets only (lower edges are powers of two, exactly
    /// representable as JSON numbers), alongside precomputed
    /// `count`/`sum`/`mean`/`p50`/`p90`/`p99`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"uptime_s\": {},\n", json_f64(self.uptime_s)));
        out.push_str("  \"derived\": {");
        for (i, (name, value)) in self.derived().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {}", json_f64(*value)));
        }
        out.push_str("},\n");
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {value}", json_escape(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {value}", json_escape(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                json_escape(name),
                hist.count,
                hist.sum,
                json_f64(hist.mean()),
                json_f64(hist.quantile(0.50)),
                json_f64(hist.quantile(0.90)),
                json_f64(hist.quantile(0.99)),
            ));
            let mut first = true;
            for (index, &n) in hist.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("[{}, {n}]", bucket_bounds(index).0));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a snapshot previously written by [`Snapshot::to_json`].
    /// Quantiles are recomputed from the bucket counts, so the render
    /// matches a live snapshot exactly.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = parse_json(text)?;
        let obj = root.as_object().ok_or("top level is not an object")?;
        let uptime_s = get(obj, "uptime_s")
            .and_then(Json::as_f64)
            .ok_or("missing numeric \"uptime_s\"")?;
        let mut counters = Vec::new();
        for (name, value) in get(obj, "counters")
            .and_then(Json::as_object)
            .ok_or("missing object \"counters\"")?
        {
            let v = value.as_f64().ok_or("non-numeric counter value")?;
            counters.push((name.clone(), v as u64));
        }
        let mut gauges = Vec::new();
        for (name, value) in get(obj, "gauges")
            .and_then(Json::as_object)
            .ok_or("missing object \"gauges\"")?
        {
            let v = value.as_f64().ok_or("non-numeric gauge value")?;
            gauges.push((name.clone(), v as i64));
        }
        let mut histograms = Vec::new();
        for (name, value) in get(obj, "histograms")
            .and_then(Json::as_object)
            .ok_or("missing object \"histograms\"")?
        {
            let hist = value
                .as_object()
                .ok_or("histogram entry is not an object")?;
            let sum = get(hist, "sum")
                .and_then(Json::as_f64)
                .ok_or("histogram missing numeric \"sum\"")? as u64;
            let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
            for pair in get(hist, "buckets")
                .and_then(Json::as_array)
                .ok_or("histogram missing array \"buckets\"")?
            {
                let pair = pair.as_array().ok_or("histogram bucket is not a pair")?;
                let (lower, n) = match pair {
                    [lower, n] => (
                        lower.as_f64().ok_or("non-numeric bucket edge")? as u64,
                        n.as_f64().ok_or("non-numeric bucket count")? as u64,
                    ),
                    _ => return Err("histogram bucket is not a pair".into()),
                };
                let index = if lower == 0 {
                    0
                } else if lower.is_power_of_two() {
                    lower.ilog2() as usize + 1
                } else {
                    return Err(format!("bucket edge {lower} is not a power of two"));
                };
                buckets[index] = n;
            }
            let count = buckets.iter().sum();
            histograms.push((
                name.clone(),
                HistogramSnapshot {
                    buckets,
                    count,
                    sum,
                },
            ));
        }
        Ok(Snapshot {
            uptime_s,
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders greppable `name value` lines: uptime and derived values
    /// first, then counters, gauges, and per-histogram
    /// `_count`/`_sum`/`_mean`/`_p50`/`_p90`/`_p99` lines — the format
    /// `!stats` prints to stderr and `ftd stats` prints to stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("uptime_s {}\n", json_f64(self.uptime_s)));
        for (name, value) in self.derived() {
            out.push_str(&format!("{name} {}\n", json_f64(value)));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!("{name}_count {}\n", hist.count));
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_mean {}\n", json_f64(hist.mean())));
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                out.push_str(&format!("{name}_{label} {}\n", json_f64(hist.quantile(q))));
            }
        }
        out
    }

    /// Renders the Prometheus text exposition format: `# TYPE` lines
    /// per metric family, histograms as cumulative `_bucket{le="…"}`
    /// series (inclusive upper edges in microseconds, then `+Inf`) plus
    /// `_sum`/`_count`. Derived values are not exported — Prometheus
    /// consumers compute rates themselves.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, value) in &self.counters {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} counter\n"));
                last_family = family.to_string();
            }
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (index, &n) in hist.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_bounds(index).1
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_count {}\n", hist.count));
        }
        out
    }
}

/// Formats a float as a JSON-safe number (non-finite values render as
/// 0, which JSON cannot represent otherwise).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for `ftd stats` to load a snapshot
// back (objects, arrays, strings with the common escapes, f64 numbers,
// booleans, null). Hand-rolled because the vendored serde is a
// marker-only shim.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Re-take the full UTF-8 character starting here.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

// ---------------------------------------------------------------------
// Per-layer handle bundles: every hot-path handle resolved once at
// attachment, so instrumented code never touches the registry map.
// ---------------------------------------------------------------------

/// Pre-resolved handles for [`crate::DiagnosisEngine`] instrumentation.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// `engine_diagnose_latency_us` — per-diagnose wall time.
    pub diagnose_latency: Arc<Histogram>,
    /// `engine_diagnose_indexed_total` — diagnoses through the index.
    pub indexed: Arc<Counter>,
    /// `engine_diagnose_linear_total` — diagnoses through the linear scan.
    pub linear: Arc<Counter>,
    /// `engine_lazy_decodes_total` — mapped-bank sections decoded on
    /// first touch.
    pub lazy_decodes: Arc<Counter>,
    /// `engine_index_nodes_visited_total` — index tree nodes whose
    /// bounding box was tested, summed over every indexed query.
    pub index_nodes_visited: Arc<Counter>,
    /// `engine_index_segments_examined_total` — segments whose exact
    /// distance was computed; the gap to segments-held is the index win.
    pub index_segments_examined: Arc<Counter>,
    /// `engine_topk_early_exit_total` — top-k queries that stopped
    /// before settling the full ranking.
    pub topk_early_exits: Arc<Counter>,
}

impl EngineMetrics {
    /// Resolves the engine's handles from `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            diagnose_latency: registry.histogram("engine_diagnose_latency_us"),
            indexed: registry.counter("engine_diagnose_indexed_total"),
            linear: registry.counter("engine_diagnose_linear_total"),
            lazy_decodes: registry.counter("engine_lazy_decodes_total"),
            index_nodes_visited: registry.counter("engine_index_nodes_visited_total"),
            index_segments_examined: registry.counter("engine_index_segments_examined_total"),
            topk_early_exits: registry.counter("engine_topk_early_exit_total"),
        }
    }
}

/// Pre-resolved handles for [`crate::BankStore`] instrumentation.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    registry: Arc<MetricsRegistry>,
    /// `store_shard_cache_hits_total` — requests answered by a cached
    /// shard whose generation still matched.
    pub cache_hits: Arc<Counter>,
    /// `store_shard_cache_misses_total` — requests that had to load.
    pub cache_misses: Arc<Counter>,
    /// `store_shard_loads_total` — shard load attempts (decode or map).
    pub loads: Arc<Counter>,
    /// `store_shard_load_us` — wall time of each load attempt.
    pub load_latency: Arc<Histogram>,
    /// `store_shard_load_failures_total` — failed load attempts (also
    /// counted per shard via labeled counters).
    pub load_failures: Arc<Counter>,
    /// `store_shard_evictions_total` — shards evicted over budget.
    pub evictions: Arc<Counter>,
    /// `store_section_evictions_total` — shards whose cold-section
    /// decodes (dictionary / multi-fault) were dropped over budget
    /// while their hot trajectory view kept serving.
    pub section_evictions: Arc<Counter>,
    /// `store_section_resident_bytes` — bytes of cold-section decodes
    /// currently cached across resident shards (the part section
    /// eviction can reclaim without touching a trajectory view).
    pub section_resident_bytes: Arc<Gauge>,
    /// `store_hot_reloads_total` — healthy shards swapped for a newer
    /// file generation.
    pub hot_reloads: Arc<Counter>,
    /// `store_generation_stats_total` — per-hit `stat(2)` probes.
    pub file_stats: Arc<Counter>,
    /// `store_resident_bytes` — bytes currently accounted against the
    /// budget.
    pub resident_bytes: Arc<Gauge>,
    /// `store_mem_budget_bytes` — the configured budget (0 = unbounded).
    pub mem_budget_bytes: Arc<Gauge>,
    /// Handles forwarded into every engine the store loads.
    pub engine: EngineMetrics,
}

impl StoreMetrics {
    /// Resolves the store's handles from `registry` (kept, for the
    /// labeled per-shard failure counters).
    pub fn from_registry(registry: &Arc<MetricsRegistry>) -> StoreMetrics {
        StoreMetrics {
            cache_hits: registry.counter("store_shard_cache_hits_total"),
            cache_misses: registry.counter("store_shard_cache_misses_total"),
            loads: registry.counter("store_shard_loads_total"),
            load_latency: registry.histogram("store_shard_load_us"),
            load_failures: registry.counter("store_shard_load_failures_total"),
            evictions: registry.counter("store_shard_evictions_total"),
            section_evictions: registry.counter("store_section_evictions_total"),
            section_resident_bytes: registry.gauge("store_section_resident_bytes"),
            hot_reloads: registry.counter("store_hot_reloads_total"),
            file_stats: registry.counter("store_generation_stats_total"),
            resident_bytes: registry.gauge("store_resident_bytes"),
            mem_budget_bytes: registry.gauge("store_mem_budget_bytes"),
            engine: EngineMetrics::from_registry(registry),
            registry: Arc::clone(registry),
        }
    }

    /// Counts a shard-load failure, attributed to the failing shard
    /// path and the file generation the failure was observed at — the
    /// same attribution style as [`crate::CodecError::InFile`].
    pub fn record_load_failure(&self, path: &Path, generation: Option<FileGen>) {
        self.load_failures.inc();
        let generation = generation.map_or_else(|| "unknown".to_string(), |g| g.to_string());
        self.registry
            .counter(&labeled(
                "store_shard_load_failures_total",
                &[
                    ("shard", &path.display().to_string()),
                    ("generation", &generation),
                ],
            ))
            .inc();
    }
}

/// Pre-resolved handles for [`crate::ServeHandle`] instrumentation.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    registry: Arc<MetricsRegistry>,
    /// `pool_queue_depth` — jobs submitted and not yet picked up.
    pub queue_depth: Arc<Gauge>,
    /// `pool_batch_requests` — requests per submitted batch.
    pub batch_sizes: Arc<Histogram>,
    /// `serve_request_latency_us` — submit-to-drain wall time, recorded
    /// once per request when its batch completes.
    pub request_latency: Arc<Histogram>,
    /// `serve_requests_total` — requests drained.
    pub requests: Arc<Counter>,
    /// `serve_errors_total` — drained requests that carried an error.
    pub errors: Arc<Counter>,
}

impl PoolMetrics {
    /// Resolves the pool's handles from `registry` (kept, for the
    /// labeled per-worker job counters).
    pub fn from_registry(registry: &Arc<MetricsRegistry>) -> PoolMetrics {
        PoolMetrics {
            queue_depth: registry.gauge("pool_queue_depth"),
            batch_sizes: registry.histogram("pool_batch_requests"),
            request_latency: registry.histogram("serve_request_latency_us"),
            requests: registry.counter("serve_requests_total"),
            errors: registry.counter("serve_errors_total"),
            registry: Arc::clone(registry),
        }
    }

    /// The `pool_worker_jobs_total{worker="…"}` counter for one worker.
    pub fn worker_jobs(&self, worker: usize) -> Arc<Counter> {
        self.registry.counter(&labeled(
            "pool_worker_jobs_total",
            &[("worker", &worker.to_string())],
        ))
    }
}

/// Upper bound on distinct `peer` label values in the labeled
/// `net_protocol_errors_total{peer,kind}` counters. Peers are labeled
/// by IP only (never the ephemeral port), and once this many distinct
/// addresses have been seen, further ones collapse into
/// `peer="other"` — a hostile client cycling source addresses cannot
/// grow the registry (or the stats exposition) without bound.
pub const MAX_PEER_LABELS: usize = 64;

/// Pre-resolved handles for the [`crate::NetServer`] TCP tier.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    registry: Arc<MetricsRegistry>,
    /// Distinct peer IPs already used as label values, shared across
    /// clones so the [`MAX_PEER_LABELS`] cap is global.
    peer_labels: Arc<Mutex<BTreeSet<String>>>,
    /// `net_active_connections` — connections currently registered with
    /// the event loop.
    pub active_connections: Arc<Gauge>,
    /// `net_connections_accepted_total` — connections accepted.
    pub accepted: Arc<Counter>,
    /// `net_connections_closed_total` — connections torn down (clean or
    /// not).
    pub closed: Arc<Counter>,
    /// `net_requests_total` — request frames decoded off the wire.
    pub requests: Arc<Counter>,
    /// `net_request_wire_us` — frame-decoded to response-flushed wall
    /// time, per request. Distinct from the pool's end-to-end
    /// `serve_request_latency_us`: this one includes in-order response
    /// queueing on the connection but not kernel transmit time.
    pub wire_latency: Arc<Histogram>,
    /// `net_bytes_in_total` — bytes read off accepted sockets.
    pub bytes_in: Arc<Counter>,
    /// `net_bytes_out_total` — bytes written to accepted sockets.
    pub bytes_out: Arc<Counter>,
    /// `net_backpressure_stalls_total` — transitions into the stalled
    /// state (read interest dropped because the in-flight budget or the
    /// write-buffer high-water mark was hit).
    pub backpressure_stalls: Arc<Counter>,
    /// `net_protocol_errors_total` — malformed / oversized /
    /// checksum-failed frames (also counted per peer IP and kind via
    /// labeled counters, bounded by [`MAX_PEER_LABELS`]).
    pub protocol_errors: Arc<Counter>,
    /// `net_refresh_ticks_total` — periodic [`crate::BankStore::refresh`]
    /// sweeps driven off the event-loop timer.
    pub refresh_ticks: Arc<Counter>,
}

impl NetMetrics {
    /// Resolves the network tier's handles from `registry` (kept, for
    /// the labeled per-peer protocol-error counters).
    pub fn from_registry(registry: &Arc<MetricsRegistry>) -> NetMetrics {
        NetMetrics {
            active_connections: registry.gauge("net_active_connections"),
            accepted: registry.counter("net_connections_accepted_total"),
            closed: registry.counter("net_connections_closed_total"),
            requests: registry.counter("net_requests_total"),
            wire_latency: registry.histogram("net_request_wire_us"),
            bytes_in: registry.counter("net_bytes_in_total"),
            bytes_out: registry.counter("net_bytes_out_total"),
            backpressure_stalls: registry.counter("net_backpressure_stalls_total"),
            protocol_errors: registry.counter("net_protocol_errors_total"),
            refresh_ticks: registry.counter("net_refresh_ticks_total"),
            registry: Arc::clone(registry),
            peer_labels: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// Counts a protocol error, attributed to the peer and the
    /// frame-error kind — the same attribution style as
    /// [`crate::CodecError::InFile`] on the storage side. The label
    /// value is the peer's IP, never its ephemeral port, and at most
    /// [`MAX_PEER_LABELS`] distinct IPs are ever registered (the rest
    /// share `peer="other"`), so misbehaving peers add bounded state no
    /// matter how many addresses they arrive from.
    pub fn record_protocol_error(&self, peer: &str, kind: &str) {
        self.protocol_errors.inc();
        // `rsplit_once` keeps bracketed IPv6 forms ("[::1]:80") whole.
        let ip = peer.rsplit_once(':').map_or(peer, |(ip, _)| ip);
        let ip = {
            let mut seen = lock(&self.peer_labels);
            if seen.contains(ip) || seen.len() < MAX_PEER_LABELS {
                seen.insert(ip.to_string());
                ip
            } else {
                "other"
            }
        };
        self.registry
            .counter(&labeled(
                "net_protocol_errors_total",
                &[("peer", ip), ("kind", kind)],
            ))
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for index in 0..HISTOGRAM_BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper), index);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_count_and_quantiles() {
        let hist = Histogram::default();
        for v in [0u64, 1, 5, 5, 9, 100, 1000] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1120);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        // p50 rank 4 lands among the 5/5/9 values: bucket [4, 8).
        let p50 = snap.quantile(0.5);
        assert!((4.0..=7.0).contains(&p50), "p50 = {p50}");
        // p99 rank 7 is the 1000 sample: bucket [512, 1024).
        let p99 = snap.quantile(0.99);
        assert!((512.0..=1023.0).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.quantile(0.0), 0.0);
    }

    #[test]
    fn protocol_error_peer_labels_are_bounded() {
        let registry = Arc::new(MetricsRegistry::new());
        let net = NetMetrics::from_registry(&registry);
        // Same IP across ephemeral ports collapses to one label.
        net.record_protocol_error("10.1.2.3:50001", "checksum");
        net.record_protocol_error("10.1.2.3:50002", "checksum");
        // Thousands of distinct source addresses...
        for i in 0..4096u32 {
            net.record_protocol_error(
                &format!("10.9.{}.{}:{}", i / 256, i % 256, 40000 + i),
                "oversized",
            );
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("net_protocol_errors_total"), Some(4098));
        assert_eq!(
            snapshot.counter("net_protocol_errors_total{peer=\"10.1.2.3\",kind=\"checksum\"}"),
            Some(2),
            "ports must be stripped from the peer label"
        );
        // ...register at most MAX_PEER_LABELS distinct peer values plus
        // the shared overflow bucket.
        let labeled_variants = snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("net_protocol_errors_total{"))
            .count();
        assert!(
            labeled_variants <= MAX_PEER_LABELS + 1,
            "unbounded peer label cardinality: {labeled_variants} variants"
        );
        let overflow = snapshot
            .counter("net_protocol_errors_total{peer=\"other\",kind=\"oversized\"}")
            .expect("overflow peers share one label");
        assert!(overflow > 0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn record_n_counts_every_sample() {
        let hist = Histogram::default();
        hist.record_n(16, 10);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum, 160);
        assert_eq!(snap.buckets[bucket_index(16)], 10);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let hist = Arc::new(Histogram::default());
        SpanTimer::start(Arc::clone(&hist)).finish();
        {
            let span = SpanTimer::start(Arc::clone(&hist));
            assert!(span.elapsed() < Duration::from_secs(1));
        }
        assert_eq!(hist.snapshot().count, 2);
    }

    #[test]
    fn noop_registry_registers_nothing() {
        let registry = MetricsRegistry::noop();
        registry.counter("a").inc();
        registry.gauge("b").set(7);
        registry.histogram("c").record(3);
        assert!(!registry.is_enabled());
        let snap = registry.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn live_registry_shares_handles_by_name() {
        let registry = MetricsRegistry::new();
        registry.counter("hits").inc();
        registry.counter("hits").add(2);
        assert_eq!(registry.counter("hits").get(), 3);
        registry.gauge("depth").add(5);
        registry.gauge("depth").sub(2);
        assert_eq!(registry.gauge("depth").get(), 3);
    }

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(
            labeled("f", &[("shard", "a\"b\\c"), ("generation", "g")]),
            "f{shard=\"a\\\"b\\\\c\",generation=\"g\"}"
        );
    }

    #[test]
    fn snapshot_json_round_trips() {
        let registry = MetricsRegistry::new();
        registry.counter("serve_requests_total").add(12);
        registry
            .counter(&labeled("pool_worker_jobs_total", &[("worker", "0")]))
            .add(4);
        registry.gauge("store_resident_bytes").set(4096);
        let hist = registry.histogram("serve_request_latency_us");
        for v in [0u64, 3, 17, 900, 70_000] {
            hist.record(v);
        }
        let snap = registry.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        assert_eq!(parsed.histograms, snap.histograms);
        // The re-render is identical except for floating uptime.
        let mut snap = snap;
        snap.uptime_s = parsed.uptime_s;
        assert_eq!(parsed.render_text(), snap.render_text());
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(Snapshot::from_json("").is_err());
        assert!(Snapshot::from_json("{").is_err());
        assert!(Snapshot::from_json("[1, 2]").is_err());
        assert!(Snapshot::from_json("{\"uptime_s\": 1}").is_err());
        assert!(Snapshot::from_json("not json at all").is_err());
    }

    #[test]
    fn derived_values_and_text_render() {
        let registry = MetricsRegistry::new();
        registry.counter("serve_requests_total").add(10);
        registry.counter("store_shard_cache_hits_total").add(8);
        registry.counter("store_shard_cache_misses_total").add(2);
        let snap = registry.snapshot();
        let derived = snap.derived();
        let rate = derived
            .iter()
            .find(|(name, _)| *name == "shard_cache_hit_rate")
            .map(|&(_, v)| v)
            .unwrap();
        assert!((rate - 0.8).abs() < 1e-12);
        let text = snap.render_text();
        assert!(text.contains("serve_requests_total 10\n"));
        assert!(text.contains("shard_cache_hit_rate 0.8\n"));
        assert!(text.lines().all(|l| l.split_whitespace().count() == 2));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let registry = MetricsRegistry::new();
        registry.counter("serve_requests_total").add(3);
        registry.gauge("pool_queue_depth").set(1);
        let hist = registry.histogram("serve_request_latency_us");
        hist.record(3);
        hist.record(100);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE serve_requests_total counter\n"));
        assert!(text.contains("serve_requests_total 3\n"));
        assert!(text.contains("# TYPE pool_queue_depth gauge\n"));
        assert!(text.contains("# TYPE serve_request_latency_us histogram\n"));
        assert!(text.contains("serve_request_latency_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("serve_request_latency_us_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("serve_request_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_request_latency_us_count 2\n"));
    }
}
