//! `ftd` — build, query, and benchmark persistent trajectory banks.
//!
//! See `ftd --help` (or [`ft_serve::cli`]) for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ft_serve::cli::main_from_args(args));
}
