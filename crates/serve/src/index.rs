//! Spatial index over trajectory segments: a cache-flat forest of
//! per-trajectory 8-ary AABB trees in signature space, stored
//! structure-of-arrays for batched (autovectorizable) box tests, with a
//! best-first top-k query mode that stops ranking once the ambiguity
//! set is resolved.
//!
//! The linear diagnosis path scans every segment of every trajectory for
//! each query. A full ranked diagnosis needs the **exact** nearest
//! segment of *every* trajectory (not just the globally closest one), so
//! the index is organised the way the answer is: per trajectory. Each
//! trajectory's segments — contiguous along its polyline — are boxed
//! into a balanced 8-ary AABB tree, and a query runs branch-and-bound
//! down each tree: a subtree is skipped only when the distance from the
//! observation to its bounding box (a lower bound on the distance to
//! every segment inside, with a safety margin on top) already exceeds
//! the best distance found for that trajectory.
//!
//! ## Layout
//!
//! Nodes live in one breadth-first array per forest, all trajectories
//! pooled; the children of every internal node occupy **consecutive
//! ids**, so a whole sibling group is one contiguous slice. Bounding
//! boxes are stored plane-major — for each signature dimension `k`, the
//! lower corners of *all* nodes form one contiguous `f64` run, then the
//! upper corners — so testing the up-to-8 children of a node against
//! the query reads `2 × dim` short contiguous chunks instead of chasing
//! pointers. [`SegmentIndex::child_box_dist2`] computes all eight lanes
//! branchlessly in a shape the autovectorizer lowers to SIMD (and an
//! explicit SSE2 `core::arch` path is used on x86_64; a unit test pins
//! it to the scalar reference). Internal-node boxes are built bottom-up
//! as the union of their children's boxes — one O(n) pass over the node
//! array, not a per-node endpoint rescan — and
//! [`SegmentIndex::rebuild_trajectory`] re-derives one trajectory's
//! boxes in place when a bank is rebuilt at a new test vector with the
//! same topology.
//!
//! ## Exactness
//!
//! Descent is best-first (nearer child boxes explored before farther
//! siblings), so the running best converges in one dive and sibling
//! subtrees prune at the highest possible level. Results are
//! nonetheless **bit-identical** to the linear scan:
//!
//! * distances come from the same [`point_segment_distance`] calls on
//!   the same coordinates;
//! * the running best carries the segment index it came from, and a
//!   later segment replaces it only with a strictly smaller distance or
//!   an equal distance at a smaller index — the same winner the
//!   linear scan's first-wins rule picks, independent of visit order;
//! * a pruned subtree satisfies `box distance > best + slack`, and the
//!   box distance lower-bounds every segment inside, so a pruned
//!   segment could never have improved *or tied* the running best.
//!
//! Pruning compares **squared** distances against the squared slack-
//! padded bound — the comparison is monotone, so the decisions (and
//! therefore the results) are unchanged while the hot loop never takes
//! a square root.
//!
//! ## Top-k / early termination
//!
//! [`SegmentIndex::query_topk`] runs one global best-first search over
//! all trajectories, each keyed by its nearest *child* box distance —
//! a root's own box usually contains the query and bounds nothing,
//! while one batched test of its children still lower-bounds the true
//! distance but tightly enough to discard most of the frontier. A
//! trajectory's running best becomes *settled* — provably exact and
//! provably ahead of every unsettled trajectory — as soon as it drops
//! below the frontier bound minus [`prune_slack`]; settled trajectories drain
//! into the ranking in `(distance, trajectory index)` order, which is
//! exactly the order [`Diagnosis`] ranks a full scan. The search stops
//! once `k` trajectories are ranked **and** the winner's whole
//! ambiguity set (`distance ≤ best × ambiguity_ratio`) is settled, so
//! the rank-1 verdict and the reported ambiguity set are always
//! identical to the full ranking — only the deep tail is skipped.
//!
//! [`Diagnosis`]: ft_core::Diagnosis

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use ft_core::geometry::point_segment_distance2;
use ft_core::{FaultTrajectory, SegmentQuery, Signature, TopkRanking, TrajectorySet};

use crate::obs::Counter;

/// Default maximum number of segments per leaf node. The flat layout
/// makes segment exams cheap (squared-domain scan, contiguous endpoint
/// rows), so it pays to push more work into leaves than the pointer
/// tree does: 16 measured fastest for both full and top-k queries at
/// 100k segments (see `BENCH_index.json`).
const DEFAULT_LEAF_SIZE: usize = 16;

/// Children per internal node — one batched box test covers a whole
/// sibling group. Eight `f64` lanes fill two AVX registers (or four
/// SSE2 ones), and the plane arrays are padded so a full-width read at
/// any child base stays in bounds.
pub(crate) const BRANCH: usize = 8;

/// Conservative slack added to pruning bounds so floating-point rounding
/// can never skip a segment the linear scan would have preferred.
pub(crate) fn prune_slack(d: f64) -> f64 {
    1e-9 + 1e-12 * d.abs()
}

/// Instrumentation of one index query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Tree nodes whose bounding box was tested.
    pub nodes_visited: usize,
    /// Segments whose exact distance was computed.
    pub segments_examined: usize,
    /// `true` when a top-k query stopped before settling the full
    /// ranking (always `false` for full-ranking queries).
    pub early_exit: bool,
}

/// Observability handles an index records its per-query work into when
/// attached (see [`crate::obs::EngineMetrics`]); without them a query
/// touches no atomics.
#[derive(Debug, Clone)]
pub struct IndexCounters {
    /// `engine_index_nodes_visited_total`.
    pub nodes_visited: Arc<Counter>,
    /// `engine_index_segments_examined_total`.
    pub segments_examined: Arc<Counter>,
    /// `engine_topk_early_exit_total`.
    pub topk_early_exits: Arc<Counter>,
}

/// A flat structure-of-arrays forest of per-trajectory 8-ary AABB trees
/// over all segments of a [`TrajectorySet`].
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    dim: usize,
    n_traj: usize,
    /// Plane-array stride: node count padded by [`BRANCH`] so a full
    /// 8-lane read at any child base never leaves the allocation.
    stride: usize,
    /// First child node id per node; `u32::MAX` marks a leaf. A node's
    /// children are the consecutive ids `child_base..child_base + child_count`.
    child_base: Vec<u32>,
    /// Number of children (0 for leaves, 2..=[`BRANCH`] for internal nodes).
    child_count: Vec<u8>,
    /// Segment range `[seg_lo, seg_hi)` covered by each node.
    seg_lo: Vec<u32>,
    seg_hi: Vec<u32>,
    /// Owning trajectory of each node.
    node_traj: Vec<u32>,
    /// Root node id per trajectory — also the start of its contiguous
    /// breadth-first node block (the next root bounds it).
    roots: Vec<u32>,
    /// Box planes, plane-major: for dimension `k`,
    /// `planes[2k·stride + node]` is the lower corner and
    /// `planes[(2k+1)·stride + node]` the upper.
    planes: Vec<f64>,
    /// Segment id → (start, end) deviation percentages; ids are
    /// trajectory-major, matching `TrajectorySet::all_segments`.
    seg_dev: Vec<(f64, f64)>,
    /// Flat endpoint store, stride `2 * dim`: `a` then `b`.
    coords: Vec<f64>,
    counters: Option<IndexCounters>,
}

impl SegmentIndex {
    /// Builds the index with the default leaf size.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty.
    pub fn build(set: &TrajectorySet) -> Self {
        Self::with_leaf_size(set, DEFAULT_LEAF_SIZE)
    }

    /// Builds the index with an explicit maximum leaf size (smaller
    /// leaves prune harder but test more boxes).
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty or `leaf_size` is zero.
    pub fn with_leaf_size(set: &TrajectorySet, leaf_size: usize) -> Self {
        assert!(!set.is_empty(), "cannot index an empty trajectory set");
        assert!(leaf_size > 0, "leaf size must be positive");
        let dim = set.dim();
        let mut index = SegmentIndex {
            dim,
            n_traj: set.len(),
            stride: 0,
            child_base: Vec::new(),
            child_count: Vec::new(),
            seg_lo: Vec::new(),
            seg_hi: Vec::new(),
            node_traj: Vec::new(),
            roots: Vec::with_capacity(set.len()),
            planes: Vec::new(),
            seg_dev: Vec::with_capacity(set.total_segments()),
            coords: Vec::with_capacity(set.total_segments() * 2 * dim),
            counters: None,
        };
        for (_, _, d0, p0, d1, p1) in set.all_segments() {
            index.seg_dev.push((d0, d1));
            index.coords.extend_from_slice(p0);
            index.coords.extend_from_slice(p1);
        }
        // Tree shape first: per trajectory, a breadth-first node block
        // whose sibling groups are consecutive ids.
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut seg_base = 0u32;
        for (ti, t) in set.views().enumerate() {
            let n = t.segment_count() as u32;
            let root = index.push_node(seg_base, seg_base + n, ti as u32);
            index.roots.push(root);
            queue.push_back(root);
            while let Some(nid) = queue.pop_front() {
                let (lo, hi) = (index.seg_lo[nid as usize], index.seg_hi[nid as usize]);
                let count = (hi - lo) as usize;
                if count <= leaf_size {
                    continue; // stays a leaf
                }
                let chunks = count.div_ceil(leaf_size).clamp(2, BRANCH);
                let size = (count.div_ceil(chunks)) as u32;
                index.child_base[nid as usize] = index.child_base.len() as u32;
                let mut created = 0u8;
                let mut clo = lo;
                while clo < hi {
                    let chi = (clo + size).min(hi);
                    let cid = index.push_node(clo, chi, ti as u32);
                    queue.push_back(cid);
                    created += 1;
                    clo = chi;
                }
                index.child_count[nid as usize] = created;
            }
            seg_base += n;
        }
        // Boxes second: one bottom-up pass. Children always carry
        // higher ids than their parent, so a reverse sweep sees every
        // child before its parent and internal boxes are unions of
        // already-final child boxes — no endpoint rescans.
        let n_nodes = index.child_base.len();
        index.stride = n_nodes + BRANCH;
        index.planes = vec![0.0; 2 * dim * index.stride];
        for nid in (0..n_nodes).rev() {
            index.refresh_box(nid);
        }
        #[cfg(debug_assertions)]
        index.debug_verify_boxes_against_rescan();
        index
    }

    /// Appends a node with no children yet and returns its id.
    fn push_node(&mut self, seg_lo: u32, seg_hi: u32, traj: u32) -> u32 {
        let id = self.child_base.len() as u32;
        self.child_base.push(u32::MAX);
        self.child_count.push(0);
        self.seg_lo.push(seg_lo);
        self.seg_hi.push(seg_hi);
        self.node_traj.push(traj);
        id
    }

    /// Recomputes node `nid`'s box: from its segment endpoints for a
    /// leaf, as the union of its children's (already current) boxes for
    /// an internal node. Exact either way — min/max over the same
    /// endpoint multiset gives the identical `f64` regardless of
    /// association, which is what lets the build skip the rescan.
    fn refresh_box(&mut self, nid: usize) {
        let dim = self.dim;
        let stride = self.stride;
        if self.child_base[nid] == u32::MAX {
            for k in 0..dim {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for s in self.seg_lo[nid]..self.seg_hi[nid] {
                    let base = s as usize * 2 * dim;
                    for &x in &[self.coords[base + k], self.coords[base + dim + k]] {
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                }
                self.planes[2 * k * stride + nid] = lo;
                self.planes[(2 * k + 1) * stride + nid] = hi;
            }
        } else {
            let cb = self.child_base[nid] as usize;
            let cc = self.child_count[nid] as usize;
            for k in 0..dim {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for c in cb..cb + cc {
                    lo = lo.min(self.planes[2 * k * stride + c]);
                    hi = hi.max(self.planes[(2 * k + 1) * stride + c]);
                }
                self.planes[2 * k * stride + nid] = lo;
                self.planes[(2 * k + 1) * stride + nid] = hi;
            }
        }
    }

    /// Debug-build oracle: every node box must equal the box a direct
    /// rescan of its segment endpoints produces — the invariant the
    /// O(n) union build rests on.
    #[cfg(debug_assertions)]
    fn debug_verify_boxes_against_rescan(&self) {
        for nid in 0..self.child_base.len() {
            for k in 0..self.dim {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for s in self.seg_lo[nid]..self.seg_hi[nid] {
                    let base = s as usize * 2 * self.dim;
                    for &x in &[self.coords[base + k], self.coords[base + self.dim + k]] {
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                }
                debug_assert_eq!(
                    self.planes[2 * k * self.stride + nid],
                    lo,
                    "union-built lower box plane diverged from the rescan oracle"
                );
                debug_assert_eq!(
                    self.planes[(2 * k + 1) * self.stride + nid],
                    hi,
                    "union-built upper box plane diverged from the rescan oracle"
                );
            }
        }
    }

    /// Re-indexes one trajectory in place after its geometry changed —
    /// the incremental path for banks rebuilt at a new test vector. The
    /// tree shape is topology-only (it depends on the segment count,
    /// not the coordinates), so only this trajectory's endpoint store
    /// and its node block's boxes are rewritten; every other
    /// trajectory's data is untouched and the result is identical to a
    /// fresh [`SegmentIndex::build`] over the modified set.
    ///
    /// # Panics
    ///
    /// Panics if `ti` is out of range, the trajectory's dimension does
    /// not match the index, or its segment count differs from the
    /// indexed topology (a changed topology needs a full rebuild).
    pub fn rebuild_trajectory(&mut self, ti: usize, trajectory: &FaultTrajectory) {
        assert!(ti < self.n_traj, "trajectory index out of range");
        assert_eq!(
            trajectory.dim(),
            self.dim,
            "trajectory dimension must match the index"
        );
        let root = self.roots[ti] as usize;
        let (seg_lo, seg_hi) = (self.seg_lo[root], self.seg_hi[root]);
        assert_eq!(
            trajectory.segment_count(),
            (seg_hi - seg_lo) as usize,
            "segment count changed; incremental rebuild needs the same topology"
        );
        for (i, (d0, p0, d1, p1)) in trajectory.segments().enumerate() {
            let s = seg_lo as usize + i;
            self.seg_dev[s] = (d0, d1);
            let base = s * 2 * self.dim;
            self.coords[base..base + self.dim].copy_from_slice(p0.coords());
            self.coords[base + self.dim..base + 2 * self.dim].copy_from_slice(p1.coords());
        }
        let block_end = self
            .roots
            .get(ti + 1)
            .map_or(self.child_base.len(), |&r| r as usize);
        for nid in (root..block_end).rev() {
            self.refresh_box(nid);
        }
    }

    /// Attaches observability counters; every subsequent query adds its
    /// [`QueryStats`] to them. Without this call queries touch no
    /// atomics.
    pub fn set_counters(&mut self, counters: IndexCounters) {
        self.counters = Some(counters);
    }

    /// Number of indexed segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.seg_dev.len()
    }

    /// `true` when no segments are indexed (never, for built indexes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seg_dev.is_empty()
    }

    /// Signature-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trajectories covered.
    #[inline]
    pub fn trajectory_count(&self) -> usize {
        self.n_traj
    }

    /// Total tree nodes across all trajectories.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.child_base.len()
    }

    /// Squared distance from `q` to node `nid`'s box (zero inside) —
    /// scalar single-box twin of the batched kernel, for nodes read
    /// outside a sibling group (leaf trajectory roots in the
    /// [`SegmentIndex::query_topk`] frontier).
    #[inline]
    fn one_box_dist2(&self, nid: usize, q: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (k, &qk) in q.iter().enumerate() {
            let lo = self.planes[2 * k * self.stride + nid];
            let hi = self.planes[(2 * k + 1) * self.stride + nid];
            let delta = (lo - qk).max(qk - hi).max(0.0);
            acc += delta * delta;
        }
        acc
    }

    /// Squared distances from `q` to the eight box lanes starting at
    /// node id `base` — the whole sibling group of one internal node in
    /// one branchless pass over the SoA planes. Always computes all
    /// [`BRANCH`] lanes (the plane padding keeps the reads in bounds);
    /// callers consume only the real `child_count`.
    #[inline]
    fn child_box_dist2(&self, base: usize, q: &[f64], out: &mut [f64; BRANCH]) {
        Self::batch_box_dist2(&self.planes, self.stride, base, q, out);
    }

    /// Batched box test over a plane-major array (`planes[2k·stride +
    /// lane]` lower, `planes[(2k+1)·stride + lane]` upper): eight
    /// squared box distances starting at `base`. Requires
    /// `base + BRANCH <= stride`.
    #[inline]
    fn batch_box_dist2(
        planes: &[f64],
        stride: usize,
        base: usize,
        q: &[f64],
        out: &mut [f64; BRANCH],
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            Self::batch_box_dist2_sse2(planes, stride, base, q, out);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self::batch_box_dist2_scalar(planes, stride, base, q, out);
        }
    }

    /// Scalar reference for the batched box test: branchless
    /// clamp-square-accumulate over fixed-width lanes, written so the
    /// autovectorizer can lower it to SIMD on any target. On x86_64 the
    /// hot path dispatches to the SSE2 twin instead, and this reference
    /// is exercised only by the parity test.
    #[cfg_attr(all(target_arch = "x86_64", not(test)), allow(dead_code))]
    #[inline]
    fn batch_box_dist2_scalar(
        planes: &[f64],
        stride: usize,
        base: usize,
        q: &[f64],
        out: &mut [f64; BRANCH],
    ) {
        out.fill(0.0);
        for (k, &qk) in q.iter().enumerate() {
            let lo = &planes[2 * k * stride + base..][..BRANCH];
            let hi = &planes[(2 * k + 1) * stride + base..][..BRANCH];
            for j in 0..BRANCH {
                let delta = (lo[j] - qk).max(qk - hi[j]).max(0.0);
                out[j] += delta * delta;
            }
        }
    }

    /// Explicit SSE2 path (baseline on x86_64, no feature detection
    /// needed): identical arithmetic to the scalar reference on the
    /// finite inputs the index holds, pinned by
    /// `simd_batch_matches_scalar_reference`.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn batch_box_dist2_sse2(
        planes: &[f64],
        stride: usize,
        base: usize,
        q: &[f64],
        out: &mut [f64; BRANCH],
    ) {
        use std::arch::x86_64::{
            _mm_add_pd, _mm_loadu_pd, _mm_max_pd, _mm_mul_pd, _mm_set1_pd, _mm_setzero_pd,
            _mm_storeu_pd, _mm_sub_pd,
        };
        debug_assert!(base + BRANCH <= stride);
        // SAFETY: every load reads two f64 lanes at `base + 2j` with
        // `base + BRANCH <= stride` guaranteed by the plane padding, and
        // loadu/storeu carry no alignment requirement.
        unsafe {
            let zero = _mm_setzero_pd();
            let mut acc = [zero; BRANCH / 2];
            for (k, &qk) in q.iter().enumerate() {
                let qv = _mm_set1_pd(qk);
                let lo_ptr = planes.as_ptr().add(2 * k * stride + base);
                let hi_ptr = planes.as_ptr().add((2 * k + 1) * stride + base);
                for (j, lane) in acc.iter_mut().enumerate() {
                    let lo = _mm_loadu_pd(lo_ptr.add(2 * j));
                    let hi = _mm_loadu_pd(hi_ptr.add(2 * j));
                    let delta =
                        _mm_max_pd(_mm_max_pd(_mm_sub_pd(lo, qv), _mm_sub_pd(qv, hi)), zero);
                    *lane = _mm_add_pd(*lane, _mm_mul_pd(delta, delta));
                }
            }
            for (j, lane) in acc.iter().enumerate() {
                _mm_storeu_pd(out.as_mut_ptr().add(2 * j), *lane);
            }
        }
    }

    /// Best `(distance, deviation)` per trajectory, as
    /// [`SegmentQuery::best_per_trajectory`], discarding statistics.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn query(&self, observed: &Signature) -> Vec<(f64, f64)> {
        self.query_stats(observed).0
    }

    /// [`SegmentIndex::query`] plus instrumentation: how many node boxes
    /// were tested and how many exact segment distances were computed.
    /// On a large bank `segments_examined` is a small fraction of
    /// [`SegmentIndex::len`] — that fraction *is* the speed-up.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn query_stats(&self, observed: &Signature) -> (Vec<(f64, f64)>, QueryStats) {
        assert_eq!(
            observed.dim(),
            self.dim,
            "signature dimension must match the index"
        );
        let q = observed.coords();
        let mut stats = QueryStats::default();
        let mut best = Vec::with_capacity(self.n_traj);
        let mut stack: Vec<(u32, f64)> = Vec::with_capacity(64);

        for &root in &self.roots {
            let mut cur = Best::none();
            stats.nodes_visited += 1;
            self.descend(root, q, &mut cur, &mut stack, &mut stats, f64::INFINITY);
            best.push((cur.dist, cur.dev));
        }
        self.record(&stats);
        (best, stats)
    }

    /// Best-first branch-and-bound over one trajectory's tree, using an
    /// explicit stack of `(node, squared box distance)` frontier
    /// entries. Entries are re-checked against the (improving) bound at
    /// pop time, so stale pushes prune instead of descending. `adm2` is
    /// an additional squared global bound (`f64::INFINITY` for an exact
    /// full-trajectory result): subtrees whose box lies beyond it are
    /// skipped, so the caller must prove such segments cannot matter —
    /// [`SegmentIndex::query_topk`] does, for its returned prefix.
    fn descend(
        &self,
        root: u32,
        q: &[f64],
        cur: &mut Best,
        stack: &mut Vec<(u32, f64)>,
        stats: &mut QueryStats,
        adm2: f64,
    ) {
        stack.clear();
        stack.push((root, 0.0));
        let mut lanes = [0.0f64; BRANCH];
        while let Some((nid, d2)) = stack.pop() {
            let bound = cur.dist + prune_slack(cur.dist);
            if d2 > (bound * bound).min(adm2) {
                continue;
            }
            let nid = nid as usize;
            let cb = self.child_base[nid];
            if cb == u32::MAX {
                self.scan_leaf(nid, q, cur, stats);
                continue;
            }
            let cnt = self.child_count[nid] as usize;
            self.child_box_dist2(cb as usize, q, &mut lanes);
            stats.nodes_visited += cnt;
            // Order the sibling group nearest-first (insertion sort on
            // at most eight lanes), then push farthest-first so the
            // nearest child pops next.
            let mut order = [0u8; BRANCH];
            for (j, slot) in order.iter_mut().enumerate().take(cnt) {
                *slot = j as u8;
            }
            for i in 1..cnt {
                let mut j = i;
                while j > 0 && lanes[order[j] as usize] < lanes[order[j - 1] as usize] {
                    order.swap(j, j - 1);
                    j -= 1;
                }
            }
            let bound2 = (bound * bound).min(adm2);
            for &oj in order[..cnt].iter().rev() {
                let d2 = lanes[oj as usize];
                if d2 <= bound2 {
                    stack.push((cb + oj as u32, d2));
                }
            }
        }
    }

    /// Exact scan of one leaf's segments, applying the linear scan's
    /// first-wins tie rule via the carried segment index.
    ///
    /// Candidates are ranked in the squared domain
    /// ([`point_segment_distance2`]) so the square root is paid only on
    /// improvements, not per segment. Squared comparison alone would be
    /// wrong at the last bit: two squared distances an ulp apart can
    /// round to the *same* square root, where the linear scan's tie rule
    /// kicks in. A relative band of `1e-14` around the incumbent is far
    /// wider than the ~1-ulp window in which correctly-rounded square
    /// roots can collide, so outside it the squared order is provably
    /// the rooted order, and inside it the exact rooted rule runs.
    #[inline]
    fn scan_leaf(&self, nid: usize, q: &[f64], cur: &mut Best, stats: &mut QueryStats) {
        const LO: f64 = 1.0 - 1e-14;
        const HI: f64 = 1.0 + 1e-14;
        let (lo, hi) = (self.seg_lo[nid] as usize, self.seg_hi[nid] as usize);
        let w = 2 * self.dim;
        stats.segments_examined += hi - lo;
        // One bounds check for the whole leaf; `chunks_exact` hands the
        // distance kernel fixed-width endpoint rows with no per-segment
        // slice arithmetic.
        for (i, seg) in self.coords[lo * w..hi * w].chunks_exact(w).enumerate() {
            let s = (lo + i) as u32;
            let (a, b) = seg.split_at(self.dim);
            let (dist2, tpar) = point_segment_distance2(q, a, b);
            if dist2 > cur.dist2 * HI {
                continue;
            }
            let dist = dist2.sqrt();
            if dist2 < cur.dist2 * LO || dist < cur.dist || (dist == cur.dist && s < cur.seg) {
                let (d0, d1) = self.seg_dev[s as usize];
                cur.dist = dist;
                cur.dist2 = dist2;
                cur.dev = d0 + tpar * (d1 - d0);
                cur.seg = s;
            }
        }
    }

    /// The `k` best trajectories — plus however many more the winner's
    /// ambiguity set needs — via one global best-first search that
    /// stops as soon as that prefix is provably settled. The returned
    /// ranking is bit-identical to sorting the full
    /// [`SegmentIndex::query`] result by `(distance, trajectory index)`
    /// and truncating (the [`SegmentQuery::topk_per_trajectory`] oracle);
    /// `early_exit` reports whether any work was actually skipped.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or `k == 0`.
    pub fn query_topk(
        &self,
        observed: &Signature,
        k: usize,
        ambiguity_ratio: f64,
    ) -> (TopkRanking, QueryStats) {
        // The search's working sets (frontier, settlement heaps,
        // deviation table, descent stack) live in a per-worker scratch
        // reused across every query the thread runs: after one warm-up
        // query per (thread, shard-size) pair, the only allocation left
        // per call is the returned ranking itself.
        TOPK_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.query_topk_with(observed, k, ambiguity_ratio, &mut scratch),
            // Unreachable re-entrancy (the search calls nothing that
            // queries), but a fresh scratch is always correct.
            Err(_) => {
                self.query_topk_with(observed, k, ambiguity_ratio, &mut TopkScratch::default())
            }
        })
    }

    fn query_topk_with(
        &self,
        observed: &Signature,
        k: usize,
        ambiguity_ratio: f64,
        scratch: &mut TopkScratch,
    ) -> (TopkRanking, QueryStats) {
        assert_eq!(
            observed.dim(),
            self.dim,
            "signature dimension must match the index"
        );
        assert!(k > 0, "top-k needs k >= 1");
        let q = observed.coords();
        let n = self.n_traj;
        let k_eff = k.min(n);
        let mut stats = QueryStats::default();
        let mut ranked: Vec<(usize, f64, f64)> = Vec::with_capacity(k_eff + 4);
        let TopkScratch {
            frontier,
            by_best,
            devs,
            smallest,
            stack,
            grows,
        } = scratch;
        let caps_in = (
            frontier.capacity(),
            by_best.capacity(),
            devs.capacity(),
            smallest.capacity(),
            stack.capacity(),
        );
        frontier.clear();
        by_best.clear();
        smallest.clear();
        stack.clear();
        devs.clear();
        devs.resize(n, 0.0);
        // Everything except the descent stack is bounded by the
        // trajectory count (or k), so one up-front reserve makes every
        // later same-shard query allocation-free; the stack adapts to
        // the deepest subtree actually descended and then sticks.
        frontier.reserve(n);
        by_best.reserve(n);
        smallest.reserve(k_eff + 1);
        // Global frontier over whole unexplored trajectories, tightest
        // known lower bound first. A root's own box is a poor key: a
        // long trajectory's box spans most of the signature space, so
        // the query usually sits *inside* it and the bound degenerates
        // to zero — the admission bound then discards almost nothing
        // and nearly every trajectory gets resolved. One batched test
        // of the root's children instead keys each trajectory by its
        // nearest child box: still a lower bound on the true distance
        // (every segment lives in some child), but tight enough that
        // most of the frontier dies to the admission cut below.
        // Trajectories resolve in full the first time their root is
        // reached, so the frontier never grows: a sorted vec walked by
        // cursor beats a heap, and keys stay squared (monotone in the
        // true distance) so the square root is paid once per
        // settlement check, not once per entry. Keys are the raw IEEE
        // bit patterns: squared distances are always non-negative,
        // where the bit order *is* the numeric order, so sorting and
        // comparing stay in cheap integer land.
        let mut lanes = [0.0f64; BRANCH];
        for &root in &self.roots {
            let nid = root as usize;
            stats.nodes_visited += 1;
            let cb = self.child_base[nid];
            let key = if cb == u32::MAX {
                self.one_box_dist2(nid, q)
            } else {
                let cnt = self.child_count[nid] as usize;
                stats.nodes_visited += cnt;
                self.child_box_dist2(cb as usize, q, &mut lanes);
                let mut min = f64::INFINITY;
                for &d2 in lanes.iter().take(cnt) {
                    min = min.min(d2);
                }
                min
            };
            frontier.push((key.to_bits(), root));
        }
        frontier.sort_unstable();
        let mut cursor = 0usize;
        // Exact per-trajectory results awaiting settlement, nearest
        // first. Each trajectory is resolved in full by one bounded
        // descent the first time its root pops, so entries are unique
        // and final — no staleness bookkeeping.
        // Global admission bound: once k_eff trajectories are resolved,
        // nothing farther than `max(k-th smallest result, smallest
        // result x ambiguity_ratio)` can appear in the returned prefix
        // (the resolved values over-estimate their true distances, so
        // this over-estimates both the k-th true distance and the
        // winner's ambiguity threshold). Subtrees beyond the
        // slack-padded square of that bound are discarded outright.
        let mut best_resolved = f64::INFINITY;
        let mut adm2 = f64::INFINITY;
        let mut stopped_early = false;
        while cursor < frontier.len() {
            let (bd2_bits, root) = frontier[cursor];
            let bd2 = f64::from_bits(bd2_bits);
            if bd2 > adm2 {
                // Sorted frontier: every remaining root is at least this
                // far, so the admission bound discards the whole tail at
                // once. The drain below settles what was resolved.
                break;
            }
            // Everything strictly below the slack-padded frontier bound
            // is exact (no unexplored box can reach it) and ahead of
            // every unresolved trajectory (whose true distance is at
            // least the bound minus rounding): settle it, in the full
            // ranking's (distance, trajectory) order.
            let bound = bd2.sqrt();
            let cut = bound - prune_slack(bound);
            while let Some(&Reverse((bd_bits, ti))) = by_best.peek() {
                let bd = f64::from_bits(bd_bits);
                if bd >= cut {
                    break;
                }
                by_best.pop();
                ranked.push((ti as usize, bd, devs[ti as usize]));
            }
            if ranked.len() >= k_eff {
                let threshold = ranked[0].1.max(1e-12) * ambiguity_ratio;
                if threshold < cut {
                    stopped_early = true;
                    break;
                }
            }
            cursor += 1;
            let ti = self.node_traj[root as usize] as usize;
            let mut cur = Best::none();
            self.descend(root, q, &mut cur, stack, &mut stats, adm2);
            devs[ti] = cur.dev;
            let dist_bits = cur.dist.to_bits();
            by_best.push(Reverse((dist_bits, ti as u32)));
            best_resolved = best_resolved.min(cur.dist);
            if smallest.len() < k_eff {
                smallest.push(dist_bits);
            } else if let Some(mut top) = smallest.peek_mut() {
                if dist_bits < *top {
                    *top = dist_bits;
                }
            }
            if smallest.len() == k_eff {
                let kth = f64::from_bits(*smallest.peek().expect("k_eff >= 1"));
                let a = kth.max(best_resolved.max(1e-12) * ambiguity_ratio);
                let pad = a + prune_slack(a);
                adm2 = pad * pad;
            }
        }
        if !stopped_early {
            // Frontier exhausted: settle every resolved trajectory in
            // (distance, trajectory) order. Admission-discarded
            // trajectories are provably outside the kept prefix, and
            // any admission-truncated value sorts beyond it, so the
            // trim below removes them.
            while let Some(Reverse((bd_bits, ti))) = by_best.pop() {
                ranked.push((ti as usize, f64::from_bits(bd_bits), devs[ti as usize]));
            }
        }
        // Trim settled extras down to the oracle's exact prefix length.
        let keep = topk_prefix_len(&ranked, k_eff, ambiguity_ratio);
        ranked.truncate(keep);
        stats.early_exit = ranked.len() < n;
        if stats.early_exit {
            if let Some(c) = &self.counters {
                c.topk_early_exits.inc();
            }
        }
        if caps_in
            != (
                frontier.capacity(),
                by_best.capacity(),
                devs.capacity(),
                smallest.capacity(),
                stack.capacity(),
            )
        {
            *grows += 1;
        }
        self.record(&stats);
        (
            TopkRanking {
                early_exit: stats.early_exit,
                ranked,
            },
            stats,
        )
    }

    /// Adds one query's stats to the attached counters, if any.
    #[inline]
    fn record(&self, stats: &QueryStats) {
        if let Some(c) = &self.counters {
            c.nodes_visited.add(stats.nodes_visited as u64);
            c.segments_examined.add(stats.segments_examined as u64);
        }
    }
}

/// Length of the prefix a top-k ranking keeps: at least `min(k, n)`
/// entries and every entry inside the winner's ambiguity set — the same
/// rule as the `SegmentQuery::topk_per_trajectory` default.
fn topk_prefix_len(ranked: &[(usize, f64, f64)], k: usize, ambiguity_ratio: f64) -> usize {
    let n = ranked.len();
    if n == 0 {
        return 0;
    }
    let threshold = ranked[0].1.max(1e-12) * ambiguity_ratio;
    let mut keep = k.min(n);
    while keep < n && ranked[keep].1 <= threshold {
        keep += 1;
    }
    keep
}

/// Per-worker reusable working sets for [`SegmentIndex::query_topk`]:
/// the trajectory frontier, the two settlement heaps, the deviation
/// table, and the descent stack. One instance lives in a thread-local
/// and is cleared (capacity kept) at the top of every query, so a
/// batch worker allocates these once and then runs allocation-free —
/// `grows` counts the queries that had to enlarge *any* of them, which
/// a debug test pins to warm-up only.
#[derive(Default)]
struct TopkScratch {
    frontier: Vec<(u64, u32)>,
    by_best: BinaryHeap<Reverse<(u64, u32)>>,
    devs: Vec<f64>,
    smallest: BinaryHeap<u64>,
    stack: Vec<(u32, f64)>,
    grows: u64,
}

thread_local! {
    static TOPK_SCRATCH: RefCell<TopkScratch> = RefCell::new(TopkScratch::default());
}

/// How many [`SegmentIndex::query_topk`] calls on *this thread* had to
/// grow the reused scratch. Steady state is a constant: after one
/// warm-up query per shard size, subsequent queries reuse capacity.
/// Exposed for tests and debug assertions, not as a metric.
pub fn topk_scratch_grows() -> u64 {
    TOPK_SCRATCH.with(|cell| cell.borrow().grows)
}

/// Running per-trajectory best during descent; `seg` breaks exact
/// distance ties toward the lowest segment index, as the linear scan's
/// first-wins rule does. `dist` is always exactly `dist2.sqrt()` —
/// [`SegmentIndex::scan_leaf`] ranks candidates on `dist2` and keeps the
/// rooted value for the pruning bound and the reported result.
struct Best {
    dist: f64,
    dist2: f64,
    dev: f64,
    seg: u32,
}

impl Best {
    fn none() -> Self {
        Best {
            dist: f64::INFINITY,
            dist2: f64::INFINITY,
            dev: 0.0,
            seg: u32::MAX,
        }
    }
}

impl SegmentQuery for SegmentIndex {
    fn best_per_trajectory(&self, set: &TrajectorySet, observed: &Signature) -> Vec<(f64, f64)> {
        assert!(
            set.len() == self.n_traj && set.dim() == self.dim && set.total_segments() == self.len(),
            "index was built over a different trajectory set"
        );
        self.query(observed)
    }

    fn topk_per_trajectory(
        &self,
        set: &TrajectorySet,
        observed: &Signature,
        k: usize,
        ambiguity_ratio: f64,
    ) -> TopkRanking {
        assert!(
            set.len() == self.n_traj && set.dim() == self.dim && set.total_segments() == self.len(),
            "index was built over a different trajectory set"
        );
        self.query_topk(observed, k, ambiguity_ratio).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{Diagnoser, DiagnoserConfig, FaultTrajectory, LinearScan, TestVector};

    fn sig(x: f64, y: f64) -> Signature {
        Signature::new(vec![x, y])
    }

    /// Two crossing trajectories, as in the ft-core diagnosis tests.
    fn cross_set() -> TrajectorySet {
        let a = FaultTrajectory::new(
            "A",
            vec![-20.0, -10.0, 0.0, 10.0, 20.0],
            vec![
                sig(-4.0, 0.0),
                sig(-2.0, 0.0),
                sig(0.0, 0.0),
                sig(2.0, 0.0),
                sig(4.0, 0.0),
            ],
        );
        let b = FaultTrajectory::new(
            "B",
            vec![-20.0, -10.0, 0.0, 10.0, 20.0],
            vec![
                sig(0.0, -4.0),
                sig(0.0, -2.0),
                sig(0.0, 0.0),
                sig(0.0, 2.0),
                sig(0.0, 4.0),
            ],
        );
        TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![a, b])
    }

    /// Long dense trajectories fanned around the origin.
    fn fan_set(n: usize) -> TrajectorySet {
        let mut trajectories = Vec::new();
        for i in 0..n {
            let angle = i as f64 * 0.19;
            let (s, c) = angle.sin_cos();
            let devs: Vec<f64> = (-40..=40).map(|k| k as f64).collect();
            let points: Vec<Signature> = (-40..=40)
                .map(|k| {
                    let r = k as f64 / 5.0;
                    sig(c * r + 0.001 * i as f64, s * r)
                })
                .collect();
            trajectories.push(FaultTrajectory::new(format!("T{i}"), devs, points));
        }
        TrajectorySet::new(TestVector::pair(1.0, 2.0), trajectories)
    }

    #[test]
    fn index_shape() {
        let set = cross_set();
        let idx = SegmentIndex::build(&set);
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.dim(), 2);
        assert_eq!(idx.trajectory_count(), 2);
        assert!(idx.node_count() >= 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn sibling_groups_are_contiguous_and_bfs_ordered() {
        let set = fan_set(5);
        let idx = SegmentIndex::with_leaf_size(&set, 3);
        for nid in 0..idx.node_count() {
            let cb = idx.child_base[nid];
            if cb == u32::MAX {
                assert_eq!(idx.child_count[nid], 0);
                continue;
            }
            let cnt = idx.child_count[nid] as usize;
            assert!((2..=BRANCH).contains(&cnt));
            // Children follow their parent and partition its range.
            assert!(cb as usize > nid);
            assert_eq!(idx.seg_lo[cb as usize], idx.seg_lo[nid]);
            assert_eq!(idx.seg_hi[cb as usize + cnt - 1], idx.seg_hi[nid]);
            for c in 0..cnt - 1 {
                assert_eq!(idx.seg_hi[cb as usize + c], idx.seg_lo[cb as usize + c + 1]);
                assert_eq!(idx.node_traj[cb as usize + c], idx.node_traj[nid]);
            }
        }
    }

    #[test]
    fn union_boxes_match_rescan_oracle() {
        // The release-build check of what debug builds assert at build
        // time: internal boxes built as child unions must be *exactly*
        // the boxes a full endpoint rescan produces.
        for leaf in [1, 2, 4, 7] {
            let set = fan_set(9);
            let idx = SegmentIndex::with_leaf_size(&set, leaf);
            for nid in 0..idx.node_count() {
                for k in 0..idx.dim() {
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for s in idx.seg_lo[nid]..idx.seg_hi[nid] {
                        let base = s as usize * 2 * idx.dim();
                        for &x in &[idx.coords[base + k], idx.coords[base + idx.dim() + k]] {
                            lo = lo.min(x);
                            hi = hi.max(x);
                        }
                    }
                    assert_eq!(idx.planes[2 * k * idx.stride + nid], lo);
                    assert_eq!(idx.planes[(2 * k + 1) * idx.stride + nid], hi);
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_batch_matches_scalar_reference() {
        let set = fan_set(13);
        let idx = SegmentIndex::with_leaf_size(&set, 2);
        let queries = [
            sig(0.4, 0.1),
            sig(-3.0, 7.5),
            sig(0.0, 0.0),
            sig(123.0, -456.0),
        ];
        let mut checked = 0;
        for nid in 0..idx.node_count() {
            let cb = idx.child_base[nid];
            if cb == u32::MAX {
                continue;
            }
            for q in &queries {
                let mut scalar = [0.0f64; BRANCH];
                let mut simd = [0.0f64; BRANCH];
                SegmentIndex::batch_box_dist2_scalar(
                    &idx.planes,
                    idx.stride,
                    cb as usize,
                    q.coords(),
                    &mut scalar,
                );
                SegmentIndex::batch_box_dist2_sse2(
                    &idx.planes,
                    idx.stride,
                    cb as usize,
                    q.coords(),
                    &mut simd,
                );
                assert_eq!(scalar, simd, "lane drift at node {nid} query {q}");
                // The scalar single-box twin must agree lane for lane
                // on the real children (it keys the top-k frontier).
                let cnt = idx.child_count[nid] as usize;
                for (j, &lane) in simd.iter().enumerate().take(cnt) {
                    let one = idx.one_box_dist2(cb as usize + j, q.coords());
                    assert_eq!(one, lane, "single-box drift at node {nid} lane {j}");
                }
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn indexed_matches_linear_exactly() {
        let set = cross_set();
        let queries = [
            sig(3.0, 0.2),
            sig(-2.0, 0.0),
            sig(1.0, 1.0),
            sig(0.5, 3.0),
            sig(10.0, 0.0),
            sig(-7.3, -9.9),
            sig(0.0, 0.0),
        ];
        // Over a spread of leaf sizes, including degenerate 1-segment
        // leaves and everything-in-one-leaf.
        for leaf in [1, 2, 3, 8, 64] {
            let idx = SegmentIndex::with_leaf_size(&set, leaf);
            for q in &queries {
                let lin = LinearScan.best_per_trajectory(&set, q);
                let fast = idx.best_per_trajectory(&set, q);
                assert_eq!(lin, fast, "divergence at {q} (leaf {leaf})");
            }
        }
    }

    #[test]
    fn diagnose_with_index_is_byte_identical() {
        let set = cross_set();
        let idx = SegmentIndex::build(&set);
        let diag = Diagnoser::new(set, DiagnoserConfig::default());
        for q in [sig(3.0, 0.2), sig(1.0, 1.0), sig(-0.1, 2.3)] {
            assert_eq!(diag.diagnose(&q), diag.diagnose_with(&idx, &q));
        }
    }

    #[test]
    fn pruning_actually_skips_segments() {
        // Long dense trajectories: a query near one end must not touch
        // the far segments of any trajectory.
        let set = fan_set(32);
        let idx = SegmentIndex::build(&set);
        let (best, stats) = idx.query_stats(&sig(0.4, 0.1));
        assert_eq!(best.len(), 32);
        assert!(
            stats.segments_examined < idx.len() / 2,
            "weak pruning: examined {} of {}",
            stats.segments_examined,
            idx.len()
        );
        assert!(!stats.early_exit);
        // Exactness is not traded away.
        let lin = LinearScan.best_per_trajectory(&set, &sig(0.4, 0.1));
        assert_eq!(lin, best);
    }

    #[test]
    fn degenerate_flat_set_still_works() {
        // All points on one axis: zero extent along y.
        let t = FaultTrajectory::new(
            "A",
            vec![-10.0, 0.0, 10.0],
            vec![sig(-1.0, 0.0), sig(0.0, 0.0), sig(1.0, 0.0)],
        );
        let set = TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![t]);
        let idx = SegmentIndex::build(&set);
        let lin = LinearScan.best_per_trajectory(&set, &sig(0.3, 5.0));
        assert_eq!(idx.query(&sig(0.3, 5.0)), lin);
    }

    #[test]
    fn zero_length_segments_are_indexed_exactly() {
        // Repeated points produce zero-length segments whose boxes are
        // single points; results must still match the linear scan
        // bit-for-bit (including the first-wins tie rule).
        let t = FaultTrajectory::new(
            "A",
            vec![-10.0, -5.0, 0.0, 5.0, 10.0],
            vec![
                sig(1.0, 1.0),
                sig(1.0, 1.0),
                sig(1.0, 1.0),
                sig(2.0, 2.0),
                sig(2.0, 2.0),
            ],
        );
        let set = TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![t]);
        for leaf in [1, 2, 64] {
            let idx = SegmentIndex::with_leaf_size(&set, leaf);
            for q in [sig(1.0, 1.0), sig(0.0, 0.0), sig(3.0, 3.0)] {
                assert_eq!(idx.query(&q), LinearScan.best_per_trajectory(&set, &q));
            }
        }
    }

    #[test]
    fn rebuild_trajectory_matches_fresh_build() {
        let set = fan_set(8);
        let mut idx = SegmentIndex::with_leaf_size(&set, 3);
        // Re-derive trajectory 5 with shifted geometry (same topology).
        let old = &set.trajectories()[5];
        let moved = FaultTrajectory::new(
            old.component(),
            old.deviations_pct().to_vec(),
            old.points()
                .iter()
                .map(|p| sig(p.coords()[0] + 0.75, p.coords()[1] - 1.25))
                .collect(),
        );
        let mut trajectories: Vec<FaultTrajectory> = set.trajectories().to_vec();
        trajectories[5] = moved.clone();
        let modified = TrajectorySet::new(set.test_vector().clone(), trajectories);
        idx.rebuild_trajectory(5, &moved);
        let fresh = SegmentIndex::with_leaf_size(&modified, 3);
        assert_eq!(idx.planes, fresh.planes);
        assert_eq!(idx.coords, fresh.coords);
        assert_eq!(idx.seg_dev, fresh.seg_dev);
        for q in [sig(0.4, 0.1), sig(-2.0, 3.0), sig(5.5, -5.5)] {
            assert_eq!(idx.query(&q), LinearScan.best_per_trajectory(&modified, &q));
        }
    }

    #[test]
    #[should_panic(expected = "same topology")]
    fn rebuild_rejects_changed_topology() {
        let set = fan_set(4);
        let mut idx = SegmentIndex::build(&set);
        let short = FaultTrajectory::new(
            "T0",
            vec![-10.0, 0.0, 10.0],
            vec![sig(0.0, 0.0), sig(1.0, 0.0), sig(2.0, 0.0)],
        );
        idx.rebuild_trajectory(0, &short);
    }

    #[test]
    fn topk_matches_full_ranking_prefix() {
        let set = fan_set(32);
        let idx = SegmentIndex::build(&set);
        let ratio = DiagnoserConfig::default().ambiguity_ratio;
        for q in &[sig(0.4, 0.1), sig(-6.0, 2.0), sig(0.0, 7.9), sig(3.3, 3.3)] {
            let full = LinearScan.topk_per_trajectory(&set, q, usize::MAX, ratio);
            for k in [1, 2, 5, 31, 32, 1000] {
                let (topk, stats) = idx.query_topk(q, k, ratio);
                let oracle = LinearScan.topk_per_trajectory(&set, q, k, ratio);
                assert_eq!(topk, oracle, "oracle drift at {q} k={k}");
                assert_eq!(
                    topk.ranked,
                    full.ranked[..topk.ranked.len()],
                    "not a prefix at {q} k={k}"
                );
                assert_eq!(stats.early_exit, topk.early_exit);
            }
        }
    }

    #[test]
    fn topk_early_exit_saves_work() {
        let set = fan_set(32);
        let idx = SegmentIndex::build(&set);
        let q = sig(0.4, 0.1);
        let (_, full_stats) = idx.query_stats(&q);
        let (topk, stats) = idx.query_topk(&q, 1, 1.05);
        assert!(topk.early_exit, "expected an early exit on a fan of 32");
        assert!(
            stats.segments_examined < full_stats.segments_examined,
            "top-k examined {} segments, full ranking {}",
            stats.segments_examined,
            full_stats.segments_examined
        );
    }

    #[test]
    fn topk_with_k_at_universe_is_the_full_ranking() {
        let set = fan_set(12);
        let idx = SegmentIndex::build(&set);
        let q = sig(-1.0, 2.5);
        let (topk, stats) = idx.query_topk(&q, 12, 1.5);
        assert!(!topk.early_exit);
        assert!(!stats.early_exit);
        assert_eq!(topk.ranked.len(), 12);
        let full = idx.query(&q);
        for &(ti, dist, dev) in &topk.ranked {
            assert_eq!((dist, dev), full[ti]);
        }
    }

    #[test]
    fn diagnose_topk_through_index_matches_linear_oracle() {
        let set = fan_set(16);
        let idx = SegmentIndex::build(&set);
        let diag = Diagnoser::new(set, DiagnoserConfig::default());
        for q in [sig(0.4, 0.1), sig(-2.0, -2.0), sig(6.0, 1.0)] {
            let full = diag.diagnose(&q);
            for k in [1, 3, 16] {
                let fast = diag.diagnose_topk(&idx, &q, k);
                let oracle = diag.diagnose_topk(&LinearScan, &q, k);
                assert_eq!(fast, oracle, "index/oracle drift at {q} k={k}");
                assert_eq!(fast.best(), full.best());
                assert_eq!(fast.ambiguity_set(), full.ambiguity_set());
            }
        }
    }

    #[test]
    fn attached_counters_accumulate_query_work() {
        let registry = crate::obs::MetricsRegistry::new();
        let set = fan_set(8);
        let mut idx = SegmentIndex::build(&set);
        idx.set_counters(IndexCounters {
            nodes_visited: registry.counter("engine_index_nodes_visited_total"),
            segments_examined: registry.counter("engine_index_segments_examined_total"),
            topk_early_exits: registry.counter("engine_topk_early_exit_total"),
        });
        let q = sig(0.4, 0.1);
        let (_, full) = idx.query_stats(&q);
        let (_, topk) = idx.query_topk(&q, 1, 1.05);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("engine_index_nodes_visited_total"),
            Some((full.nodes_visited + topk.nodes_visited) as u64)
        );
        assert_eq!(
            snap.counter("engine_index_segments_examined_total"),
            Some((full.segments_examined + topk.segments_examined) as u64)
        );
        assert_eq!(
            snap.counter("engine_topk_early_exit_total"),
            Some(u64::from(topk.early_exit))
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_rejected() {
        let set = TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![]);
        let _ = SegmentIndex::build(&set);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn dimension_mismatch_rejected() {
        let idx = SegmentIndex::build(&cross_set());
        let _ = idx.query(&Signature::new(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn topk_rejects_k_zero() {
        let idx = SegmentIndex::build(&cross_set());
        let _ = idx.query_topk(&sig(1.0, 1.0), 0, 1.5);
    }

    #[test]
    fn topk_scratch_is_allocation_free_after_warmup() {
        // Run a batch on a dedicated thread so no other test's queries
        // perturb this thread-local's grow counter.
        std::thread::spawn(|| {
            let set = fan_set(24);
            let idx = SegmentIndex::build(&set);
            let batch = |idx: &SegmentIndex| {
                for i in 0..200usize {
                    let x = (i as f64 * 0.37).sin() * 5.0;
                    let y = (i as f64 * 0.61).cos() * 5.0;
                    let k = 1 + i % 3;
                    let (ranking, _) = idx.query_topk(&sig(x, y), k, 1.0 + (i % 4) as f64 * 0.25);
                    assert!(!ranking.ranked.is_empty());
                }
            };
            // First pass warms the scratch (the descent stack adapts to
            // the deepest subtree the batch actually touches).
            batch(&idx);
            let warmed = topk_scratch_grows();
            assert!(warmed >= 1, "warm-up must have allocated something");
            // Steady state: an identical batch must never enlarge any
            // reused container — zero allocations beyond the returned
            // rankings themselves.
            batch(&idx);
            assert_eq!(
                topk_scratch_grows(),
                warmed,
                "steady-state top-k queries must not grow the scratch"
            );
        })
        .join()
        .unwrap();
    }
}
