//! Spatial index over trajectory segments: a forest of per-trajectory
//! AABB trees in signature space.
//!
//! The linear diagnosis path scans every segment of every trajectory for
//! each query. A full ranked diagnosis needs the **exact** nearest
//! segment of *every* trajectory (not just the globally closest one), so
//! the index is organised the way the answer is: per trajectory. Each
//! trajectory's segments — contiguous along its polyline — are boxed
//! into a balanced binary AABB tree (a k-d-style structure over
//! signature space), and a query runs branch-and-bound down each tree:
//! a subtree is skipped only when the distance from the observation to
//! its bounding box (a lower bound on the distance to every segment
//! inside, with a safety margin on top) already exceeds the best
//! distance found for that trajectory. Per trajectory this is
//! `O(log n + k)` instead of `O(n)`, independent of how far the
//! observation sits from the rest of the bank — the property a *global*
//! spatial structure cannot offer for full rankings, where the search
//! radius is set by the worst component.
//!
//! Descent is best-first (the child box nearer the observation is
//! explored before its sibling), so the running best converges in one
//! dive and the sibling subtrees prune at the highest possible level.
//! Results are nonetheless **bit-identical** to the linear scan:
//!
//! * distances come from the same [`point_segment_distance`] calls on
//!   the same coordinates;
//! * the running best carries the segment index it came from, and a
//!   later segment replaces it only with a strictly smaller distance or
//!   an equal distance at a smaller index — the same winner the
//!   linear scan's first-wins rule picks, independent of visit order;
//! * a pruned subtree satisfies `box distance > best + slack`, and the
//!   box distance lower-bounds every segment inside, so a pruned
//!   segment could never have improved *or tied* the running best.

use ft_core::geometry::point_segment_distance;
use ft_core::{SegmentQuery, Signature, TrajectorySet};

/// Default maximum number of segments per leaf node.
const DEFAULT_LEAF_SIZE: usize = 4;

/// Conservative slack added to pruning bounds so floating-point rounding
/// can never skip a segment the linear scan would have preferred.
fn prune_slack(d: f64) -> f64 {
    1e-9 + 1e-12 * d.abs()
}

/// Instrumentation of one index query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Tree nodes whose bounding box was tested.
    pub nodes_visited: usize,
    /// Segments whose exact distance was computed.
    pub segments_examined: usize,
}

/// One AABB-tree node covering the contiguous segment range
/// `[seg_lo, seg_hi)` of a single trajectory. `left == u32::MAX` marks
/// a leaf; the bounding box lives in the parallel `boxes` array.
#[derive(Debug, Clone, Copy)]
struct Node {
    left: u32,
    right: u32,
    seg_lo: u32,
    seg_hi: u32,
}

/// A per-trajectory AABB-tree index over all segments of a
/// [`TrajectorySet`].
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    dim: usize,
    n_traj: usize,
    /// Root node id per trajectory.
    roots: Vec<u32>,
    /// Tree nodes, all trajectories pooled.
    nodes: Vec<Node>,
    /// Node bounding boxes, stride `2 * dim`: lower then upper corner.
    boxes: Vec<f64>,
    /// Segment id → (start, end) deviation percentages; ids are
    /// trajectory-major, matching `TrajectorySet::all_segments`.
    seg_dev: Vec<(f64, f64)>,
    /// Flat endpoint store, stride `2 * dim`: `a` then `b`.
    coords: Vec<f64>,
}

impl SegmentIndex {
    /// Builds the index with the default leaf size.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty.
    pub fn build(set: &TrajectorySet) -> Self {
        Self::with_leaf_size(set, DEFAULT_LEAF_SIZE)
    }

    /// Builds the index with an explicit maximum leaf size (smaller
    /// leaves prune harder but test more boxes).
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty or `leaf_size` is zero.
    pub fn with_leaf_size(set: &TrajectorySet, leaf_size: usize) -> Self {
        assert!(!set.is_empty(), "cannot index an empty trajectory set");
        assert!(leaf_size > 0, "leaf size must be positive");
        let dim = set.dim();
        let mut index = SegmentIndex {
            dim,
            n_traj: set.len(),
            roots: Vec::with_capacity(set.len()),
            nodes: Vec::new(),
            boxes: Vec::new(),
            seg_dev: Vec::new(),
            coords: Vec::new(),
        };
        for (_, _, d0, p0, d1, p1) in set.all_segments() {
            index.seg_dev.push((d0, d1));
            index.coords.extend_from_slice(p0.coords());
            index.coords.extend_from_slice(p1.coords());
        }
        let mut seg_base = 0u32;
        for t in set.trajectories() {
            let n = t.segment_count() as u32;
            let root = index.build_node(seg_base, seg_base + n, leaf_size as u32);
            index.roots.push(root);
            seg_base += n;
        }
        index
    }

    /// Recursively builds the subtree over global segment ids
    /// `[seg_lo, seg_hi)` and returns its node id.
    fn build_node(&mut self, seg_lo: u32, seg_hi: u32, leaf_size: u32) -> u32 {
        let (left, right) = if seg_hi - seg_lo <= leaf_size {
            (u32::MAX, u32::MAX)
        } else {
            let mid = seg_lo + (seg_hi - seg_lo) / 2;
            (
                self.build_node(seg_lo, mid, leaf_size),
                self.build_node(mid, seg_hi, leaf_size),
            )
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            left,
            right,
            seg_lo,
            seg_hi,
        });
        // Bounding box over every endpoint of the range.
        let lo_at = self.boxes.len();
        self.boxes
            .extend(std::iter::repeat_n(f64::INFINITY, self.dim));
        self.boxes
            .extend(std::iter::repeat_n(f64::NEG_INFINITY, self.dim));
        for s in seg_lo..seg_hi {
            let base = s as usize * 2 * self.dim;
            for k in 0..self.dim {
                for &x in &[self.coords[base + k], self.coords[base + self.dim + k]] {
                    self.boxes[lo_at + k] = self.boxes[lo_at + k].min(x);
                    self.boxes[lo_at + self.dim + k] = self.boxes[lo_at + self.dim + k].max(x);
                }
            }
        }
        id
    }

    /// Number of indexed segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.seg_dev.len()
    }

    /// `true` when no segments are indexed (never, for built indexes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seg_dev.is_empty()
    }

    /// Signature-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trajectories covered.
    #[inline]
    pub fn trajectory_count(&self) -> usize {
        self.n_traj
    }

    /// Total tree nodes across all trajectories.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Distance from `q` to node `n`'s bounding box (zero inside).
    fn box_distance(&self, n: usize, q: &[f64]) -> f64 {
        let base = n * 2 * self.dim;
        let mut d2 = 0.0;
        for (k, &qk) in q.iter().enumerate() {
            let lo = self.boxes[base + k];
            let hi = self.boxes[base + self.dim + k];
            let delta = (lo - qk).max(qk - hi).max(0.0);
            d2 += delta * delta;
        }
        d2.sqrt()
    }

    /// Best `(distance, deviation)` per trajectory, as
    /// [`SegmentQuery::best_per_trajectory`], discarding statistics.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn query(&self, observed: &Signature) -> Vec<(f64, f64)> {
        self.query_stats(observed).0
    }

    /// [`SegmentIndex::query`] plus instrumentation: how many node boxes
    /// were tested and how many exact segment distances were computed.
    /// On a large bank `segments_examined` is a small fraction of
    /// [`SegmentIndex::len`] — that fraction *is* the speed-up.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn query_stats(&self, observed: &Signature) -> (Vec<(f64, f64)>, QueryStats) {
        assert_eq!(
            observed.dim(),
            self.dim,
            "signature dimension must match the index"
        );
        let q = observed.coords();
        let mut stats = QueryStats::default();
        let mut best = Vec::with_capacity(self.n_traj);

        for &root in &self.roots {
            let mut cur = Best {
                dist: f64::INFINITY,
                dev: 0.0,
                seg: u32::MAX,
            };
            stats.nodes_visited += 1;
            self.descend(root as usize, q, &mut cur, &mut stats);
            best.push((cur.dist, cur.dev));
        }
        (best, stats)
    }

    /// Best-first branch-and-bound over one subtree. The caller has
    /// already established that the subtree may matter (or that the
    /// best is still infinite).
    fn descend(&self, nid: usize, q: &[f64], cur: &mut Best, stats: &mut QueryStats) {
        let node = self.nodes[nid];
        if node.left == u32::MAX {
            for s in node.seg_lo..node.seg_hi {
                let base = s as usize * 2 * self.dim;
                let a = &self.coords[base..base + self.dim];
                let b = &self.coords[base + self.dim..base + 2 * self.dim];
                let (dist, tpar) = point_segment_distance(q, a, b);
                stats.segments_examined += 1;
                if dist < cur.dist || (dist == cur.dist && s < cur.seg) {
                    let (d0, d1) = self.seg_dev[s as usize];
                    cur.dist = dist;
                    cur.dev = d0 + tpar * (d1 - d0);
                    cur.seg = s;
                }
            }
            return;
        }
        let (l, r) = (node.left as usize, node.right as usize);
        let dl = self.box_distance(l, q);
        let dr = self.box_distance(r, q);
        stats.nodes_visited += 2;
        let (first, d_first, second, d_second) = if dl <= dr {
            (l, dl, r, dr)
        } else {
            (r, dr, l, dl)
        };
        if d_first <= cur.dist + prune_slack(cur.dist) {
            self.descend(first, q, cur, stats);
        }
        if d_second <= cur.dist + prune_slack(cur.dist) {
            self.descend(second, q, cur, stats);
        }
    }
}

/// Running per-trajectory best during descent; `seg` breaks exact
/// distance ties toward the lowest segment index, as the linear scan's
/// first-wins rule does.
struct Best {
    dist: f64,
    dev: f64,
    seg: u32,
}

impl SegmentQuery for SegmentIndex {
    fn best_per_trajectory(&self, set: &TrajectorySet, observed: &Signature) -> Vec<(f64, f64)> {
        assert!(
            set.len() == self.n_traj && set.dim() == self.dim && set.total_segments() == self.len(),
            "index was built over a different trajectory set"
        );
        self.query(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::{Diagnoser, DiagnoserConfig, FaultTrajectory, LinearScan, TestVector};

    fn sig(x: f64, y: f64) -> Signature {
        Signature::new(vec![x, y])
    }

    /// Two crossing trajectories, as in the ft-core diagnosis tests.
    fn cross_set() -> TrajectorySet {
        let a = FaultTrajectory::new(
            "A",
            vec![-20.0, -10.0, 0.0, 10.0, 20.0],
            vec![
                sig(-4.0, 0.0),
                sig(-2.0, 0.0),
                sig(0.0, 0.0),
                sig(2.0, 0.0),
                sig(4.0, 0.0),
            ],
        );
        let b = FaultTrajectory::new(
            "B",
            vec![-20.0, -10.0, 0.0, 10.0, 20.0],
            vec![
                sig(0.0, -4.0),
                sig(0.0, -2.0),
                sig(0.0, 0.0),
                sig(0.0, 2.0),
                sig(0.0, 4.0),
            ],
        );
        TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![a, b])
    }

    #[test]
    fn index_shape() {
        let set = cross_set();
        let idx = SegmentIndex::build(&set);
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.dim(), 2);
        assert_eq!(idx.trajectory_count(), 2);
        assert!(idx.node_count() >= 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn indexed_matches_linear_exactly() {
        let set = cross_set();
        let queries = [
            sig(3.0, 0.2),
            sig(-2.0, 0.0),
            sig(1.0, 1.0),
            sig(0.5, 3.0),
            sig(10.0, 0.0),
            sig(-7.3, -9.9),
            sig(0.0, 0.0),
        ];
        // Over a spread of leaf sizes, including degenerate 1-segment
        // leaves and everything-in-one-leaf.
        for leaf in [1, 2, 3, 8, 64] {
            let idx = SegmentIndex::with_leaf_size(&set, leaf);
            for q in &queries {
                let lin = LinearScan.best_per_trajectory(&set, q);
                let fast = idx.best_per_trajectory(&set, q);
                assert_eq!(lin, fast, "divergence at {q} (leaf {leaf})");
            }
        }
    }

    #[test]
    fn diagnose_with_index_is_byte_identical() {
        let set = cross_set();
        let idx = SegmentIndex::build(&set);
        let diag = Diagnoser::new(set, DiagnoserConfig::default());
        for q in [sig(3.0, 0.2), sig(1.0, 1.0), sig(-0.1, 2.3)] {
            assert_eq!(diag.diagnose(&q), diag.diagnose_with(&idx, &q));
        }
    }

    #[test]
    fn pruning_actually_skips_segments() {
        // Long dense trajectories: a query near one end must not touch
        // the far segments of any trajectory.
        let mut trajectories = Vec::new();
        for i in 0..32 {
            let angle = i as f64 * 0.19;
            let (s, c) = angle.sin_cos();
            let devs: Vec<f64> = (-40..=40).map(|k| k as f64).collect();
            let points: Vec<Signature> = (-40..=40)
                .map(|k| {
                    let r = k as f64 / 5.0;
                    sig(c * r + 0.001 * i as f64, s * r)
                })
                .collect();
            trajectories.push(FaultTrajectory::new(format!("T{i}"), devs, points));
        }
        let set = TrajectorySet::new(TestVector::pair(1.0, 2.0), trajectories);
        let idx = SegmentIndex::build(&set);
        let (best, stats) = idx.query_stats(&sig(0.4, 0.1));
        assert_eq!(best.len(), 32);
        assert!(
            stats.segments_examined < idx.len() / 2,
            "weak pruning: examined {} of {}",
            stats.segments_examined,
            idx.len()
        );
        // Exactness is not traded away.
        let lin = LinearScan.best_per_trajectory(&set, &sig(0.4, 0.1));
        assert_eq!(lin, best);
    }

    #[test]
    fn degenerate_flat_set_still_works() {
        // All points on one axis: zero extent along y.
        let t = FaultTrajectory::new(
            "A",
            vec![-10.0, 0.0, 10.0],
            vec![sig(-1.0, 0.0), sig(0.0, 0.0), sig(1.0, 0.0)],
        );
        let set = TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![t]);
        let idx = SegmentIndex::build(&set);
        let lin = LinearScan.best_per_trajectory(&set, &sig(0.3, 5.0));
        assert_eq!(idx.query(&sig(0.3, 5.0)), lin);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_rejected() {
        let set = TrajectorySet::new(TestVector::pair(1.0, 2.0), vec![]);
        let _ = SegmentIndex::build(&set);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn dimension_mismatch_rejected() {
        let idx = SegmentIndex::build(&cross_set());
        let _ = idx.query(&Signature::new(vec![1.0]));
    }
}
