//! The trajectory bank: the offline phase's artifacts, persisted.
//!
//! A bank packages a [`FaultDictionary`] (the expensive fault-simulation
//! product) with the [`TrajectorySet`] materialised at the deployed test
//! vector — and, optionally, a [`MultiFaultDictionary`] — so the online
//! phase loads everything from disk instead of re-simulating.
//! Serialisation uses the sectioned v2 [`codec`](crate::codec) container
//! (one type-tagged, independently checksummed section per artifact;
//! unknown sections are skipped); legacy v1 monolithic banks still load.
//! Every structural invariant is re-checked on load before any panicking
//! constructor runs, so a hostile or corrupt file yields a
//! [`CodecError`], never a panic.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use ft_circuit::Probe;
use ft_core::{
    trajectories_from_dictionary, FaultTrajectory, Signature, TestVector, TrajectorySet,
};
use ft_faults::{
    DeviationGrid, DictionaryEntry, FaultDictionary, FaultUniverse, MultiFault,
    MultiFaultDictionary, MultiFaultEntry, ParametricFault,
};
use ft_numerics::{FrequencyGrid, Spacing};

use crate::codec::{
    peek_version, CodecError, Container, ContainerBuilder, Decoder, Encoder, SectionTable,
    BANK_VERSION, BANK_VERSION_V1, SECTION_DICTIONARY, SECTION_MULTIFAULT, SECTION_TRAJECTORIES,
};
use crate::mmap::{FileGen, Mmap};
use crate::obs::Counter;

/// Probe encoding tags.
const PROBE_NODE: u8 = 0;
const PROBE_DIFFERENTIAL: u8 = 1;

/// Spacing encoding tags.
const SPACING_LINEAR: u8 = 0;
const SPACING_LOGARITHMIC: u8 = 1;

fn ensure(cond: bool, what: &str) -> Result<(), CodecError> {
    if cond {
        Ok(())
    } else {
        Err(CodecError::Malformed(what.into()))
    }
}

/// A persistent diagnosis artifact: fault dictionary + the trajectory
/// set of the deployed test vector, plus an optional multi-fault
/// dictionary riding along in its own container section.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryBank {
    dict: FaultDictionary,
    set: TrajectorySet,
    multifault: Option<MultiFaultDictionary>,
}

impl TrajectoryBank {
    /// Builds a bank by materialising the dictionary's trajectories at
    /// `tv` — the offline step of the serving pipeline.
    pub fn build(dict: FaultDictionary, tv: &TestVector) -> Self {
        let set = trajectories_from_dictionary(&dict, tv);
        TrajectoryBank {
            dict,
            set,
            multifault: None,
        }
    }

    /// Packages an already-materialised trajectory set with its
    /// dictionary (e.g. a set built by `trajectories_exact`).
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty — an empty bank cannot serve diagnoses.
    pub fn from_parts(dict: FaultDictionary, set: TrajectorySet) -> Self {
        assert!(!set.is_empty(), "a bank needs at least one trajectory");
        TrajectoryBank {
            dict,
            set,
            multifault: None,
        }
    }

    /// Attaches a multi-fault dictionary, persisted through the bank's
    /// `MultiFaultSection` on save.
    pub fn with_multifault(mut self, multifault: MultiFaultDictionary) -> Self {
        self.multifault = Some(multifault);
        self
    }

    /// The fault dictionary.
    #[inline]
    pub fn dictionary(&self) -> &FaultDictionary {
        &self.dict
    }

    /// The trajectory set served by this bank.
    #[inline]
    pub fn trajectory_set(&self) -> &TrajectorySet {
        &self.set
    }

    /// The attached multi-fault dictionary, if any.
    #[inline]
    pub fn multifault_dictionary(&self) -> Option<&MultiFaultDictionary> {
        self.multifault.as_ref()
    }

    /// The deployed test vector.
    #[inline]
    pub fn test_vector(&self) -> &TestVector {
        self.set.test_vector()
    }

    /// Serialises the bank into a sectioned v2 container: a dictionary
    /// section, a trajectory section, and — when present — a multi-fault
    /// section, each independently checksummed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut builder = ContainerBuilder::new();
        builder.push_section(SECTION_DICTIONARY, encode_dictionary(&self.dict));
        builder.push_section(SECTION_TRAJECTORIES, encode_trajectory_set(&self.set));
        if let Some(mfd) = &self.multifault {
            builder.push_section(SECTION_MULTIFAULT, encode_multifault(mfd));
        }
        builder.finish()
    }

    /// Serialises the bank as a legacy **v1** monolithic container —
    /// the format every pre-v2 reader understands. A v1 container has no
    /// sections, so an attached multi-fault dictionary is *not*
    /// representable and is omitted. Kept for compatibility tests and
    /// for interoperating with old tooling.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        encode_dictionary_into(&mut enc, &self.dict);
        encode_trajectory_set_into(&mut enc, &self.set);
        enc.finish()
    }

    /// Deserialises a bank, verifying the container header, checksums,
    /// and every structural invariant of the decoded data. Both format
    /// versions load: v1 monolithic payloads and v2 sectioned containers
    /// (whose unknown sections are skipped, and whose optional
    /// multi-fault section is decoded when present).
    ///
    /// # Errors
    ///
    /// Any corruption or inconsistency yields a [`CodecError`]; v2
    /// corruption is attributed to the section it hit.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        match peek_version(bytes)? {
            BANK_VERSION_V1 => {
                // Legacy monolithic payload: dictionary fields then
                // trajectory fields, one whole-payload checksum.
                let mut dec = Decoder::open(bytes)?;
                let dict = decode_dictionary(&mut dec)?;
                let set = decode_trajectory_set(&mut dec)?;
                dec.finish()?;
                Ok(TrajectoryBank {
                    dict,
                    set,
                    multifault: None,
                })
            }
            BANK_VERSION => {
                let container = Container::parse(bytes)?;
                let mut dec = Decoder::over(container.require(SECTION_DICTIONARY)?);
                let dict = decode_dictionary(&mut dec)?;
                dec.finish()?;
                let mut dec = Decoder::over(container.require(SECTION_TRAJECTORIES)?);
                let set = decode_trajectory_set(&mut dec)?;
                dec.finish()?;
                let multifault = match container.find(SECTION_MULTIFAULT)? {
                    None => None,
                    Some(payload) => {
                        let mut dec = Decoder::over(payload);
                        let mfd = decode_multifault(&mut dec)?;
                        dec.finish()?;
                        Some(mfd)
                    }
                };
                Ok(TrajectoryBank {
                    dict,
                    set,
                    multifault,
                })
            }
            version => Err(CodecError::UnsupportedVersion(version)),
        }
    }

    /// Writes the bank to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, annotated with the path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes()).map_err(|e| CodecError::from(e).in_file(path))
    }

    /// Reads and verifies a bank from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and every decode error of
    /// [`TrajectoryBank::from_bytes`], annotated with the path — so a
    /// multi-shard store always knows *which* bank file failed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        let path = path.as_ref();
        std::fs::read(path)
            .map_err(CodecError::from)
            .and_then(|bytes| TrajectoryBank::from_bytes(&bytes))
            .map_err(|e| e.in_file(path))
    }
}

/// How a [`MappedBank`] reaches its undecoded sections.
#[derive(Debug)]
enum MappedPayload {
    /// A v2 sectioned container: the mapping and its validated section
    /// table stay resident, and sections decode lazily out of the
    /// mapped bytes on first touch.
    Sectioned { map: Mmap, table: SectionTable },
    /// A v1 monolithic container: the whole payload shares one
    /// checksum, so nothing can be verified lazily — everything decodes
    /// at open and the lazy cells are pre-populated. The mapping is
    /// dropped (nothing left to read from it).
    Legacy,
}

/// A trajectory bank opened zero-copy over a memory-mapped shard file.
///
/// Unlike [`TrajectoryBank::load`], opening verifies only the container
/// header and section table eagerly, decodes the trajectory section
/// (the one diagnosis actually needs — its FNV is checked on that first
/// touch), and leaves the dictionary and multi-fault sections as
/// untouched mapped bytes: they are neither read, checksummed, nor
/// decoded until [`dictionary`](MappedBank::dictionary) /
/// [`multifault_dictionary`](MappedBank::multifault_dictionary) is
/// called. For dictionary-heavy multi-MB shards that makes a cold open
/// a fraction of the heap-decode path, and the kernel pages payloads in
/// on demand rather than through an intermediate `Vec<u8>` copy.
///
/// The decoded [`TrajectorySet`] is returned by value from
/// [`open`](MappedBank::open) so the caller (the engine) owns exactly
/// one copy.
#[derive(Debug)]
pub struct MappedBank {
    payload: MappedPayload,
    path: PathBuf,
    generation: FileGen,
    dict: OnceLock<Result<FaultDictionary, Arc<CodecError>>>,
    multifault: OnceLock<Result<Option<MultiFaultDictionary>, Arc<CodecError>>>,
    decode_events: Option<Arc<Counter>>,
}

impl MappedBank {
    /// Maps `path` and opens it as a bank, returning the mapped handle
    /// and the eagerly decoded trajectory set. v1 monolithic shards
    /// open too (fully decoded — see [`MappedPayload::Legacy`]).
    ///
    /// # Errors
    ///
    /// I/O and mapping failures, header/table validation failures, and
    /// any corruption of the trajectory section, annotated with `path`.
    /// Corruption confined to the *other* sections is deferred to their
    /// accessors.
    pub fn open(path: impl AsRef<Path>) -> Result<(MappedBank, TrajectorySet), CodecError> {
        let path = path.as_ref();
        MappedBank::open_inner(path).map_err(|e| e.in_file(path))
    }

    fn open_inner(path: &Path) -> Result<(MappedBank, TrajectorySet), CodecError> {
        let map = Mmap::map(path)?;
        let generation = map.generation();
        match peek_version(map.bytes())? {
            BANK_VERSION_V1 => {
                let TrajectoryBank {
                    dict,
                    set,
                    multifault,
                } = TrajectoryBank::from_bytes(map.bytes())?;
                let dict_cell = OnceLock::new();
                dict_cell.set(Ok(dict)).expect("fresh cell");
                let mfd_cell = OnceLock::new();
                mfd_cell.set(Ok(multifault)).expect("fresh cell");
                Ok((
                    MappedBank {
                        payload: MappedPayload::Legacy,
                        path: path.to_path_buf(),
                        generation,
                        dict: dict_cell,
                        multifault: mfd_cell,
                        decode_events: None,
                    },
                    set,
                ))
            }
            BANK_VERSION => {
                let table = SectionTable::parse(map.bytes())?;
                let mut dec = Decoder::over(table.require(map.bytes(), SECTION_TRAJECTORIES)?);
                let set = decode_trajectory_set(&mut dec)?;
                dec.finish()?;
                Ok((
                    MappedBank {
                        payload: MappedPayload::Sectioned { map, table },
                        path: path.to_path_buf(),
                        generation,
                        dict: OnceLock::new(),
                        multifault: OnceLock::new(),
                        decode_events: None,
                    },
                    set,
                ))
            }
            version => Err(CodecError::UnsupportedVersion(version)),
        }
    }

    /// The single-fault dictionary, decoded (and checksum-verified) out
    /// of the mapping on first call and cached.
    ///
    /// # Errors
    ///
    /// Corruption or malformation of the dictionary section, attributed
    /// and annotated with the shard path; the same error is replayed on
    /// every subsequent call (the mapped bytes cannot have changed —
    /// the store retires the whole shard on file change instead).
    pub fn dictionary(&self) -> Result<&FaultDictionary, Arc<CodecError>> {
        self.dict
            .get_or_init(|| {
                self.decode_section(SECTION_DICTIONARY, decode_dictionary)
                    .map(|d| d.expect("dictionary section is required"))
            })
            .as_ref()
            .map_err(Arc::clone)
    }

    /// The optional multi-fault dictionary, decoded lazily like
    /// [`dictionary`](MappedBank::dictionary); `Ok(None)` when the
    /// shard carries no multi-fault section.
    ///
    /// # Errors
    ///
    /// As [`dictionary`](MappedBank::dictionary).
    pub fn multifault_dictionary(&self) -> Result<Option<&MultiFaultDictionary>, Arc<CodecError>> {
        self.multifault
            .get_or_init(|| self.decode_section(SECTION_MULTIFAULT, decode_multifault))
            .as_ref()
            .map(Option::as_ref)
            .map_err(Arc::clone)
    }

    /// Attaches a counter incremented once per lazy section decode
    /// (`engine_lazy_decodes_total`): each section fires at most once,
    /// on its first touch.
    pub(crate) fn set_decode_counter(&mut self, counter: Arc<Counter>) {
        self.decode_events = Some(counter);
    }

    fn decode_section<T>(
        &self,
        kind: u16,
        decode: fn(&mut Decoder) -> Result<T, CodecError>,
    ) -> Result<Option<T>, Arc<CodecError>> {
        let MappedPayload::Sectioned { map, table } = &self.payload else {
            unreachable!("legacy cells are pre-populated at open");
        };
        if let Some(counter) = &self.decode_events {
            counter.inc();
        }
        let run = || -> Result<Option<T>, CodecError> {
            let Some(payload) = (if kind == SECTION_DICTIONARY {
                Some(table.require(map.bytes(), kind)?)
            } else {
                table.find(map.bytes(), kind)?
            }) else {
                return Ok(None);
            };
            let mut dec = Decoder::over(payload);
            let value = decode(&mut dec)?;
            dec.finish()?;
            Ok(Some(value))
        };
        run().map_err(|e| Arc::new(e.in_file(&self.path)))
    }

    /// The shard file's generation, captured from the mapped descriptor.
    pub fn generation(&self) -> FileGen {
        self.generation
    }

    /// The shard file this bank was mapped from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Estimated resident bytes this shard can pin: the section-table
    /// payload total for a sectioned shard, the file length for a fully
    /// decoded legacy one. This is what the store's memory budget
    /// accounts with.
    pub fn payload_bytes(&self) -> u64 {
        match &self.payload {
            MappedPayload::Sectioned { table, .. } => table.payload_bytes(),
            MappedPayload::Legacy => self.generation.len(),
        }
    }

    /// Per-section `(kind, payload_bytes)` rows of a sectioned shard —
    /// the breakdown of [`payload_bytes`](MappedBank::payload_bytes)
    /// the store's eviction budget accounts with. Empty for legacy v1
    /// shards, which are accounted at whole-file length.
    pub fn section_sizes(&self) -> Vec<(u16, u64)> {
        match &self.payload {
            MappedPayload::Sectioned { table, .. } => table
                .entries()
                .iter()
                .map(|e| (e.kind, e.len as u64))
                .collect(),
            MappedPayload::Legacy => Vec::new(),
        }
    }

    /// `true` when the undecoded sections are backed by a genuine
    /// kernel mapping (zero-copy); `false` for legacy shards and the
    /// non-unix heap fallback.
    pub fn is_mapped(&self) -> bool {
        match &self.payload {
            MappedPayload::Sectioned { map, .. } => map.is_mapped(),
            MappedPayload::Legacy => false,
        }
    }
}

// --- section payload encoders/decoders ------------------------------
//
// Each artifact has a symmetric `encode_*`/`decode_*` pair over bare
// payload bytes; the v1 path concatenates the dictionary and trajectory
// payloads into one monolithic container, the v2 path gives each its own
// checksummed section.

fn encode_grid_into(enc: &mut Encoder, grid: &FrequencyGrid) {
    enc.put_u8(match grid.spacing() {
        Spacing::Linear => SPACING_LINEAR,
        Spacing::Logarithmic => SPACING_LOGARITHMIC,
    });
    enc.put_f64s(grid.frequencies());
}

fn decode_grid(dec: &mut Decoder) -> Result<FrequencyGrid, CodecError> {
    let spacing = match dec.get_u8()? {
        SPACING_LINEAR => Spacing::Linear,
        SPACING_LOGARITHMIC => Spacing::Logarithmic,
        tag => {
            return Err(CodecError::Malformed(format!("unknown spacing tag {tag}")));
        }
    };
    let freqs = dec.get_f64s()?;
    ensure(!freqs.is_empty(), "frequency grid is empty")?;
    ensure(
        freqs.iter().all(|w| w.is_finite() && *w > 0.0),
        "grid frequencies must be positive and finite",
    )?;
    ensure(
        freqs.windows(2).all(|w| w[0] < w[1]),
        "grid frequencies must be strictly increasing",
    )?;
    Ok(FrequencyGrid::from_parts(freqs, spacing))
}

fn encode_probe_into(enc: &mut Encoder, probe: &Probe) {
    match probe {
        Probe::Node(n) => {
            enc.put_u8(PROBE_NODE);
            enc.put_str(n);
        }
        Probe::Differential(p, n) => {
            enc.put_u8(PROBE_DIFFERENTIAL);
            enc.put_str(p);
            enc.put_str(n);
        }
    }
}

fn decode_probe(dec: &mut Decoder) -> Result<Probe, CodecError> {
    match dec.get_u8()? {
        PROBE_NODE => Ok(Probe::Node(dec.get_str()?)),
        PROBE_DIFFERENTIAL => Ok(Probe::Differential(dec.get_str()?, dec.get_str()?)),
        tag => Err(CodecError::Malformed(format!("unknown probe tag {tag}"))),
    }
}

/// Reads one length-prefixed response vector and checks it against the
/// grid length and finiteness — shared by golden and entry responses.
/// (Error strings are built only on failure: this runs once per
/// dictionary entry, so the happy path must not allocate messages.)
fn decode_response(dec: &mut Decoder, grid_len: usize, what: &str) -> Result<Vec<f64>, CodecError> {
    let xs = dec.get_f64s()?;
    if xs.len() != grid_len {
        return Err(CodecError::Malformed(format!(
            "{what} length must match the grid"
        )));
    }
    if !xs.iter().all(|x| x.is_finite()) {
        return Err(CodecError::Malformed(format!("{what} must be finite")));
    }
    Ok(xs)
}

fn encode_dictionary_into(enc: &mut Encoder, dict: &FaultDictionary) {
    encode_grid_into(enc, dict.grid());
    enc.put_f64s(dict.golden_db());
    enc.put_str(dict.input());
    encode_probe_into(enc, dict.probe());
    let universe = dict.universe();
    enc.put_u32(universe.components().len() as u32);
    for comp in universe.components() {
        enc.put_str(comp);
    }
    enc.put_f64(universe.grid().max_pct());
    enc.put_f64(universe.grid().step_pct());
    // The entries mirror the universe's fault enumeration (an
    // invariant `FaultDictionary::from_parts` re-asserts), so only
    // the responses need storing.
    enc.put_u32(dict.entries().len() as u32);
    for entry in dict.entries() {
        enc.put_f64s(entry.magnitude_db());
    }
}

fn encode_dictionary(dict: &FaultDictionary) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_dictionary_into(&mut enc, dict);
    enc.into_payload()
}

fn decode_dictionary(dec: &mut Decoder) -> Result<FaultDictionary, CodecError> {
    let grid = decode_grid(dec)?;
    let golden_db = decode_response(dec, grid.len(), "golden response")?;
    let input = dec.get_str()?;
    let probe = decode_probe(dec)?;

    let n_components = dec.get_count(5)?; // len prefix + ≥1 byte per name
    let mut components = Vec::with_capacity(n_components);
    for _ in 0..n_components {
        components.push(dec.get_str()?);
    }
    ensure(!components.is_empty(), "universe has no components")?;
    let max_pct = dec.get_f64()?;
    let step_pct = dec.get_f64()?;
    ensure(
        max_pct.is_finite()
            && step_pct.is_finite()
            && step_pct > 0.0
            && step_pct <= max_pct
            && max_pct < 100.0,
        "deviation grid must satisfy 0 < step <= max < 100",
    )?;
    // Bound the fault enumeration before materialising it, so a
    // crafted step cannot make `FaultUniverse::new` allocate an
    // astronomically large fault list (or overflow its capacity).
    ensure(
        max_pct / step_pct <= 5_000.0,
        "deviation grid is implausibly fine",
    )?;
    let universe = FaultUniverse::new(&components, DeviationGrid::new(max_pct, step_pct));

    let n_entries = dec.get_count(4)?;
    ensure(
        n_entries == universe.len(),
        "entry count must match the universe",
    )?;
    let mut entries = Vec::with_capacity(n_entries);
    for fault in universe.faults() {
        let magnitude_db = decode_response(dec, grid.len(), "entry response")?;
        entries.push(DictionaryEntry::new(fault.clone(), magnitude_db));
    }
    Ok(FaultDictionary::from_parts(
        grid, golden_db, entries, universe, input, probe,
    ))
}

fn encode_trajectory_set_into(enc: &mut Encoder, set: &TrajectorySet) {
    enc.put_f64s(set.test_vector().omegas());
    enc.put_u32(set.len() as u32);
    for t in set.trajectories() {
        enc.put_str(t.component());
        enc.put_f64s(t.deviations_pct());
        enc.put_u32(t.dim() as u32);
        for p in t.points() {
            for &x in p.coords() {
                enc.put_f64(x);
            }
        }
    }
}

fn encode_trajectory_set(set: &TrajectorySet) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_trajectory_set_into(&mut enc, set);
    enc.into_payload()
}

fn decode_trajectory_set(dec: &mut Decoder) -> Result<TrajectorySet, CodecError> {
    let omegas = dec.get_f64s()?;
    ensure(!omegas.is_empty(), "test vector is empty")?;
    ensure(
        omegas.iter().all(|w| w.is_finite() && *w > 0.0),
        "test frequencies must be positive and finite",
    )?;
    let tv = TestVector::new(omegas);

    let n_traj = dec.get_count(9)?;
    ensure(n_traj > 0, "bank holds no trajectories")?;
    let mut trajectories = Vec::with_capacity(n_traj);
    let mut set_dim: Option<usize> = None;
    for _ in 0..n_traj {
        let component = dec.get_str()?;
        let devs = dec.get_f64s()?;
        ensure(devs.len() >= 2, "a trajectory needs at least two points")?;
        ensure(
            devs.windows(2).all(|w| w[0] < w[1]),
            "trajectory deviations must be strictly ascending",
        )?;
        ensure(
            devs.contains(&0.0),
            "trajectory must contain the 0% origin point",
        )?;
        ensure(
            devs.iter().all(|d| d.is_finite()),
            "trajectory deviations must be finite",
        )?;
        let dim = dec.get_u32()? as usize;
        ensure(dim > 0, "trajectory dimension must be positive")?;
        // Bound the per-point allocation by the payload actually
        // present (each coordinate takes 8 bytes), as get_count
        // does for prefixed fields.
        ensure(
            dim <= dec.remaining() / 8,
            "trajectory dimension exceeds the remaining payload",
        )?;
        ensure(
            dim.is_multiple_of(tv.len()),
            "trajectory dimension must be a multiple of the test-vector length",
        )?;
        ensure(
            set_dim.replace(dim).is_none_or(|prev| prev == dim),
            "all trajectories must share one dimension",
        )?;
        let mut points = Vec::with_capacity(devs.len());
        for _ in 0..devs.len() {
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                coords.push(dec.get_f64()?);
            }
            ensure(
                coords.iter().all(|x| x.is_finite()),
                "trajectory points must be finite",
            )?;
            points.push(Signature::new(coords));
        }
        trajectories.push(FaultTrajectory::new(component, devs, points));
    }
    Ok(TrajectorySet::new(tv, trajectories))
}

fn encode_multifault(mfd: &MultiFaultDictionary) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_grid_into(&mut enc, mfd.grid());
    enc.put_f64s(mfd.golden_db());
    enc.put_str(mfd.input());
    encode_probe_into(&mut enc, mfd.probe());
    enc.put_u32(mfd.entries().len() as u32);
    for entry in mfd.entries() {
        let faults = entry.fault().faults();
        enc.put_u32(faults.len() as u32);
        for f in faults {
            enc.put_str(f.component());
            enc.put_f64(f.percent());
        }
        enc.put_f64s(entry.magnitude_db());
    }
    enc.into_payload()
}

fn decode_multifault(dec: &mut Decoder) -> Result<MultiFaultDictionary, CodecError> {
    let grid = decode_grid(dec)?;
    let golden_db = decode_response(dec, grid.len(), "multifault golden response")?;
    let input = dec.get_str()?;
    let probe = decode_probe(dec)?;

    // Each entry needs at least the order prefix, one fault (len prefix
    // + ≥1-byte name + percent), and the response length prefix.
    let n_entries = dec.get_count(4 + 4 + 4 + 1 + 8 + 4)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        // Each constituent fault costs ≥ 13 bytes (name prefix + ≥1
        // byte + percent), bounding the order before allocation.
        let order = dec.get_count(13)?;
        ensure(order > 0, "multi-fault needs at least one fault")?;
        let mut faults: Vec<ParametricFault> = Vec::with_capacity(order);
        for _ in 0..order {
            let component = dec.get_str()?;
            ensure(!component.is_empty(), "multi-fault component is empty")?;
            let percent = dec.get_f64()?;
            ensure(
                percent.is_finite() && percent > -100.0,
                "multi-fault deviation must be finite and > -100%",
            )?;
            ensure(
                faults.iter().all(|f| f.component() != component),
                "multi-fault repeats a component",
            )?;
            faults.push(ParametricFault::from_percent(component, percent));
        }
        let magnitude_db = decode_response(dec, grid.len(), "multifault entry response")?;
        entries.push(MultiFaultEntry::new(MultiFault::new(faults), magnitude_db));
    }
    Ok(MultiFaultDictionary::from_parts(
        grid, golden_db, entries, input, probe,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_numerics::FrequencyGrid;

    fn rc_bank() -> TrajectoryBank {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::paper());
        let grid = FrequencyGrid::log_space(1.0, 1e6, 15);
        let dict =
            FaultDictionary::build(&ckt, &universe, "V1", &Probe::node("out"), &grid).unwrap();
        TrajectoryBank::build(dict, &TestVector::pair(100.0, 1e4))
    }

    #[test]
    fn round_trip_is_identity() {
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        let back = TrajectoryBank::from_bytes(&bytes).unwrap();
        assert_eq!(bank, back);
        // And encoding is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn save_load_round_trip() {
        let bank = rc_bank();
        let path = std::env::temp_dir().join("ft_serve_bank_test.ftb");
        bank.save(&path).unwrap();
        let back = TrajectoryBank::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bank, back);
    }

    #[test]
    fn differential_probe_round_trips() {
        let bank = rc_bank();
        let dict = bank.dictionary();
        let diff = FaultDictionary::from_parts(
            dict.grid().clone(),
            dict.golden_db().to_vec(),
            dict.entries().to_vec(),
            dict.universe().clone(),
            dict.input().to_string(),
            Probe::differential("in", "out"),
        );
        let bank = TrajectoryBank::from_parts(diff, bank.trajectory_set().clone());
        let back = TrajectoryBank::from_bytes(&bank.to_bytes()).unwrap();
        assert_eq!(bank, back);
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        // Corruption anywhere in the container must surface as an error
        // (header fields and payload are both covered; a flip can never
        // silently yield a *different valid* bank).
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        // Sample positions across the container, always including the
        // magic, version, section count, table checksum, and both
        // section-table entries (2 sections × 18 bytes from offset 22).
        for pos in (0..bytes.len()).step_by(97).chain([0, 9, 13, 21, 30, 48]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncated_file_is_detected() {
        let bytes = rc_bank().to_bytes();
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(TrajectoryBank::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn load_missing_file_is_io_error_naming_the_path() {
        let err = TrajectoryBank::load("/nonexistent/bank.ftb").unwrap_err();
        match &err {
            CodecError::InFile { path, source } => {
                assert_eq!(path.to_string_lossy(), "/nonexistent/bank.ftb");
                assert!(matches!(**source, CodecError::Io(_)));
            }
            other => panic!("expected InFile, got {other:?}"),
        }
        assert!(err.to_string().contains("/nonexistent/bank.ftb"));
    }

    #[test]
    fn v1_container_still_loads() {
        // A bank written by the legacy monolithic writer decodes under
        // the v2 reader, bit-for-bit equal apart from the (absent)
        // multi-fault dictionary.
        let bank = rc_bank();
        let v1 = bank.to_bytes_v1();
        assert_eq!(crate::codec::peek_version(&v1).unwrap(), BANK_VERSION_V1);
        let back = TrajectoryBank::from_bytes(&v1).unwrap();
        assert_eq!(bank, back);
        // The v1 writer is deterministic too.
        assert_eq!(v1, back.to_bytes_v1());
        // And single-byte corruption of a v1 container is still caught.
        for pos in (0..v1.len()).step_by(101).chain([0, 9, 17, 25]) {
            let mut corrupt = v1.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "v1 flip at byte {pos} went undetected"
            );
        }
    }

    fn rc_multifault() -> MultiFaultDictionary {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::new(40.0, 20.0));
        MultiFaultDictionary::build_pairs(
            &ckt,
            &universe,
            "V1",
            &Probe::node("out"),
            &FrequencyGrid::log_space(1.0, 1e5, 9),
        )
        .unwrap()
    }

    #[test]
    fn multifault_dictionary_round_trips_byte_identically() {
        let bank = rc_bank().with_multifault(rc_multifault());
        assert!(bank.multifault_dictionary().is_some());
        let bytes = bank.to_bytes();
        let back = TrajectoryBank::from_bytes(&bytes).unwrap();
        assert_eq!(bank, back);
        assert_eq!(
            bank.multifault_dictionary(),
            back.multifault_dictionary(),
            "multi-fault dictionary must survive the round trip"
        );
        // Byte-identical re-encode — the acceptance criterion.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn multifault_section_every_flip_detected() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let bytes = bank.to_bytes();
        for pos in (0..bytes.len()).step_by(89).chain([0, 21, 40, 58]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn mapped_open_matches_heap_load() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let path = std::env::temp_dir().join("ft_serve_mapped_open_test.ftb");
        bank.save(&path).unwrap();
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(&set, bank.trajectory_set());
        assert_eq!(mapped.dictionary().unwrap(), bank.dictionary());
        assert_eq!(
            mapped.multifault_dictionary().unwrap(),
            bank.multifault_dictionary()
        );
        assert_eq!(mapped.is_mapped(), cfg!(unix));
        assert_eq!(mapped.generation(), FileGen::probe(&path).unwrap());
        // The budget estimate covers the payloads (container minus
        // header/table overhead).
        let file_len = std::fs::metadata(&path).unwrap().len();
        assert!(mapped.payload_bytes() > 0 && mapped.payload_bytes() < file_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_open_decodes_legacy_v1_eagerly() {
        let bank = rc_bank();
        let path = std::env::temp_dir().join("ft_serve_mapped_v1_test.ftb");
        std::fs::write(&path, bank.to_bytes_v1()).unwrap();
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(&set, bank.trajectory_set());
        assert_eq!(mapped.dictionary().unwrap(), bank.dictionary());
        assert_eq!(mapped.multifault_dictionary().unwrap(), None);
        assert!(!mapped.is_mapped(), "v1 has no lazily mapped sections");
        assert_eq!(
            mapped.payload_bytes(),
            std::fs::metadata(&path).unwrap().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_corruption_outside_trajectories_is_deferred_and_attributed() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let bytes = bank.to_bytes();
        let container = Container::parse(&bytes).unwrap();
        let dict_off = container.sections()[0].offset;
        drop(container);
        let mut corrupt = bytes;
        corrupt[dict_off] ^= 0x01;

        let path = std::env::temp_dir().join("ft_serve_mapped_lazy_corrupt_test.ftb");
        std::fs::write(&path, &corrupt).unwrap();
        // Opening succeeds — the trajectory section is intact, and the
        // dictionary bytes are never touched.
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(&set, bank.trajectory_set());
        // First touch of the dictionary detects and attributes the hit,
        // naming the shard file; the error replays on every call.
        for _ in 0..2 {
            let err = mapped.dictionary().expect_err("corruption must surface");
            let msg = err.to_string();
            assert!(msg.contains("dictionary"), "{msg}");
            assert!(msg.contains("mapped_lazy_corrupt"), "{msg}");
        }
        // The untouched multifault section still decodes.
        assert!(mapped.multifault_dictionary().unwrap().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_corruption_in_trajectories_fails_open() {
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        let container = Container::parse(&bytes).unwrap();
        let traj_off = container.sections()[1].offset;
        drop(container);
        let mut corrupt = bytes;
        corrupt[traj_off] ^= 0x01;
        let path = std::env::temp_dir().join("ft_serve_mapped_traj_corrupt_test.ftb");
        std::fs::write(&path, &corrupt).unwrap();
        let err = MappedBank::open(&path).expect_err("trajectory corruption fails open");
        assert!(err.to_string().contains("trajectories"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// Encodes a minimal single-component bank by hand, letting tests
    /// inject hostile field values the public API can never produce.
    fn hostile_bank(step_pct: f64, traj_dim: u32, coord: f64) -> Vec<u8> {
        use crate::codec::Encoder;
        let mut enc = Encoder::new();
        enc.put_u8(1); // logarithmic spacing
        enc.put_f64s(&[1.0, 2.0]);
        enc.put_f64s(&[-3.0, -9.0]); // golden
        enc.put_str("V1");
        enc.put_u8(0); // node probe
        enc.put_str("out");
        enc.put_u32(1); // one component
        enc.put_str("R1");
        enc.put_f64(40.0); // max_pct
        enc.put_f64(step_pct);
        let n_entries = if step_pct == 10.0 { 8 } else { 0 };
        enc.put_u32(n_entries);
        for _ in 0..n_entries {
            enc.put_f64s(&[-2.0, -8.0]);
        }
        enc.put_f64s(&[1.0, 2.0]); // test vector
        enc.put_u32(1); // one trajectory
        enc.put_str("R1");
        enc.put_f64s(&[-10.0, 0.0, 10.0]);
        enc.put_u32(traj_dim);
        if traj_dim == 2 {
            for &c in &[-1.0, -1.0, 0.0, 0.0, coord, 1.0] {
                enc.put_f64(c);
            }
        }
        enc.finish()
    }

    #[test]
    fn hand_encoded_baseline_decodes() {
        // Sanity-check the hostile encoder against the real format.
        let bank = TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, 1.0)).unwrap();
        assert_eq!(bank.trajectory_set().len(), 1);
        assert_eq!(bank.dictionary().entries().len(), 8);
    }

    #[test]
    fn hostile_fields_error_instead_of_panicking() {
        // Implausibly fine deviation grid: must not attempt to
        // enumerate ~10^300 faults.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(5e-324, 2, 1.0)).is_err());
        assert!(TrajectoryBank::from_bytes(&hostile_bank(1e-9, 2, 1.0)).is_err());
        // Declared dimension far beyond the payload: must not allocate.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, u32::MAX, 1.0)).is_err());
        // Non-finite trajectory coordinate: must not load a bank that
        // would panic the diagnosis path later.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, f64::NAN)).is_err());
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, f64::INFINITY)).is_err());
    }
}
