//! The trajectory bank: the offline phase's artifacts, persisted.
//!
//! A bank packages a [`FaultDictionary`] (the expensive fault-simulation
//! product) with the [`TrajectorySet`] materialised at the deployed test
//! vector — and, optionally, a [`MultiFaultDictionary`] — so the online
//! phase loads everything from disk instead of re-simulating.
//! Serialisation uses the sectioned [`codec`](crate::codec) container
//! (one type-tagged, independently checksummed section per artifact;
//! unknown sections are skipped); legacy v1 monolithic and v2 sectioned
//! banks still load. Every structural invariant is re-checked on load
//! before any panicking constructor runs, so a hostile or corrupt file
//! yields a [`CodecError`], never a panic.
//!
//! ## Trajectory section payload, format v3 (zero-copy viewable)
//!
//! All fields little-endian; `off` is relative to the payload start.
//!
//! ```text
//! off       size          field
//! 0         4+8·n_tv      test-vector omegas (u32 count, then f64s)
//! …         4             trajectory count n_traj (u32)
//! …         4             signature dimension dim (u32)
//! …         4             total point count P (u32)
//! …         …             n_traj × component name (u32 len + UTF-8)
//! …         4             pad_len (u32, 0..=7)
//! …         pad_len       zero padding, sized so the next offset is
//!                         8-byte aligned *in the container file*
//! A         4·(n_traj+1)  point-offset table: prefix sums of points
//!                         per trajectory (first 0, last P, step ≥ 2)
//! …         0 or 4        zero pad iff n_traj+1 is odd (keeps D 8-aligned)
//! D         8·P           deviations (f64), concatenated per trajectory
//! C         8·P·dim       point coordinates (f64), point-major
//! ```
//!
//! The writer chooses `pad_len` so the absolute container offset of `A`
//! is a multiple of 8; since `mmap` returns page-aligned bases, a
//! mapped reader can view `D` and `C` in place as `&[f64]` — opening a
//! v3 shard decodes nothing (O(header + n_traj)), and the deviation and
//! coordinate data the index streams over are the mapped file pages
//! themselves. v2 banks carry the older length-prefixed trajectory
//! payload and decode eagerly on open.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use ft_circuit::Probe;
use ft_core::{
    trajectories_from_dictionary, FaultTrajectory, PackedTrajectories, Signature, TestVector,
    TrajectorySet,
};
use ft_faults::{
    DeviationGrid, DictionaryEntry, FaultDictionary, FaultUniverse, MultiFault,
    MultiFaultDictionary, MultiFaultEntry, ParametricFault,
};
use ft_numerics::{FrequencyGrid, Spacing};

use crate::codec::{
    peek_version, CodecError, Container, ContainerBuilder, Decoder, Encoder, SectionEntry,
    SectionTable, BANK_VERSION, BANK_VERSION_V1, BANK_VERSION_V2, HEADER_LEN_V2,
    SECTION_DICTIONARY, SECTION_ENTRY_LEN, SECTION_MULTIFAULT, SECTION_TRAJECTORIES,
};
use crate::mmap::{FileGen, Mmap};
use crate::obs::Counter;

/// Probe encoding tags.
const PROBE_NODE: u8 = 0;
const PROBE_DIFFERENTIAL: u8 = 1;

/// Spacing encoding tags.
const SPACING_LINEAR: u8 = 0;
const SPACING_LOGARITHMIC: u8 = 1;

fn ensure(cond: bool, what: &str) -> Result<(), CodecError> {
    if cond {
        Ok(())
    } else {
        Err(CodecError::Malformed(what.into()))
    }
}

/// A persistent diagnosis artifact: fault dictionary + the trajectory
/// set of the deployed test vector, plus an optional multi-fault
/// dictionary riding along in its own container section.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryBank {
    dict: FaultDictionary,
    set: TrajectorySet,
    multifault: Option<MultiFaultDictionary>,
}

impl TrajectoryBank {
    /// Builds a bank by materialising the dictionary's trajectories at
    /// `tv` — the offline step of the serving pipeline.
    pub fn build(dict: FaultDictionary, tv: &TestVector) -> Self {
        let set = trajectories_from_dictionary(&dict, tv);
        TrajectoryBank {
            dict,
            set,
            multifault: None,
        }
    }

    /// Packages an already-materialised trajectory set with its
    /// dictionary (e.g. a set built by `trajectories_exact`).
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty — an empty bank cannot serve diagnoses.
    pub fn from_parts(dict: FaultDictionary, set: TrajectorySet) -> Self {
        assert!(!set.is_empty(), "a bank needs at least one trajectory");
        TrajectoryBank {
            dict,
            set,
            multifault: None,
        }
    }

    /// Attaches a multi-fault dictionary, persisted through the bank's
    /// `MultiFaultSection` on save.
    pub fn with_multifault(mut self, multifault: MultiFaultDictionary) -> Self {
        self.multifault = Some(multifault);
        self
    }

    /// The fault dictionary.
    #[inline]
    pub fn dictionary(&self) -> &FaultDictionary {
        &self.dict
    }

    /// The trajectory set served by this bank.
    #[inline]
    pub fn trajectory_set(&self) -> &TrajectorySet {
        &self.set
    }

    /// The attached multi-fault dictionary, if any.
    #[inline]
    pub fn multifault_dictionary(&self) -> Option<&MultiFaultDictionary> {
        self.multifault.as_ref()
    }

    /// The deployed test vector.
    #[inline]
    pub fn test_vector(&self) -> &TestVector {
        self.set.test_vector()
    }

    /// Serialises the bank into a sectioned **v3** container: a
    /// dictionary section, a zero-copy-viewable trajectory section (see
    /// the module docs for the aligned layout), and — when present — a
    /// multi-fault section, each independently checksummed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let dict_payload = encode_dictionary(&self.dict);
        // The v3 trajectory payload pads itself to an 8-byte-aligned
        // absolute file offset, so the writer must know where the
        // payload will land: after the header, the section table
        // (dictionary + trajectories + optional multifault), and the
        // dictionary payload.
        let n_sections = 2 + usize::from(self.multifault.is_some());
        let traj_offset = HEADER_LEN_V2 + n_sections * SECTION_ENTRY_LEN + dict_payload.len();
        let mut builder = ContainerBuilder::new();
        builder.push_section(SECTION_DICTIONARY, dict_payload);
        builder.push_section(
            SECTION_TRAJECTORIES,
            encode_trajectory_set_v3(&self.set, traj_offset),
        );
        if let Some(mfd) = &self.multifault {
            builder.push_section(SECTION_MULTIFAULT, encode_multifault(mfd));
        }
        builder.finish()
    }

    /// Serialises the bank as a **v2** sectioned container — the same
    /// framing as v3, but with the older length-prefixed trajectory
    /// payload that readers must decode eagerly. Kept for compatibility
    /// tests and `ftd build-bank --format 2`.
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        let mut builder = ContainerBuilder::with_version(BANK_VERSION_V2);
        builder.push_section(SECTION_DICTIONARY, encode_dictionary(&self.dict));
        builder.push_section(SECTION_TRAJECTORIES, encode_trajectory_set(&self.set));
        if let Some(mfd) = &self.multifault {
            builder.push_section(SECTION_MULTIFAULT, encode_multifault(mfd));
        }
        builder.finish()
    }

    /// Serialises the bank as a legacy **v1** monolithic container —
    /// the format every pre-v2 reader understands. A v1 container has no
    /// sections, so an attached multi-fault dictionary is *not*
    /// representable and is omitted. Kept for compatibility tests and
    /// for interoperating with old tooling.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        encode_dictionary_into(&mut enc, &self.dict);
        encode_trajectory_set_into(&mut enc, &self.set);
        enc.finish()
    }

    /// Deserialises a bank, verifying the container header, checksums,
    /// and every structural invariant of the decoded data. All format
    /// versions load: v1 monolithic payloads and v2/v3 sectioned
    /// containers (whose unknown sections are skipped, and whose
    /// optional multi-fault section is decoded when present).
    ///
    /// # Errors
    ///
    /// Any corruption or inconsistency yields a [`CodecError`]; v2/v3
    /// corruption is attributed to the section it hit.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        match peek_version(bytes)? {
            BANK_VERSION_V1 => {
                // Legacy monolithic payload: dictionary fields then
                // trajectory fields, one whole-payload checksum.
                let mut dec = Decoder::open(bytes)?;
                let dict = decode_dictionary(&mut dec)?;
                let set = decode_trajectory_set(&mut dec)?;
                dec.finish()?;
                Ok(TrajectoryBank {
                    dict,
                    set,
                    multifault: None,
                })
            }
            BANK_VERSION_V2 | BANK_VERSION => {
                let container = Container::parse(bytes)?;
                let mut dec = Decoder::over(container.require(SECTION_DICTIONARY)?);
                let dict = decode_dictionary(&mut dec)?;
                dec.finish()?;
                let traj_payload = container.require(SECTION_TRAJECTORIES)?;
                let set = if container.version() == BANK_VERSION {
                    let offset = container
                        .sections()
                        .iter()
                        .find(|s| s.kind == SECTION_TRAJECTORIES)
                        .expect("require located the section")
                        .offset;
                    decode_trajectory_set_v3(traj_payload, offset)?
                } else {
                    let mut dec = Decoder::over(traj_payload);
                    let set = decode_trajectory_set(&mut dec)?;
                    dec.finish()?;
                    set
                };
                let multifault = match container.find(SECTION_MULTIFAULT)? {
                    None => None,
                    Some(payload) => {
                        let mut dec = Decoder::over(payload);
                        let mfd = decode_multifault(&mut dec)?;
                        dec.finish()?;
                        Some(mfd)
                    }
                };
                Ok(TrajectoryBank {
                    dict,
                    set,
                    multifault,
                })
            }
            version => Err(CodecError::UnsupportedVersion(version)),
        }
    }

    /// Writes the bank to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, annotated with the path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes()).map_err(|e| CodecError::from(e).in_file(path))
    }

    /// Reads and verifies a bank from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and every decode error of
    /// [`TrajectoryBank::from_bytes`], annotated with the path — so a
    /// multi-shard store always knows *which* bank file failed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        let path = path.as_ref();
        std::fs::read(path)
            .map_err(CodecError::from)
            .and_then(|bytes| TrajectoryBank::from_bytes(&bytes))
            .map_err(|e| e.in_file(path))
    }
}

/// How a [`MappedBank`] reaches its undecoded sections.
#[derive(Debug)]
enum MappedPayload {
    /// A sectioned (v2/v3) container: the mapping and its validated
    /// section table stay resident, and sections decode lazily out of
    /// the mapped bytes on first touch. The mapping is behind an `Arc`
    /// because a v3 trajectory set borrows it as packed storage.
    Sectioned { map: Arc<Mmap>, table: SectionTable },
    /// A v1 monolithic container: the whole payload shares one
    /// checksum, so nothing can be verified lazily — everything decodes
    /// at open and the lazy cells are pre-populated. The mapping is
    /// dropped (nothing left to read from it).
    Legacy,
}

/// A lazily decoded section: empty until first touch, then caching the
/// decode result; clearable by section-granular eviction, after which
/// the next touch decodes again from the mapped bytes.
type SectionCell<T> = Mutex<Option<Result<T, Arc<CodecError>>>>;

/// A trajectory bank opened zero-copy over a memory-mapped shard file.
///
/// Unlike [`TrajectoryBank::load`], opening verifies only the container
/// header and section table eagerly. On a **v3** shard the trajectory
/// section is not decoded at all: its aligned regions are viewed in
/// place ([`PackedTrajectories`]), making open O(header + trajectory
/// count) regardless of payload size — callers that serve from the set
/// run [`MappedBank::verify_trajectory_payload`] plus
/// [`TrajectorySet::validate_deep`] once before trusting the bytes. On
/// a v2 shard the trajectory section decodes eagerly (FNV checked at
/// open), as before. Either way the dictionary and multi-fault sections
/// stay untouched mapped bytes: neither read, checksummed, nor decoded
/// until [`dictionary`](MappedBank::dictionary) /
/// [`multifault_dictionary`](MappedBank::multifault_dictionary) is
/// called — and their decoded forms can be dropped again with
/// [`evict_decoded`](MappedBank::evict_decoded) while the trajectory
/// view keeps serving.
///
/// The [`TrajectorySet`] is returned by value from
/// [`open`](MappedBank::open) so the caller (the engine) owns exactly
/// one copy.
#[derive(Debug)]
pub struct MappedBank {
    payload: MappedPayload,
    path: PathBuf,
    generation: FileGen,
    dict: SectionCell<Arc<FaultDictionary>>,
    multifault: SectionCell<Option<Arc<MultiFaultDictionary>>>,
    decode_events: Option<Arc<Counter>>,
}

impl MappedBank {
    /// Maps `path` and opens it as a bank, returning the mapped handle
    /// and the trajectory set (packed/zero-copy for v3, decoded for
    /// v2). v1 monolithic shards open too (fully decoded — see
    /// [`MappedPayload::Legacy`]).
    ///
    /// # Errors
    ///
    /// I/O and mapping failures, header/table validation failures, and
    /// any structural violation of the trajectory section, annotated
    /// with `path`. v3 trajectory *content* corruption is deferred to
    /// [`verify_trajectory_payload`](MappedBank::verify_trajectory_payload)
    /// (open never reads the payload regions); corruption confined to
    /// the other sections is deferred to their accessors.
    pub fn open(path: impl AsRef<Path>) -> Result<(MappedBank, TrajectorySet), CodecError> {
        let path = path.as_ref();
        MappedBank::open_inner(path).map_err(|e| e.in_file(path))
    }

    fn open_inner(path: &Path) -> Result<(MappedBank, TrajectorySet), CodecError> {
        let map = Mmap::map(path)?;
        let generation = map.generation();
        match peek_version(map.bytes())? {
            BANK_VERSION_V1 => {
                let TrajectoryBank {
                    dict,
                    set,
                    multifault,
                } = TrajectoryBank::from_bytes(map.bytes())?;
                Ok((
                    MappedBank {
                        payload: MappedPayload::Legacy,
                        path: path.to_path_buf(),
                        generation,
                        dict: Mutex::new(Some(Ok(Arc::new(dict)))),
                        multifault: Mutex::new(Some(Ok(multifault.map(Arc::new)))),
                        decode_events: None,
                    },
                    set,
                ))
            }
            BANK_VERSION_V2 => {
                let table = SectionTable::parse(map.bytes())?;
                let mut dec = Decoder::over(table.require(map.bytes(), SECTION_TRAJECTORIES)?);
                let set = decode_trajectory_set(&mut dec)?;
                dec.finish()?;
                Ok((
                    MappedBank {
                        payload: MappedPayload::Sectioned {
                            map: Arc::new(map),
                            table,
                        },
                        path: path.to_path_buf(),
                        generation,
                        dict: Mutex::new(None),
                        multifault: Mutex::new(None),
                        decode_events: None,
                    },
                    set,
                ))
            }
            BANK_VERSION => {
                let map = Arc::new(map);
                let table = SectionTable::parse(map.bytes())?;
                // Locate the trajectory section *without* checksumming
                // its payload — the whole point of the v3 open is that
                // no payload byte is read.
                let entry = *unique_entry(&table, SECTION_TRAJECTORIES)?;
                let payload = entry.payload(map.bytes());
                let layout = parse_v3_trajectory_payload(payload, entry.offset)?;
                let tv = TestVector::new(layout.omegas.clone());
                let packed = if layout.aligned {
                    PackedTrajectories::new(
                        Arc::<Mmap>::clone(&map) as Arc<dyn AsRef<[u8]> + Send + Sync>,
                        layout.components,
                        layout.point_offsets,
                        entry.offset + layout.devs_off,
                        entry.offset + layout.coords_off,
                        layout.dim,
                    )
                    .ok()
                } else {
                    // Sections were shifted after encoding (spliced
                    // container): the regions no longer sit on 8-byte
                    // file offsets, so no in-place view exists.
                    None
                };
                let set = match packed {
                    Some(packed) => TrajectorySet::from_packed(tv, packed),
                    // Misaligned container, big-endian host, or the
                    // non-unix heap fallback handing out an unaligned
                    // buffer: decode owned trajectories instead —
                    // correct, just not zero-copy.
                    None => decode_trajectory_set_v3(payload, entry.offset)?,
                };
                Ok((
                    MappedBank {
                        payload: MappedPayload::Sectioned { map, table },
                        path: path.to_path_buf(),
                        generation,
                        dict: Mutex::new(None),
                        multifault: Mutex::new(None),
                        decode_events: None,
                    },
                    set,
                ))
            }
            version => Err(CodecError::UnsupportedVersion(version)),
        }
    }

    /// Verifies the stored FNV checksum of the trajectory section — the
    /// payload read a v3 open deliberately skips. Serving paths call
    /// this once at engine load, so a corrupt shard is still rejected
    /// before any diagnosis reads its bytes, while `open` itself stays
    /// O(header). No-op for v1/v2 shards (their trajectory payloads
    /// were verified during open).
    ///
    /// # Errors
    ///
    /// [`CodecError::SectionChecksumMismatch`] attributed to the
    /// trajectory section, annotated with the shard path.
    pub fn verify_trajectory_payload(&self) -> Result<(), CodecError> {
        match &self.payload {
            MappedPayload::Sectioned { map, table } => table
                .require(map.bytes(), SECTION_TRAJECTORIES)
                .map(|_| ())
                .map_err(|e| e.in_file(&self.path)),
            MappedPayload::Legacy => Ok(()),
        }
    }

    /// The single-fault dictionary, decoded (and checksum-verified) out
    /// of the mapping on first call and cached until evicted.
    ///
    /// # Errors
    ///
    /// Corruption or malformation of the dictionary section, attributed
    /// and annotated with the shard path; the same error is replayed on
    /// every subsequent call (the mapped bytes cannot have changed —
    /// the store retires the whole shard on file change instead).
    pub fn dictionary(&self) -> Result<Arc<FaultDictionary>, Arc<CodecError>> {
        let mut cell = self.dict.lock().expect("dictionary cell lock");
        if cell.is_none() {
            *cell = Some(
                self.decode_section(SECTION_DICTIONARY, decode_dictionary)
                    .map(|d| Arc::new(d.expect("dictionary section is required"))),
            );
        }
        cell.as_ref().expect("just populated").clone()
    }

    /// The optional multi-fault dictionary, decoded lazily like
    /// [`dictionary`](MappedBank::dictionary); `Ok(None)` when the
    /// shard carries no multi-fault section.
    ///
    /// # Errors
    ///
    /// As [`dictionary`](MappedBank::dictionary).
    pub fn multifault_dictionary(
        &self,
    ) -> Result<Option<Arc<MultiFaultDictionary>>, Arc<CodecError>> {
        let mut cell = self.multifault.lock().expect("multifault cell lock");
        if cell.is_none() {
            *cell = Some(
                self.decode_section(SECTION_MULTIFAULT, decode_multifault)
                    .map(|o| o.map(Arc::new)),
            );
        }
        cell.as_ref().expect("just populated").clone()
    }

    /// Drops the cached dictionary/multi-fault decodes (the cold
    /// sections), returning the estimated bytes freed — the
    /// section-granular eviction primitive. The trajectory view keeps
    /// serving untouched; a later accessor call simply decodes again
    /// from the mapped bytes. Legacy v1 shards free nothing (their
    /// decodes are the only copy of the data).
    pub fn evict_decoded(&self) -> u64 {
        let MappedPayload::Sectioned { table, .. } = &self.payload else {
            return 0;
        };
        let mut freed = 0u64;
        if self
            .dict
            .lock()
            .expect("dictionary cell lock")
            .take()
            .is_some()
        {
            freed += section_len(table, SECTION_DICTIONARY);
        }
        if let Some(prev) = self.multifault.lock().expect("multifault cell lock").take() {
            if matches!(prev, Ok(Some(_))) {
                freed += section_len(table, SECTION_MULTIFAULT);
            }
        }
        freed
    }

    /// Estimated bytes this shard currently pins beyond the mapping
    /// itself: the trajectory section (always live — packed view or
    /// decoded set) plus each cold section whose decode is cached. The
    /// store's memory budget accounts with this, so evicting a decode
    /// immediately relieves pressure. Legacy v1 shards are accounted at
    /// whole-file length (everything decoded, nothing evictable).
    pub fn resident_bytes(&self) -> u64 {
        match &self.payload {
            MappedPayload::Sectioned { table, .. } => {
                let mut total = section_len(table, SECTION_TRAJECTORIES);
                if self.dict.lock().expect("dictionary cell lock").is_some() {
                    total += section_len(table, SECTION_DICTIONARY);
                }
                if matches!(
                    &*self.multifault.lock().expect("multifault cell lock"),
                    Some(Ok(Some(_)))
                ) {
                    total += section_len(table, SECTION_MULTIFAULT);
                }
                total
            }
            MappedPayload::Legacy => self.generation.len(),
        }
    }

    /// Per-section residency rows `(kind, payload_bytes, resident)`:
    /// `resident` is `true` for the trajectory section (always live)
    /// and for cold sections whose decode is currently cached. Empty
    /// for legacy v1 shards.
    pub fn section_residency(&self) -> Vec<(u16, u64, bool)> {
        let MappedPayload::Sectioned { table, .. } = &self.payload else {
            return Vec::new();
        };
        table
            .entries()
            .iter()
            .map(|e| {
                let resident = match e.kind {
                    SECTION_TRAJECTORIES => true,
                    SECTION_DICTIONARY => self.dict.lock().expect("dictionary cell lock").is_some(),
                    SECTION_MULTIFAULT => matches!(
                        &*self.multifault.lock().expect("multifault cell lock"),
                        Some(Ok(Some(_)))
                    ),
                    _ => false,
                };
                (e.kind, e.len as u64, resident)
            })
            .collect()
    }

    /// Attaches a counter incremented once per lazy section decode
    /// (`engine_lazy_decodes_total`): each section fires at most once,
    /// on its first touch.
    pub(crate) fn set_decode_counter(&mut self, counter: Arc<Counter>) {
        self.decode_events = Some(counter);
    }

    fn decode_section<T>(
        &self,
        kind: u16,
        decode: fn(&mut Decoder) -> Result<T, CodecError>,
    ) -> Result<Option<T>, Arc<CodecError>> {
        let MappedPayload::Sectioned { map, table } = &self.payload else {
            unreachable!("legacy cells are pre-populated at open");
        };
        if let Some(counter) = &self.decode_events {
            counter.inc();
        }
        let run = || -> Result<Option<T>, CodecError> {
            let Some(payload) = (if kind == SECTION_DICTIONARY {
                Some(table.require(map.bytes(), kind)?)
            } else {
                table.find(map.bytes(), kind)?
            }) else {
                return Ok(None);
            };
            let mut dec = Decoder::over(payload);
            let value = decode(&mut dec)?;
            dec.finish()?;
            Ok(Some(value))
        };
        run().map_err(|e| Arc::new(e.in_file(&self.path)))
    }

    /// The shard file's generation, captured from the mapped descriptor.
    pub fn generation(&self) -> FileGen {
        self.generation
    }

    /// The shard file this bank was mapped from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Estimated resident bytes this shard can pin: the section-table
    /// payload total for a sectioned shard, the file length for a fully
    /// decoded legacy one. This is what the store's memory budget
    /// accounts with.
    pub fn payload_bytes(&self) -> u64 {
        match &self.payload {
            MappedPayload::Sectioned { table, .. } => table.payload_bytes(),
            MappedPayload::Legacy => self.generation.len(),
        }
    }

    /// Per-section `(kind, payload_bytes)` rows of a sectioned shard —
    /// the breakdown of [`payload_bytes`](MappedBank::payload_bytes)
    /// the store's eviction budget accounts with. Empty for legacy v1
    /// shards, which are accounted at whole-file length.
    pub fn section_sizes(&self) -> Vec<(u16, u64)> {
        match &self.payload {
            MappedPayload::Sectioned { table, .. } => table
                .entries()
                .iter()
                .map(|e| (e.kind, e.len as u64))
                .collect(),
            MappedPayload::Legacy => Vec::new(),
        }
    }

    /// `true` when the undecoded sections are backed by a genuine
    /// kernel mapping (zero-copy); `false` for legacy shards and the
    /// non-unix heap fallback.
    pub fn is_mapped(&self) -> bool {
        match &self.payload {
            MappedPayload::Sectioned { map, .. } => map.is_mapped(),
            MappedPayload::Legacy => false,
        }
    }
}

/// The unique section entry of type `kind`, located structurally (no
/// payload checksum) — the lookup a v3 O(header) open uses.
fn unique_entry(table: &SectionTable, kind: u16) -> Result<&SectionEntry, CodecError> {
    let mut found: Option<&SectionEntry> = None;
    for e in table.entries() {
        if e.kind == kind {
            if found.is_some() {
                return Err(CodecError::Malformed(format!(
                    "duplicate section {kind} ({})",
                    crate::codec::section_name(kind)
                )));
            }
            found = Some(e);
        }
    }
    found.ok_or(CodecError::MissingSection(kind))
}

/// Declared payload length of section `kind`, or 0 when absent.
fn section_len(table: &SectionTable, kind: u16) -> u64 {
    table
        .entries()
        .iter()
        .find(|e| e.kind == kind)
        .map_or(0, |e| e.len as u64)
}

// --- section payload encoders/decoders ------------------------------
//
// Each artifact has a symmetric `encode_*`/`decode_*` pair over bare
// payload bytes; the v1 path concatenates the dictionary and trajectory
// payloads into one monolithic container, the v2 path gives each its own
// checksummed section.

fn encode_grid_into(enc: &mut Encoder, grid: &FrequencyGrid) {
    enc.put_u8(match grid.spacing() {
        Spacing::Linear => SPACING_LINEAR,
        Spacing::Logarithmic => SPACING_LOGARITHMIC,
    });
    enc.put_f64s(grid.frequencies());
}

fn decode_grid(dec: &mut Decoder) -> Result<FrequencyGrid, CodecError> {
    let spacing = match dec.get_u8()? {
        SPACING_LINEAR => Spacing::Linear,
        SPACING_LOGARITHMIC => Spacing::Logarithmic,
        tag => {
            return Err(CodecError::Malformed(format!("unknown spacing tag {tag}")));
        }
    };
    let freqs = dec.get_f64s()?;
    ensure(!freqs.is_empty(), "frequency grid is empty")?;
    ensure(
        freqs.iter().all(|w| w.is_finite() && *w > 0.0),
        "grid frequencies must be positive and finite",
    )?;
    ensure(
        freqs.windows(2).all(|w| w[0] < w[1]),
        "grid frequencies must be strictly increasing",
    )?;
    Ok(FrequencyGrid::from_parts(freqs, spacing))
}

fn encode_probe_into(enc: &mut Encoder, probe: &Probe) {
    match probe {
        Probe::Node(n) => {
            enc.put_u8(PROBE_NODE);
            enc.put_str(n);
        }
        Probe::Differential(p, n) => {
            enc.put_u8(PROBE_DIFFERENTIAL);
            enc.put_str(p);
            enc.put_str(n);
        }
    }
}

fn decode_probe(dec: &mut Decoder) -> Result<Probe, CodecError> {
    match dec.get_u8()? {
        PROBE_NODE => Ok(Probe::Node(dec.get_str()?)),
        PROBE_DIFFERENTIAL => Ok(Probe::Differential(dec.get_str()?, dec.get_str()?)),
        tag => Err(CodecError::Malformed(format!("unknown probe tag {tag}"))),
    }
}

/// Reads one length-prefixed response vector and checks it against the
/// grid length and finiteness — shared by golden and entry responses.
/// (Error strings are built only on failure: this runs once per
/// dictionary entry, so the happy path must not allocate messages.)
fn decode_response(dec: &mut Decoder, grid_len: usize, what: &str) -> Result<Vec<f64>, CodecError> {
    let xs = dec.get_f64s()?;
    if xs.len() != grid_len {
        return Err(CodecError::Malformed(format!(
            "{what} length must match the grid"
        )));
    }
    if !xs.iter().all(|x| x.is_finite()) {
        return Err(CodecError::Malformed(format!("{what} must be finite")));
    }
    Ok(xs)
}

fn encode_dictionary_into(enc: &mut Encoder, dict: &FaultDictionary) {
    encode_grid_into(enc, dict.grid());
    enc.put_f64s(dict.golden_db());
    enc.put_str(dict.input());
    encode_probe_into(enc, dict.probe());
    let universe = dict.universe();
    enc.put_u32(universe.components().len() as u32);
    for comp in universe.components() {
        enc.put_str(comp);
    }
    enc.put_f64(universe.grid().max_pct());
    enc.put_f64(universe.grid().step_pct());
    // The entries mirror the universe's fault enumeration (an
    // invariant `FaultDictionary::from_parts` re-asserts), so only
    // the responses need storing.
    enc.put_u32(dict.entries().len() as u32);
    for entry in dict.entries() {
        enc.put_f64s(entry.magnitude_db());
    }
}

fn encode_dictionary(dict: &FaultDictionary) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_dictionary_into(&mut enc, dict);
    enc.into_payload()
}

fn decode_dictionary(dec: &mut Decoder) -> Result<FaultDictionary, CodecError> {
    let grid = decode_grid(dec)?;
    let golden_db = decode_response(dec, grid.len(), "golden response")?;
    let input = dec.get_str()?;
    let probe = decode_probe(dec)?;

    let n_components = dec.get_count(5)?; // len prefix + ≥1 byte per name
    let mut components = Vec::with_capacity(n_components);
    for _ in 0..n_components {
        components.push(dec.get_str()?);
    }
    ensure(!components.is_empty(), "universe has no components")?;
    let max_pct = dec.get_f64()?;
    let step_pct = dec.get_f64()?;
    ensure(
        max_pct.is_finite()
            && step_pct.is_finite()
            && step_pct > 0.0
            && step_pct <= max_pct
            && max_pct < 100.0,
        "deviation grid must satisfy 0 < step <= max < 100",
    )?;
    // Bound the fault enumeration before materialising it, so a
    // crafted step cannot make `FaultUniverse::new` allocate an
    // astronomically large fault list (or overflow its capacity).
    ensure(
        max_pct / step_pct <= 5_000.0,
        "deviation grid is implausibly fine",
    )?;
    let universe = FaultUniverse::new(&components, DeviationGrid::new(max_pct, step_pct));

    let n_entries = dec.get_count(4)?;
    ensure(
        n_entries == universe.len(),
        "entry count must match the universe",
    )?;
    let mut entries = Vec::with_capacity(n_entries);
    for fault in universe.faults() {
        let magnitude_db = decode_response(dec, grid.len(), "entry response")?;
        entries.push(DictionaryEntry::new(fault.clone(), magnitude_db));
    }
    Ok(FaultDictionary::from_parts(
        grid, golden_db, entries, universe, input, probe,
    ))
}

fn encode_trajectory_set_into(enc: &mut Encoder, set: &TrajectorySet) {
    enc.put_f64s(set.test_vector().omegas());
    enc.put_u32(set.len() as u32);
    for t in set.trajectories() {
        enc.put_str(t.component());
        enc.put_f64s(t.deviations_pct());
        enc.put_u32(t.dim() as u32);
        for p in t.points() {
            for &x in p.coords() {
                enc.put_f64(x);
            }
        }
    }
}

fn encode_trajectory_set(set: &TrajectorySet) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_trajectory_set_into(&mut enc, set);
    enc.into_payload()
}

fn decode_trajectory_set(dec: &mut Decoder) -> Result<TrajectorySet, CodecError> {
    let omegas = dec.get_f64s()?;
    ensure(!omegas.is_empty(), "test vector is empty")?;
    ensure(
        omegas.iter().all(|w| w.is_finite() && *w > 0.0),
        "test frequencies must be positive and finite",
    )?;
    let tv = TestVector::new(omegas);

    let n_traj = dec.get_count(9)?;
    ensure(n_traj > 0, "bank holds no trajectories")?;
    let mut trajectories = Vec::with_capacity(n_traj);
    let mut set_dim: Option<usize> = None;
    for _ in 0..n_traj {
        let component = dec.get_str()?;
        let devs = dec.get_f64s()?;
        ensure(devs.len() >= 2, "a trajectory needs at least two points")?;
        ensure(
            devs.windows(2).all(|w| w[0] < w[1]),
            "trajectory deviations must be strictly ascending",
        )?;
        ensure(
            devs.contains(&0.0),
            "trajectory must contain the 0% origin point",
        )?;
        ensure(
            devs.iter().all(|d| d.is_finite()),
            "trajectory deviations must be finite",
        )?;
        let dim = dec.get_u32()? as usize;
        ensure(dim > 0, "trajectory dimension must be positive")?;
        // Bound the per-point allocation by the payload actually
        // present (each coordinate takes 8 bytes), as get_count
        // does for prefixed fields.
        ensure(
            dim <= dec.remaining() / 8,
            "trajectory dimension exceeds the remaining payload",
        )?;
        ensure(
            dim.is_multiple_of(tv.len()),
            "trajectory dimension must be a multiple of the test-vector length",
        )?;
        ensure(
            set_dim.replace(dim).is_none_or(|prev| prev == dim),
            "all trajectories must share one dimension",
        )?;
        let mut points = Vec::with_capacity(devs.len());
        for _ in 0..devs.len() {
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                coords.push(dec.get_f64()?);
            }
            ensure(
                coords.iter().all(|x| x.is_finite()),
                "trajectory points must be finite",
            )?;
            points.push(Signature::new(coords));
        }
        trajectories.push(FaultTrajectory::new(component, devs, points));
    }
    Ok(TrajectorySet::new(tv, trajectories))
}

/// Encodes a trajectory set as the **v3** aligned payload (module docs
/// show the layout). `section_offset` is the absolute container offset
/// the payload will be written at — the padding is computed against it
/// so the offset table, deviations, and coordinates land 8-byte aligned
/// in the file.
fn encode_trajectory_set_v3(set: &TrajectorySet, section_offset: usize) -> Vec<u8> {
    let n_traj = set.len();
    let dim = set.dim();
    let total_points: usize = set.views().map(|v| v.point_count()).sum();

    let mut enc = Encoder::new();
    enc.put_f64s(set.test_vector().omegas());
    enc.put_u32(n_traj as u32);
    enc.put_u32(dim as u32);
    enc.put_u32(u32::try_from(total_points).expect("point count fits u32"));
    for v in set.views() {
        enc.put_str(v.component());
    }
    // +4 for the pad_len field itself.
    let aligned_start = section_offset + enc.len() + 4;
    let pad = (8 - aligned_start % 8) % 8;
    enc.put_u32(pad as u32);
    for _ in 0..pad {
        enc.put_u8(0);
    }

    let mut running = 0u32;
    enc.put_u32(0);
    for v in set.views() {
        running += v.point_count() as u32;
        enc.put_u32(running);
    }
    if (n_traj + 1) % 2 == 1 {
        enc.put_u32(0); // keep the deviation region 8-byte aligned
    }
    for v in set.views() {
        for &d in v.deviations_pct() {
            enc.put_f64(d);
        }
    }
    for v in set.views() {
        for i in 0..v.point_count() {
            for &x in v.point(i) {
                enc.put_f64(x);
            }
        }
    }
    enc.into_payload()
}

/// The structurally parsed shape of a v3 trajectory payload: everything
/// the header region declares, plus the payload-relative byte offsets of
/// the two aligned `f64` regions. Parsing is O(header + n_traj) and
/// touches no region byte.
struct V3Layout {
    omegas: Vec<f64>,
    components: Vec<String>,
    /// Prefix sums of per-trajectory point counts (`n_traj + 1` values).
    point_offsets: Vec<u32>,
    devs_off: usize,
    coords_off: usize,
    dim: usize,
    /// Whether the regions land on 8-byte container offsets. True for
    /// anything our writer emits; false only for containers whose
    /// sections were shifted after encoding (readers then decode owned
    /// instead of viewing in place).
    aligned: bool,
}

/// Parses and structurally validates a v3 trajectory payload:
/// bounds, counts, UTF-8 names, zero padding, offset-table
/// monotonicity, and exact region tiling (`section_offset` is the
/// payload's absolute offset, used to report whether the regions land
/// 8-byte aligned in the container). Region contents (deviation
/// ordering, finiteness) are deliberately not read — that is
/// `validate_deep`'s job.
fn parse_v3_trajectory_payload(
    payload: &[u8],
    section_offset: usize,
) -> Result<V3Layout, CodecError> {
    let mut dec = Decoder::over(payload);
    let omegas = dec.get_f64s()?;
    ensure(!omegas.is_empty(), "test vector is empty")?;
    ensure(
        omegas.iter().all(|w| w.is_finite() && *w > 0.0),
        "test frequencies must be positive and finite",
    )?;
    let n_traj = dec.get_u32()? as usize;
    ensure(n_traj > 0, "bank holds no trajectories")?;
    let dim = dec.get_u32()? as usize;
    ensure(dim > 0, "trajectory dimension must be positive")?;
    ensure(
        dim.is_multiple_of(omegas.len()),
        "trajectory dimension must be a multiple of the test-vector length",
    )?;
    let total_points = dec.get_u32()? as usize;
    // Each trajectory needs ≥ 2 points and each point 8·dim coordinate
    // bytes, so both counts are bounded by the payload before any
    // allocation sized by them.
    ensure(
        total_points >= 2 * n_traj,
        "total point count below two points per trajectory",
    )?;
    ensure(
        total_points
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(8))
            .is_some_and(|bytes| bytes <= payload.len()),
        "declared point count exceeds the payload",
    )?;
    let mut components = Vec::with_capacity(n_traj.min(payload.len() / 4));
    for _ in 0..n_traj {
        components.push(dec.get_str()?);
    }
    let pad = dec.get_u32()? as usize;
    ensure(pad < 8, "v3 alignment padding must be 0..=7 bytes")?;
    let mut pad_bytes = [0u8; 8];
    for b in pad_bytes.iter_mut().take(pad) {
        *b = dec.get_u8()?;
    }
    ensure(
        pad_bytes.iter().all(|b| *b == 0),
        "v3 alignment padding must be zero",
    )?;

    // Whether the writer's padding actually lands the regions on 8-byte
    // container offsets. Our writer always aligns; a container whose
    // sections were shifted afterwards (say, by a tool splicing in an
    // unknown section without re-padding) stays decodable — the packed
    // view is simply refused at construction and readers fall back to
    // owned decode. Never a hard error here: misalignment costs the
    // zero-copy fast path, not the data.
    let table_off = payload.len() - dec.remaining();
    let aligned = (section_offset + table_off).is_multiple_of(8);
    let mut point_offsets = Vec::with_capacity(n_traj + 1);
    for _ in 0..=n_traj {
        point_offsets.push(dec.get_u32()?);
    }
    ensure(
        point_offsets[0] == 0,
        "v3 point-offset table must start at zero",
    )?;
    ensure(
        point_offsets.windows(2).all(|w| w[0] + 2 <= w[1]),
        "v3 point offsets must grow by at least two per trajectory",
    )?;
    ensure(
        point_offsets[n_traj] as usize == total_points,
        "v3 point-offset table does not cover the declared points",
    )?;
    if (n_traj + 1) % 2 == 1 {
        ensure(dec.get_u32()? == 0, "v3 offset-table padding must be zero")?;
    }
    let devs_off = payload.len() - dec.remaining();
    let coords_off = devs_off + 8 * total_points;
    let end = coords_off + 8 * total_points * dim;
    if end != payload.len() {
        return Err(if end > payload.len() {
            CodecError::Truncated {
                needed: end,
                available: payload.len(),
            }
        } else {
            CodecError::TrailingBytes(payload.len() - end)
        });
    }
    Ok(V3Layout {
        omegas,
        components,
        point_offsets,
        devs_off,
        coords_off,
        dim,
        aligned,
    })
}

/// Decodes a v3 trajectory payload into owned trajectories — the heap
/// path ([`TrajectoryBank::from_bytes`]) and the fallback for platforms
/// where the payload cannot be viewed in place. Reads the regions via
/// explicit little-endian conversion, so it works at any alignment, and
/// re-checks every content invariant before the panicking constructors
/// run.
fn decode_trajectory_set_v3(
    payload: &[u8],
    section_offset: usize,
) -> Result<TrajectorySet, CodecError> {
    let layout = parse_v3_trajectory_payload(payload, section_offset)?;
    let tv = TestVector::new(layout.omegas);
    let f64_at = |off: usize| {
        f64::from_le_bytes(
            payload[off..off + 8]
                .try_into()
                .expect("8 bytes within the validated region"),
        )
    };
    let mut trajectories = Vec::with_capacity(layout.components.len());
    for (ti, component) in layout.components.into_iter().enumerate() {
        let lo = layout.point_offsets[ti] as usize;
        let hi = layout.point_offsets[ti + 1] as usize;
        let devs: Vec<f64> = (lo..hi).map(|i| f64_at(layout.devs_off + 8 * i)).collect();
        ensure(
            devs.iter().all(|d| d.is_finite()),
            "trajectory deviations must be finite",
        )?;
        ensure(
            devs.windows(2).all(|w| w[0] < w[1]),
            "trajectory deviations must be strictly ascending",
        )?;
        ensure(
            devs.contains(&0.0),
            "trajectory must contain the 0% origin point",
        )?;
        let mut points = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let base = layout.coords_off + 8 * layout.dim * i;
            let coords: Vec<f64> = (0..layout.dim).map(|j| f64_at(base + 8 * j)).collect();
            ensure(
                coords.iter().all(|x| x.is_finite()),
                "trajectory points must be finite",
            )?;
            points.push(Signature::new(coords));
        }
        trajectories.push(FaultTrajectory::new(component, devs, points));
    }
    Ok(TrajectorySet::new(tv, trajectories))
}

fn encode_multifault(mfd: &MultiFaultDictionary) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_grid_into(&mut enc, mfd.grid());
    enc.put_f64s(mfd.golden_db());
    enc.put_str(mfd.input());
    encode_probe_into(&mut enc, mfd.probe());
    enc.put_u32(mfd.entries().len() as u32);
    for entry in mfd.entries() {
        let faults = entry.fault().faults();
        enc.put_u32(faults.len() as u32);
        for f in faults {
            enc.put_str(f.component());
            enc.put_f64(f.percent());
        }
        enc.put_f64s(entry.magnitude_db());
    }
    enc.into_payload()
}

fn decode_multifault(dec: &mut Decoder) -> Result<MultiFaultDictionary, CodecError> {
    let grid = decode_grid(dec)?;
    let golden_db = decode_response(dec, grid.len(), "multifault golden response")?;
    let input = dec.get_str()?;
    let probe = decode_probe(dec)?;

    // Each entry needs at least the order prefix, one fault (len prefix
    // + ≥1-byte name + percent), and the response length prefix.
    let n_entries = dec.get_count(4 + 4 + 4 + 1 + 8 + 4)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        // Each constituent fault costs ≥ 13 bytes (name prefix + ≥1
        // byte + percent), bounding the order before allocation.
        let order = dec.get_count(13)?;
        ensure(order > 0, "multi-fault needs at least one fault")?;
        let mut faults: Vec<ParametricFault> = Vec::with_capacity(order);
        for _ in 0..order {
            let component = dec.get_str()?;
            ensure(!component.is_empty(), "multi-fault component is empty")?;
            let percent = dec.get_f64()?;
            ensure(
                percent.is_finite() && percent > -100.0,
                "multi-fault deviation must be finite and > -100%",
            )?;
            ensure(
                faults.iter().all(|f| f.component() != component),
                "multi-fault repeats a component",
            )?;
            faults.push(ParametricFault::from_percent(component, percent));
        }
        let magnitude_db = decode_response(dec, grid.len(), "multifault entry response")?;
        entries.push(MultiFaultEntry::new(MultiFault::new(faults), magnitude_db));
    }
    Ok(MultiFaultDictionary::from_parts(
        grid, golden_db, entries, input, probe,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_numerics::FrequencyGrid;

    fn rc_bank() -> TrajectoryBank {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::paper());
        let grid = FrequencyGrid::log_space(1.0, 1e6, 15);
        let dict =
            FaultDictionary::build(&ckt, &universe, "V1", &Probe::node("out"), &grid).unwrap();
        TrajectoryBank::build(dict, &TestVector::pair(100.0, 1e4))
    }

    #[test]
    fn round_trip_is_identity() {
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        let back = TrajectoryBank::from_bytes(&bytes).unwrap();
        assert_eq!(bank, back);
        // And encoding is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn save_load_round_trip() {
        let bank = rc_bank();
        let path = std::env::temp_dir().join("ft_serve_bank_test.ftb");
        bank.save(&path).unwrap();
        let back = TrajectoryBank::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bank, back);
    }

    #[test]
    fn differential_probe_round_trips() {
        let bank = rc_bank();
        let dict = bank.dictionary();
        let diff = FaultDictionary::from_parts(
            dict.grid().clone(),
            dict.golden_db().to_vec(),
            dict.entries().to_vec(),
            dict.universe().clone(),
            dict.input().to_string(),
            Probe::differential("in", "out"),
        );
        let bank = TrajectoryBank::from_parts(diff, bank.trajectory_set().clone());
        let back = TrajectoryBank::from_bytes(&bank.to_bytes()).unwrap();
        assert_eq!(bank, back);
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        // Corruption anywhere in the container must surface as an error
        // (header fields and payload are both covered; a flip can never
        // silently yield a *different valid* bank).
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        // Sample positions across the container, always including the
        // magic, version, section count, table checksum, and both
        // section-table entries (2 sections × 18 bytes from offset 22).
        for pos in (0..bytes.len()).step_by(97).chain([0, 9, 13, 21, 30, 48]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncated_file_is_detected() {
        let bytes = rc_bank().to_bytes();
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(TrajectoryBank::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn load_missing_file_is_io_error_naming_the_path() {
        let err = TrajectoryBank::load("/nonexistent/bank.ftb").unwrap_err();
        match &err {
            CodecError::InFile { path, source } => {
                assert_eq!(path.to_string_lossy(), "/nonexistent/bank.ftb");
                assert!(matches!(**source, CodecError::Io(_)));
            }
            other => panic!("expected InFile, got {other:?}"),
        }
        assert!(err.to_string().contains("/nonexistent/bank.ftb"));
    }

    #[test]
    fn v1_container_still_loads() {
        // A bank written by the legacy monolithic writer decodes under
        // the v2 reader, bit-for-bit equal apart from the (absent)
        // multi-fault dictionary.
        let bank = rc_bank();
        let v1 = bank.to_bytes_v1();
        assert_eq!(crate::codec::peek_version(&v1).unwrap(), BANK_VERSION_V1);
        let back = TrajectoryBank::from_bytes(&v1).unwrap();
        assert_eq!(bank, back);
        // The v1 writer is deterministic too.
        assert_eq!(v1, back.to_bytes_v1());
        // And single-byte corruption of a v1 container is still caught.
        for pos in (0..v1.len()).step_by(101).chain([0, 9, 17, 25]) {
            let mut corrupt = v1.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "v1 flip at byte {pos} went undetected"
            );
        }
    }

    fn rc_multifault() -> MultiFaultDictionary {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::new(40.0, 20.0));
        MultiFaultDictionary::build_pairs(
            &ckt,
            &universe,
            "V1",
            &Probe::node("out"),
            &FrequencyGrid::log_space(1.0, 1e5, 9),
        )
        .unwrap()
    }

    #[test]
    fn multifault_dictionary_round_trips_byte_identically() {
        let bank = rc_bank().with_multifault(rc_multifault());
        assert!(bank.multifault_dictionary().is_some());
        let bytes = bank.to_bytes();
        let back = TrajectoryBank::from_bytes(&bytes).unwrap();
        assert_eq!(bank, back);
        assert_eq!(
            bank.multifault_dictionary(),
            back.multifault_dictionary(),
            "multi-fault dictionary must survive the round trip"
        );
        // Byte-identical re-encode — the acceptance criterion.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn multifault_section_every_flip_detected() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let bytes = bank.to_bytes();
        for pos in (0..bytes.len()).step_by(89).chain([0, 21, 40, 58]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn mapped_open_matches_heap_load() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let path = std::env::temp_dir().join("ft_serve_mapped_open_test.ftb");
        bank.save(&path).unwrap();
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(&set, bank.trajectory_set());
        assert!(set.is_packed() || !mapped.is_mapped());
        mapped.verify_trajectory_payload().unwrap();
        set.validate_deep().unwrap();
        assert_eq!(&*mapped.dictionary().unwrap(), bank.dictionary());
        assert_eq!(
            mapped.multifault_dictionary().unwrap().as_deref(),
            bank.multifault_dictionary()
        );
        assert_eq!(mapped.is_mapped(), cfg!(unix));
        assert_eq!(mapped.generation(), FileGen::probe(&path).unwrap());
        // The budget estimate covers the payloads (container minus
        // header/table overhead).
        let file_len = std::fs::metadata(&path).unwrap().len();
        assert!(mapped.payload_bytes() > 0 && mapped.payload_bytes() < file_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_open_decodes_legacy_v1_eagerly() {
        let bank = rc_bank();
        let path = std::env::temp_dir().join("ft_serve_mapped_v1_test.ftb");
        std::fs::write(&path, bank.to_bytes_v1()).unwrap();
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(&set, bank.trajectory_set());
        assert_eq!(&*mapped.dictionary().unwrap(), bank.dictionary());
        assert_eq!(mapped.multifault_dictionary().unwrap(), None);
        assert!(!mapped.is_mapped(), "v1 has no lazily mapped sections");
        assert_eq!(
            mapped.payload_bytes(),
            std::fs::metadata(&path).unwrap().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_corruption_outside_trajectories_is_deferred_and_attributed() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let bytes = bank.to_bytes();
        let container = Container::parse(&bytes).unwrap();
        let dict_off = container.sections()[0].offset;
        drop(container);
        let mut corrupt = bytes;
        corrupt[dict_off] ^= 0x01;

        let path = std::env::temp_dir().join("ft_serve_mapped_lazy_corrupt_test.ftb");
        std::fs::write(&path, &corrupt).unwrap();
        // Opening succeeds — the trajectory section is intact, and the
        // dictionary bytes are never touched.
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(&set, bank.trajectory_set());
        // First touch of the dictionary detects and attributes the hit,
        // naming the shard file; the error replays on every call.
        for _ in 0..2 {
            let err = mapped.dictionary().expect_err("corruption must surface");
            let msg = err.to_string();
            assert!(msg.contains("dictionary"), "{msg}");
            assert!(msg.contains("mapped_lazy_corrupt"), "{msg}");
        }
        // The untouched multifault section still decodes.
        assert!(mapped.multifault_dictionary().unwrap().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_v2_corruption_in_trajectories_fails_open() {
        // v2 decodes the trajectory section eagerly, so its FNV is
        // checked at open and corruption is fatal there.
        let bank = rc_bank();
        let bytes = bank.to_bytes_v2();
        let container = Container::parse(&bytes).unwrap();
        let traj_off = container.sections()[1].offset;
        drop(container);
        let mut corrupt = bytes;
        corrupt[traj_off] ^= 0x01;
        let path = std::env::temp_dir().join("ft_serve_mapped_traj_corrupt_test.ftb");
        std::fs::write(&path, &corrupt).unwrap();
        let err = MappedBank::open(&path).expect_err("trajectory corruption fails open");
        assert!(err.to_string().contains("trajectories"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_v3_region_corruption_is_caught_by_deferred_verification() {
        // A v3 open never reads the deviation/coordinate regions, so a
        // flipped coordinate byte opens fine — and must then be caught
        // by the explicit verification pass engines run before serving.
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        let container = Container::parse(&bytes).unwrap();
        let traj = container.sections()[1];
        // Last byte of the trajectory payload = deep inside the
        // coordinate region.
        let hit = traj.offset + traj.payload.len() - 1;
        drop(container);
        let mut corrupt = bytes;
        corrupt[hit] ^= 0x01;
        let path = std::env::temp_dir().join("ft_serve_mapped_v3_region_corrupt_test.ftb");
        std::fs::write(&path, &corrupt).unwrap();
        let (mapped, set) = MappedBank::open(&path).unwrap();
        assert_eq!(set.len(), bank.trajectory_set().len());
        let err = mapped
            .verify_trajectory_payload()
            .expect_err("region corruption must fail verification");
        assert!(err.to_string().contains("trajectories"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_structural_corruption_fails_open() {
        // A truncated payload must fail the O(header) open itself,
        // never reaching the in-place f64 cast; a misaligned region
        // must never be viewed in place, only decoded owned.
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        let path = std::env::temp_dir().join("ft_serve_v3_structural_test.ftb");

        // Truncation anywhere in the file.
        for cut in [bytes.len() - 1, bytes.len() - 9, bytes.len() / 2] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(MappedBank::open(&path).is_err(), "cut at {cut} opened");
        }

        // Misalignment: re-encode the trajectory payload as if the
        // section sat 4 bytes later. Its internal padding then differs
        // by 4 mod 8, so against the offset the container actually
        // assigns, the f64 regions land 4-byte aligned at best — the
        // shape a tool splicing sections without re-padding produces.
        // The checksums are valid (the builder recomputes them), so
        // the data is intact: both readers must fall back to owned
        // decode (no zero-copy view over unaligned bytes, no error).
        let container = Container::parse(&bytes).unwrap();
        let traj = container.sections()[1];
        let dict_payload = container.require(SECTION_DICTIONARY).unwrap().to_vec();
        drop(container);
        let layout = parse_v3_trajectory_payload(traj.payload, traj.offset).unwrap();
        assert!(layout.aligned, "writer aligns");
        assert_eq!((traj.offset + layout.devs_off) % 8, 0, "writer aligns");
        let skewed = encode_trajectory_set_v3(bank.trajectory_set(), traj.offset + 4);
        let mut b = ContainerBuilder::new();
        b.push_section(SECTION_DICTIONARY, dict_payload);
        b.push_section(SECTION_TRAJECTORIES, skewed);
        let misaligned = b.finish();
        let skewed_layout = {
            let c = Container::parse(&misaligned).unwrap();
            let t = c.sections()[1];
            parse_v3_trajectory_payload(t.payload, t.offset).unwrap()
        };
        assert!(!skewed_layout.aligned, "skew must defeat the padding");
        std::fs::write(&path, &misaligned).unwrap();
        let (_, set) = MappedBank::open(&path).expect("misaligned container still opens");
        assert!(!set.is_packed(), "unaligned bytes must not be viewed");
        assert_eq!(&set, bank.trajectory_set(), "owned fallback is lossless");
        // The heap decoder never views in place, so it is indifferent.
        let back = TrajectoryBank::from_bytes(&misaligned).expect("heap decode tolerates shift");
        assert_eq!(back.trajectory_set(), bank.trajectory_set());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_per_section_corruption_is_attributed() {
        // One flipped byte per section, each attributed to the section
        // it hit by the heap loader.
        let bank = rc_bank().with_multifault(rc_multifault());
        let bytes = bank.to_bytes();
        let container = Container::parse(&bytes).unwrap();
        let hits: Vec<(usize, &str)> = vec![
            (container.sections()[0].offset, "dictionary"),
            (
                // Mid-payload: inside the trajectory f64 regions.
                container.sections()[1].offset + container.sections()[1].payload.len() / 2,
                "trajectories",
            ),
            (container.sections()[2].offset, "multifault"),
        ];
        drop(container);
        for (pos, name) in hits {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            let err = TrajectoryBank::from_bytes(&corrupt)
                .expect_err("corruption must surface on heap load");
            assert!(
                err.to_string().contains(name),
                "flip at {pos}: expected attribution to {name}, got {err}"
            );
        }
    }

    #[test]
    fn v3_round_trip_and_reencode_from_v2_are_identical() {
        let bank = rc_bank().with_multifault(rc_multifault());
        // v3 round trip is the identity.
        let v3 = bank.to_bytes();
        let back = TrajectoryBank::from_bytes(&v3).unwrap();
        assert_eq!(bank, back);
        assert_eq!(v3, back.to_bytes(), "v3 encoding is deterministic");
        // v2 → decode → v3 re-encode equals direct v3 encode.
        let v2 = bank.to_bytes_v2();
        assert_ne!(v2, v3);
        let via_v2 = TrajectoryBank::from_bytes(&v2).unwrap();
        assert_eq!(bank, via_v2);
        assert_eq!(via_v2.to_bytes(), v3, "re-encode is byte-identical");
    }

    #[test]
    fn section_eviction_frees_and_redecodes() {
        let bank = rc_bank().with_multifault(rc_multifault());
        let path = std::env::temp_dir().join("ft_serve_section_evict_test.ftb");
        bank.save(&path).unwrap();
        let (mapped, set) = MappedBank::open(&path).unwrap();

        // Fresh open: only the trajectory section is resident.
        let traj_only = mapped.resident_bytes();
        assert!(traj_only > 0);
        assert_eq!(mapped.evict_decoded(), 0, "nothing decoded yet");
        let residency = mapped.section_residency();
        assert_eq!(residency.len(), 3);
        assert!(residency
            .iter()
            .all(|(k, _, r)| *r == (*k == SECTION_TRAJECTORIES)));

        // Touch the cold sections: residency and accounting grow.
        let dict_a = mapped.dictionary().unwrap();
        assert!(mapped.multifault_dictionary().unwrap().is_some());
        let all_resident = mapped.resident_bytes();
        assert!(all_resident > traj_only);
        assert_eq!(all_resident, mapped.payload_bytes());
        assert!(mapped.section_residency().iter().all(|(_, _, r)| *r));

        // Evict: the decodes drop, the trajectory set keeps serving.
        let freed = mapped.evict_decoded();
        assert_eq!(freed, all_resident - traj_only);
        assert_eq!(mapped.resident_bytes(), traj_only);
        assert_eq!(&set, bank.trajectory_set(), "view survives eviction");
        // An evicted Arc handed out earlier stays valid (refcounted).
        assert_eq!(&*dict_a, bank.dictionary());

        // Re-touch: decodes again, byte-identical.
        let dict_b = mapped.dictionary().unwrap();
        assert_eq!(&*dict_b, bank.dictionary());
        let mf_b = mapped.multifault_dictionary().unwrap();
        assert_eq!(mf_b.as_deref(), bank.multifault_dictionary());
        assert_eq!(mapped.resident_bytes(), all_resident);
        std::fs::remove_file(&path).ok();
    }

    /// Encodes a minimal single-component bank by hand, letting tests
    /// inject hostile field values the public API can never produce.
    fn hostile_bank(step_pct: f64, traj_dim: u32, coord: f64) -> Vec<u8> {
        use crate::codec::Encoder;
        let mut enc = Encoder::new();
        enc.put_u8(1); // logarithmic spacing
        enc.put_f64s(&[1.0, 2.0]);
        enc.put_f64s(&[-3.0, -9.0]); // golden
        enc.put_str("V1");
        enc.put_u8(0); // node probe
        enc.put_str("out");
        enc.put_u32(1); // one component
        enc.put_str("R1");
        enc.put_f64(40.0); // max_pct
        enc.put_f64(step_pct);
        let n_entries = if step_pct == 10.0 { 8 } else { 0 };
        enc.put_u32(n_entries);
        for _ in 0..n_entries {
            enc.put_f64s(&[-2.0, -8.0]);
        }
        enc.put_f64s(&[1.0, 2.0]); // test vector
        enc.put_u32(1); // one trajectory
        enc.put_str("R1");
        enc.put_f64s(&[-10.0, 0.0, 10.0]);
        enc.put_u32(traj_dim);
        if traj_dim == 2 {
            for &c in &[-1.0, -1.0, 0.0, 0.0, coord, 1.0] {
                enc.put_f64(c);
            }
        }
        enc.finish()
    }

    #[test]
    fn hand_encoded_baseline_decodes() {
        // Sanity-check the hostile encoder against the real format.
        let bank = TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, 1.0)).unwrap();
        assert_eq!(bank.trajectory_set().len(), 1);
        assert_eq!(bank.dictionary().entries().len(), 8);
    }

    #[test]
    fn hostile_fields_error_instead_of_panicking() {
        // Implausibly fine deviation grid: must not attempt to
        // enumerate ~10^300 faults.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(5e-324, 2, 1.0)).is_err());
        assert!(TrajectoryBank::from_bytes(&hostile_bank(1e-9, 2, 1.0)).is_err());
        // Declared dimension far beyond the payload: must not allocate.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, u32::MAX, 1.0)).is_err());
        // Non-finite trajectory coordinate: must not load a bank that
        // would panic the diagnosis path later.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, f64::NAN)).is_err());
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, f64::INFINITY)).is_err());
    }
}
