//! The trajectory bank: the offline phase's artifacts, persisted.
//!
//! A bank packages a [`FaultDictionary`] (the expensive fault-simulation
//! product) with the [`TrajectorySet`] materialised at the deployed test
//! vector, so the online phase loads both from disk instead of
//! re-simulating. Serialisation uses the [`codec`](crate::codec)
//! container; every structural invariant is re-checked on load before
//! any panicking constructor runs, so a hostile or corrupt file yields a
//! [`CodecError`], never a panic.

use std::path::Path;

use ft_circuit::Probe;
use ft_core::{
    trajectories_from_dictionary, FaultTrajectory, Signature, TestVector, TrajectorySet,
};
use ft_faults::{DeviationGrid, DictionaryEntry, FaultDictionary, FaultUniverse};
use ft_numerics::{FrequencyGrid, Spacing};

use crate::codec::{CodecError, Decoder, Encoder};

/// Probe encoding tags.
const PROBE_NODE: u8 = 0;
const PROBE_DIFFERENTIAL: u8 = 1;

/// Spacing encoding tags.
const SPACING_LINEAR: u8 = 0;
const SPACING_LOGARITHMIC: u8 = 1;

fn ensure(cond: bool, what: &str) -> Result<(), CodecError> {
    if cond {
        Ok(())
    } else {
        Err(CodecError::Malformed(what.into()))
    }
}

/// A persistent diagnosis artifact: fault dictionary + the trajectory
/// set of the deployed test vector.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryBank {
    dict: FaultDictionary,
    set: TrajectorySet,
}

impl TrajectoryBank {
    /// Builds a bank by materialising the dictionary's trajectories at
    /// `tv` — the offline step of the serving pipeline.
    pub fn build(dict: FaultDictionary, tv: &TestVector) -> Self {
        let set = trajectories_from_dictionary(&dict, tv);
        TrajectoryBank { dict, set }
    }

    /// Packages an already-materialised trajectory set with its
    /// dictionary (e.g. a set built by `trajectories_exact`).
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty — an empty bank cannot serve diagnoses.
    pub fn from_parts(dict: FaultDictionary, set: TrajectorySet) -> Self {
        assert!(!set.is_empty(), "a bank needs at least one trajectory");
        TrajectoryBank { dict, set }
    }

    /// The fault dictionary.
    #[inline]
    pub fn dictionary(&self) -> &FaultDictionary {
        &self.dict
    }

    /// The trajectory set served by this bank.
    #[inline]
    pub fn trajectory_set(&self) -> &TrajectorySet {
        &self.set
    }

    /// The deployed test vector.
    #[inline]
    pub fn test_vector(&self) -> &TestVector {
        self.set.test_vector()
    }

    /// Serialises the bank into a self-describing container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();

        // --- dictionary section -------------------------------------
        let grid = self.dict.grid();
        enc.put_u8(match grid.spacing() {
            Spacing::Linear => SPACING_LINEAR,
            Spacing::Logarithmic => SPACING_LOGARITHMIC,
        });
        enc.put_f64s(grid.frequencies());
        enc.put_f64s(self.dict.golden_db());
        enc.put_str(self.dict.input());
        match self.dict.probe() {
            Probe::Node(n) => {
                enc.put_u8(PROBE_NODE);
                enc.put_str(n);
            }
            Probe::Differential(p, n) => {
                enc.put_u8(PROBE_DIFFERENTIAL);
                enc.put_str(p);
                enc.put_str(n);
            }
        }
        let universe = self.dict.universe();
        enc.put_u32(universe.components().len() as u32);
        for comp in universe.components() {
            enc.put_str(comp);
        }
        enc.put_f64(universe.grid().max_pct());
        enc.put_f64(universe.grid().step_pct());
        // The entries mirror the universe's fault enumeration (an
        // invariant `FaultDictionary::from_parts` re-asserts), so only
        // the responses need storing.
        enc.put_u32(self.dict.entries().len() as u32);
        for entry in self.dict.entries() {
            enc.put_f64s(entry.magnitude_db());
        }

        // --- trajectory-set section ---------------------------------
        enc.put_f64s(self.set.test_vector().omegas());
        enc.put_u32(self.set.len() as u32);
        for t in self.set.trajectories() {
            enc.put_str(t.component());
            enc.put_f64s(t.deviations_pct());
            enc.put_u32(t.dim() as u32);
            for p in t.points() {
                for &x in p.coords() {
                    enc.put_f64(x);
                }
            }
        }

        enc.finish()
    }

    /// Deserialises a bank, verifying the container header, checksum,
    /// and every structural invariant of the decoded data.
    ///
    /// # Errors
    ///
    /// Any corruption or inconsistency yields a [`CodecError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::open(bytes)?;

        // --- dictionary section -------------------------------------
        let spacing = match dec.get_u8()? {
            SPACING_LINEAR => Spacing::Linear,
            SPACING_LOGARITHMIC => Spacing::Logarithmic,
            tag => {
                return Err(CodecError::Malformed(format!("unknown spacing tag {tag}")));
            }
        };
        let freqs = dec.get_f64s()?;
        ensure(!freqs.is_empty(), "frequency grid is empty")?;
        ensure(
            freqs.iter().all(|w| w.is_finite() && *w > 0.0),
            "grid frequencies must be positive and finite",
        )?;
        ensure(
            freqs.windows(2).all(|w| w[0] < w[1]),
            "grid frequencies must be strictly increasing",
        )?;
        let grid = FrequencyGrid::from_parts(freqs, spacing);

        let golden_db = dec.get_f64s()?;
        ensure(
            golden_db.len() == grid.len(),
            "golden response length must match the grid",
        )?;
        ensure(
            golden_db.iter().all(|x| x.is_finite()),
            "golden response must be finite",
        )?;
        let input = dec.get_str()?;
        let probe = match dec.get_u8()? {
            PROBE_NODE => Probe::Node(dec.get_str()?),
            PROBE_DIFFERENTIAL => Probe::Differential(dec.get_str()?, dec.get_str()?),
            tag => {
                return Err(CodecError::Malformed(format!("unknown probe tag {tag}")));
            }
        };

        let n_components = dec.get_count(5)?; // len prefix + ≥1 byte per name
        let mut components = Vec::with_capacity(n_components);
        for _ in 0..n_components {
            components.push(dec.get_str()?);
        }
        ensure(!components.is_empty(), "universe has no components")?;
        let max_pct = dec.get_f64()?;
        let step_pct = dec.get_f64()?;
        ensure(
            max_pct.is_finite()
                && step_pct.is_finite()
                && step_pct > 0.0
                && step_pct <= max_pct
                && max_pct < 100.0,
            "deviation grid must satisfy 0 < step <= max < 100",
        )?;
        // Bound the fault enumeration before materialising it, so a
        // crafted step cannot make `FaultUniverse::new` allocate an
        // astronomically large fault list (or overflow its capacity).
        ensure(
            max_pct / step_pct <= 5_000.0,
            "deviation grid is implausibly fine",
        )?;
        let universe = FaultUniverse::new(&components, DeviationGrid::new(max_pct, step_pct));

        let n_entries = dec.get_count(4)?;
        ensure(
            n_entries == universe.len(),
            "entry count must match the universe",
        )?;
        let mut entries = Vec::with_capacity(n_entries);
        for fault in universe.faults() {
            let magnitude_db = dec.get_f64s()?;
            ensure(
                magnitude_db.len() == grid.len(),
                "entry response length must match the grid",
            )?;
            ensure(
                magnitude_db.iter().all(|x| x.is_finite()),
                "entry response must be finite",
            )?;
            entries.push(DictionaryEntry::new(fault.clone(), magnitude_db));
        }
        let dict = FaultDictionary::from_parts(grid, golden_db, entries, universe, input, probe);

        // --- trajectory-set section ---------------------------------
        let omegas = dec.get_f64s()?;
        ensure(!omegas.is_empty(), "test vector is empty")?;
        ensure(
            omegas.iter().all(|w| w.is_finite() && *w > 0.0),
            "test frequencies must be positive and finite",
        )?;
        let tv = TestVector::new(omegas);

        let n_traj = dec.get_count(9)?;
        ensure(n_traj > 0, "bank holds no trajectories")?;
        let mut trajectories = Vec::with_capacity(n_traj);
        let mut set_dim: Option<usize> = None;
        for _ in 0..n_traj {
            let component = dec.get_str()?;
            let devs = dec.get_f64s()?;
            ensure(devs.len() >= 2, "a trajectory needs at least two points")?;
            ensure(
                devs.windows(2).all(|w| w[0] < w[1]),
                "trajectory deviations must be strictly ascending",
            )?;
            ensure(
                devs.contains(&0.0),
                "trajectory must contain the 0% origin point",
            )?;
            ensure(
                devs.iter().all(|d| d.is_finite()),
                "trajectory deviations must be finite",
            )?;
            let dim = dec.get_u32()? as usize;
            ensure(dim > 0, "trajectory dimension must be positive")?;
            // Bound the per-point allocation by the payload actually
            // present (each coordinate takes 8 bytes), as get_count
            // does for prefixed fields.
            ensure(
                dim <= dec.remaining() / 8,
                "trajectory dimension exceeds the remaining payload",
            )?;
            ensure(
                dim.is_multiple_of(tv.len()),
                "trajectory dimension must be a multiple of the test-vector length",
            )?;
            ensure(
                set_dim.replace(dim).is_none_or(|prev| prev == dim),
                "all trajectories must share one dimension",
            )?;
            let mut points = Vec::with_capacity(devs.len());
            for _ in 0..devs.len() {
                let mut coords = Vec::with_capacity(dim);
                for _ in 0..dim {
                    coords.push(dec.get_f64()?);
                }
                ensure(
                    coords.iter().all(|x| x.is_finite()),
                    "trajectory points must be finite",
                )?;
                points.push(Signature::new(coords));
            }
            trajectories.push(FaultTrajectory::new(component, devs, points));
        }
        let set = TrajectorySet::new(tv, trajectories);

        dec.finish()?;
        Ok(TrajectoryBank { dict, set })
    }

    /// Writes the bank to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and verifies a bank from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and every decode error of
    /// [`TrajectoryBank::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        let bytes = std::fs::read(path)?;
        TrajectoryBank::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_numerics::FrequencyGrid;

    fn rc_bank() -> TrajectoryBank {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", 1e3).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::paper());
        let grid = FrequencyGrid::log_space(1.0, 1e6, 15);
        let dict =
            FaultDictionary::build(&ckt, &universe, "V1", &Probe::node("out"), &grid).unwrap();
        TrajectoryBank::build(dict, &TestVector::pair(100.0, 1e4))
    }

    #[test]
    fn round_trip_is_identity() {
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        let back = TrajectoryBank::from_bytes(&bytes).unwrap();
        assert_eq!(bank, back);
        // And encoding is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn save_load_round_trip() {
        let bank = rc_bank();
        let path = std::env::temp_dir().join("ft_serve_bank_test.ftb");
        bank.save(&path).unwrap();
        let back = TrajectoryBank::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bank, back);
    }

    #[test]
    fn differential_probe_round_trips() {
        let bank = rc_bank();
        let dict = bank.dictionary();
        let diff = FaultDictionary::from_parts(
            dict.grid().clone(),
            dict.golden_db().to_vec(),
            dict.entries().to_vec(),
            dict.universe().clone(),
            dict.input().to_string(),
            Probe::differential("in", "out"),
        );
        let bank = TrajectoryBank::from_parts(diff, bank.trajectory_set().clone());
        let back = TrajectoryBank::from_bytes(&bank.to_bytes()).unwrap();
        assert_eq!(bank, back);
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        // Corruption anywhere in the container must surface as an error
        // (header fields and payload are both covered; a flip can never
        // silently yield a *different valid* bank).
        let bank = rc_bank();
        let bytes = bank.to_bytes();
        // Sample positions across the container, always including the
        // header and both section boundaries.
        for pos in (0..bytes.len()).step_by(97).chain([0, 9, 17, 25]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                TrajectoryBank::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncated_file_is_detected() {
        let bytes = rc_bank().to_bytes();
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(TrajectoryBank::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = TrajectoryBank::load("/nonexistent/bank.ftb").unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    /// Encodes a minimal single-component bank by hand, letting tests
    /// inject hostile field values the public API can never produce.
    fn hostile_bank(step_pct: f64, traj_dim: u32, coord: f64) -> Vec<u8> {
        use crate::codec::Encoder;
        let mut enc = Encoder::new();
        enc.put_u8(1); // logarithmic spacing
        enc.put_f64s(&[1.0, 2.0]);
        enc.put_f64s(&[-3.0, -9.0]); // golden
        enc.put_str("V1");
        enc.put_u8(0); // node probe
        enc.put_str("out");
        enc.put_u32(1); // one component
        enc.put_str("R1");
        enc.put_f64(40.0); // max_pct
        enc.put_f64(step_pct);
        let n_entries = if step_pct == 10.0 { 8 } else { 0 };
        enc.put_u32(n_entries);
        for _ in 0..n_entries {
            enc.put_f64s(&[-2.0, -8.0]);
        }
        enc.put_f64s(&[1.0, 2.0]); // test vector
        enc.put_u32(1); // one trajectory
        enc.put_str("R1");
        enc.put_f64s(&[-10.0, 0.0, 10.0]);
        enc.put_u32(traj_dim);
        if traj_dim == 2 {
            for &c in &[-1.0, -1.0, 0.0, 0.0, coord, 1.0] {
                enc.put_f64(c);
            }
        }
        enc.finish()
    }

    #[test]
    fn hand_encoded_baseline_decodes() {
        // Sanity-check the hostile encoder against the real format.
        let bank = TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, 1.0)).unwrap();
        assert_eq!(bank.trajectory_set().len(), 1);
        assert_eq!(bank.dictionary().entries().len(), 8);
    }

    #[test]
    fn hostile_fields_error_instead_of_panicking() {
        // Implausibly fine deviation grid: must not attempt to
        // enumerate ~10^300 faults.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(5e-324, 2, 1.0)).is_err());
        assert!(TrajectoryBank::from_bytes(&hostile_bank(1e-9, 2, 1.0)).is_err());
        // Declared dimension far beyond the payload: must not allocate.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, u32::MAX, 1.0)).is_err());
        // Non-finite trajectory coordinate: must not load a bank that
        // would panic the diagnosis path later.
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, f64::NAN)).is_err());
        assert!(TrajectoryBank::from_bytes(&hostile_bank(10.0, 2, f64::INFINITY)).is_err());
    }
}
