//! Deterministic synthetic trajectory sets for stress tests and
//! benchmarks.
//!
//! Real banks for the paper's CUT hold 7 trajectories × 8 segments; the
//! index only shows its worth at production scale. This generator builds
//! geometrically plausible sets of arbitrary size: every trajectory
//! passes through the origin (the 0% point, as real fault trajectories
//! do), radiates outward with a per-component direction, and bends
//! slightly so segments are not collinear.

use ft_core::{FaultTrajectory, Signature, TestVector, TrajectorySet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Signature-space radius the synthetic trajectories extend to (dB).
const EXTENT_DB: f64 = 6.0;

/// Builds a synthetic trajectory set: `components` trajectories of
/// `2 * points_per_branch` segments each (deviations from −40% to +40%
/// through the 0% origin) in a `dim`-dimensional signature space,
/// seeded deterministically.
///
/// # Panics
///
/// Panics if `components == 0`, `points_per_branch == 0`, or `dim == 0`.
pub fn synthetic_trajectory_set(
    components: usize,
    points_per_branch: usize,
    dim: usize,
    seed: u64,
) -> TrajectorySet {
    assert!(components > 0, "need at least one component");
    assert!(points_per_branch > 0, "need at least one point per branch");
    assert!(dim > 0, "signature space needs at least one dimension");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = points_per_branch as i64;

    let mut trajectories = Vec::with_capacity(components);
    for c in 0..components {
        // Random primary direction, unit length.
        let mut u: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        u.iter_mut().for_each(|x| *x /= norm);
        // Curvature direction bends the polyline so segments differ.
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.3..0.3)).collect();

        let devs: Vec<f64> = (-n..=n).map(|k| k as f64 * (40.0 / n as f64)).collect();
        let points: Vec<Signature> = (-n..=n)
            .map(|k| {
                let t = k as f64 / n as f64; // −1 ‥ +1, 0 at the origin
                let r = t * EXTENT_DB;
                let bend = t * t * EXTENT_DB;
                Signature::new((0..dim).map(|d| u[d] * r + v[d] * bend).collect())
            })
            .collect();
        trajectories.push(FaultTrajectory::new(format!("C{c}"), devs, points));
    }

    let tv = TestVector::new((1..=dim).map(|k| k as f64).collect());
    TrajectorySet::new(tv, trajectories)
}

/// Draws `count` query signatures near the set's trajectories (random
/// trajectory point plus jitter) — realistic observations for
/// benchmarking, seeded deterministically.
pub fn synthetic_queries(set: &TrajectorySet, count: usize, seed: u64) -> Vec<Signature> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let t = &set.trajectories()[rng.gen_range(0..set.len())];
            let p = &t.points()[rng.gen_range(0..t.points().len())];
            Signature::new(
                p.coords()
                    .iter()
                    .map(|&x| x + rng.gen_range(-0.25..0.25))
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let set = synthetic_trajectory_set(64, 8, 2, 7);
        assert_eq!(set.len(), 64);
        assert_eq!(set.dim(), 2);
        assert_eq!(set.total_segments(), 64 * 16);
        assert!(set.total_segments() >= 1000, "bench-scale bank");
        // Every trajectory passes through the origin.
        for t in set.trajectories() {
            let oi = t.deviations_pct().iter().position(|d| *d == 0.0).unwrap();
            assert!(t.points()[oi].norm() < 1e-12);
        }
        // Same seed, same set; different seed, different geometry.
        assert_eq!(set, synthetic_trajectory_set(64, 8, 2, 7));
        assert_ne!(set, synthetic_trajectory_set(64, 8, 2, 8));
    }

    #[test]
    fn queries_are_deterministic_and_well_shaped() {
        let set = synthetic_trajectory_set(8, 4, 3, 1);
        let qs = synthetic_queries(&set, 10, 2);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.dim() == 3));
        assert_eq!(qs, synthetic_queries(&set, 10, 2));
    }

    #[test]
    fn higher_dimensional_sets_build() {
        let set = synthetic_trajectory_set(4, 3, 4, 3);
        assert_eq!(set.dim(), 4);
        assert_eq!(set.channels(), 1);
    }
}
