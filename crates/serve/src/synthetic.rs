//! Deterministic synthetic trajectory sets for stress tests and
//! benchmarks.
//!
//! Real banks for the paper's CUT hold 7 trajectories × 8 segments; the
//! index only shows its worth at production scale. Two generators are
//! provided: a geometric one ([`synthetic_trajectory_set`]) that builds
//! plausible sets of arbitrary size — every trajectory passes through the
//! origin (the 0% point, as real fault trajectories do), radiates outward
//! with a per-component direction, and bends slightly so segments are not
//! collinear — and a circuit-backed one ([`synthetic_circuit_bank`]) that
//! actually simulates an RLC-ladder CUT of configurable order on the
//! stamp-split AC sweep engine, so serving benchmarks can exercise the
//! full offline pipeline at scale.

use ft_circuit::{rlc_ladder_lowpass, CircuitError};
use ft_core::{FaultTrajectory, Signature, TestVector, TrajectorySet};
use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
use ft_numerics::FrequencyGrid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bank::TrajectoryBank;

/// Signature-space radius the synthetic trajectories extend to (dB).
const EXTENT_DB: f64 = 6.0;

/// Builds a synthetic trajectory set: `components` trajectories of
/// `2 * points_per_branch` segments each (deviations from −40% to +40%
/// through the 0% origin) in a `dim`-dimensional signature space,
/// seeded deterministically.
///
/// # Panics
///
/// Panics if `components == 0`, `points_per_branch == 0`, or `dim == 0`.
pub fn synthetic_trajectory_set(
    components: usize,
    points_per_branch: usize,
    dim: usize,
    seed: u64,
) -> TrajectorySet {
    assert!(components > 0, "need at least one component");
    assert!(points_per_branch > 0, "need at least one point per branch");
    assert!(dim > 0, "signature space needs at least one dimension");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = points_per_branch as i64;

    let mut trajectories = Vec::with_capacity(components);
    for c in 0..components {
        // Random primary direction, unit length.
        let mut u: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        u.iter_mut().for_each(|x| *x /= norm);
        // Curvature direction bends the polyline so segments differ.
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.3..0.3)).collect();

        let devs: Vec<f64> = (-n..=n).map(|k| k as f64 * (40.0 / n as f64)).collect();
        let points: Vec<Signature> = (-n..=n)
            .map(|k| {
                let t = k as f64 / n as f64; // −1 ‥ +1, 0 at the origin
                let r = t * EXTENT_DB;
                let bend = t * t * EXTENT_DB;
                Signature::new((0..dim).map(|d| u[d] * r + v[d] * bend).collect())
            })
            .collect();
        trajectories.push(FaultTrajectory::new(format!("C{c}"), devs, points));
    }

    let tv = TestVector::new((1..=dim).map(|k| k as f64).collect());
    TrajectorySet::new(tv, trajectories)
}

/// Builds a complete, deterministic [`TrajectoryBank`] by *simulating* a
/// doubly-terminated Butterworth RLC ladder of the given order: the full
/// offline pipeline — engine-backed fault-dictionary build over the
/// paper's deviation grid, trajectory materialisation at `tv` — on a CUT
/// whose size scales with `order` (passives: `order + 2`, with inductor
/// branch-current unknowns in the MNA system).
///
/// Unlike [`synthetic_trajectory_set`], the responses here are real
/// circuit physics, so the bank also exercises the simulation layers in
/// serving benchmarks.
///
/// # Errors
///
/// Propagates simulation errors (none occur for supported orders).
///
/// # Panics
///
/// Panics if `order` is outside the ladder library's 1–9 range, if
/// `deviation_step_pct` does not satisfy `0 < step ≤ 40`, or if
/// `grid_points < 2`.
pub fn synthetic_circuit_bank(
    order: usize,
    deviation_step_pct: f64,
    grid_points: usize,
    tv: &TestVector,
) -> Result<TrajectoryBank, CircuitError> {
    assert!(grid_points >= 2, "need at least two grid points");
    let bench = rlc_ladder_lowpass(order)?;
    let universe = FaultUniverse::new(
        &bench.fault_set,
        DeviationGrid::new(40.0, deviation_step_pct),
    );
    let grid = FrequencyGrid::log_space(bench.search_band.0, bench.search_band.1, grid_points);
    let dict =
        FaultDictionary::build(&bench.circuit, &universe, &bench.input, &bench.probe, &grid)?;
    Ok(TrajectoryBank::build(dict, tv))
}

/// Draws `count` query signatures near the set's trajectories (random
/// trajectory point plus jitter) — realistic observations for
/// benchmarking, seeded deterministically.
pub fn synthetic_queries(set: &TrajectorySet, count: usize, seed: u64) -> Vec<Signature> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let t = &set.trajectories()[rng.gen_range(0..set.len())];
            let p = &t.points()[rng.gen_range(0..t.points().len())];
            Signature::new(
                p.coords()
                    .iter()
                    .map(|&x| x + rng.gen_range(-0.25..0.25))
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let set = synthetic_trajectory_set(64, 8, 2, 7);
        assert_eq!(set.len(), 64);
        assert_eq!(set.dim(), 2);
        assert_eq!(set.total_segments(), 64 * 16);
        assert!(set.total_segments() >= 1000, "bench-scale bank");
        // Every trajectory passes through the origin.
        for t in set.trajectories() {
            let oi = t.deviations_pct().iter().position(|d| *d == 0.0).unwrap();
            assert!(t.points()[oi].norm() < 1e-12);
        }
        // Same seed, same set; different seed, different geometry.
        assert_eq!(set, synthetic_trajectory_set(64, 8, 2, 7));
        assert_ne!(set, synthetic_trajectory_set(64, 8, 2, 8));
    }

    #[test]
    fn queries_are_deterministic_and_well_shaped() {
        let set = synthetic_trajectory_set(8, 4, 3, 1);
        let qs = synthetic_queries(&set, 10, 2);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.dim() == 3));
        assert_eq!(qs, synthetic_queries(&set, 10, 2));
    }

    #[test]
    fn higher_dimensional_sets_build() {
        let set = synthetic_trajectory_set(4, 3, 4, 3);
        assert_eq!(set.dim(), 4);
        assert_eq!(set.channels(), 1);
    }

    #[test]
    fn circuit_bank_simulates_and_round_trips() {
        let tv = TestVector::pair(0.5, 2.0);
        let bank = synthetic_circuit_bank(3, 10.0, 11, &tv).unwrap();
        // Order-3 ladder: RS, C1, L2, C3, RL = 5 passives × 8 deviations.
        assert_eq!(bank.trajectory_set().len(), 5);
        assert_eq!(bank.dictionary().entries().len(), 40);
        assert_eq!(bank.test_vector(), &tv);
        // Deterministic (the engine path is chunking-invariant) and
        // codec-round-trippable like any real bank.
        let again = synthetic_circuit_bank(3, 10.0, 11, &tv).unwrap();
        assert_eq!(bank.to_bytes(), again.to_bytes());
        let back = TrajectoryBank::from_bytes(&bank.to_bytes()).unwrap();
        assert_eq!(bank, back);
    }

    #[test]
    fn circuit_bank_scales_with_step() {
        let tv = TestVector::pair(0.5, 2.0);
        let dense = synthetic_circuit_bank(2, 5.0, 9, &tv).unwrap();
        // 4 passives × 16 deviations at a 5% step.
        assert_eq!(dense.dictionary().entries().len(), 64);
        assert!(dense.trajectory_set().total_segments() > 60);
    }
}
