//! Memory-mapped, read-only views of bank shard files.
//!
//! The vendored environment has no `libc` crate, so the `mmap`/`munmap`
//! bindings are hand-rolled `extern "C"` declarations (std already
//! links the platform libc on unix). [`Mmap`] maps a file `PROT_READ` /
//! `MAP_PRIVATE` and derefs to `&[u8]`, so every codec reader
//! ([`crate::codec::Decoder::over`], [`crate::codec::Container::parse`])
//! works over mapped bytes exactly as over a heap buffer — without the
//! intermediate `std::fs::read` copy. On non-unix targets the same API
//! is backed by a plain heap read, so callers never need to gate.
//!
//! Mapping also captures the source file's generation ([`FileGen`]:
//! modification time + length) **from the same file descriptor**, so
//! the generation always describes the bytes actually mapped — the
//! foundation of the store's hot-reload and failure-retry keying.
//!
//! ## Caveats
//!
//! A mapping observes the file's pages, not a snapshot: truncating a
//! mapped file can fault a reader (`SIGBUS`), and in-place rewrites can
//! tear. Shard replacement must therefore be an atomic rename (write to
//! a temp file, `rename(2)` over the shard), which swaps the directory
//! entry while live mappings keep the old inode's pages — exactly the
//! discipline `ftd serve` hot reload documents and CI smokes.

use std::fmt;
use std::fs::File;
use std::io;
use std::path::Path;
use std::time::SystemTime;

/// A file's load generation: modification time and byte length. Two
/// observations with equal generations are treated as the same content;
/// a shard slot caches its generation so the store can detect rebuilt
/// (hot reload) or repaired (failure retry) shard files with one `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileGen {
    mtime: SystemTime,
    len: u64,
}

impl FileGen {
    /// The generation recorded in `meta`.
    pub fn from_metadata(meta: &std::fs::Metadata) -> io::Result<FileGen> {
        Ok(FileGen {
            mtime: meta.modified()?,
            len: meta.len(),
        })
    }

    /// Stats `path` and returns its current generation.
    pub fn probe(path: impl AsRef<Path>) -> io::Result<FileGen> {
        FileGen::from_metadata(&std::fs::metadata(path)?)
    }

    /// The file length this generation was observed at.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` for a zero-length file.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for FileGen {
    /// Renders `mtime=<unix-secs>.<nanos>,len=<bytes>` — the form the
    /// store's failure attribution embeds in error messages and metric
    /// labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mtime.duration_since(SystemTime::UNIX_EPOCH) {
            Ok(d) => write!(
                f,
                "mtime={}.{:09},len={}",
                d.as_secs(),
                d.subsec_nanos(),
                self.len
            ),
            Err(_) => write!(f, "mtime=pre-epoch,len={}", self.len),
        }
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    // `off_t` is 64-bit on every 64-bit unix; we only ever map from
    // offset 0, so the width never matters in practice.
    pub type OffT = i64;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: OffT,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only memory mapping of a whole file (unix), or a heap copy of
/// it (elsewhere). Derefs to `&[u8]`; safe to share across threads.
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut std::os::raw::c_void,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
    generation: FileGen,
}

// The mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime, so shared access from any thread is sound.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only and records its [`FileGen`] from the opened
    /// descriptor (no stat/map race: the generation describes exactly
    /// the inode that was mapped).
    ///
    /// # Errors
    ///
    /// Any `open`, `fstat`, or `mmap` failure, as `io::Error`.
    pub fn map(path: impl AsRef<Path>) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let meta = file.metadata()?;
        let generation = FileGen::from_metadata(&meta)?;
        Mmap::from_file(&file, generation)
    }

    #[cfg(unix)]
    fn from_file(file: &File, generation: FileGen) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = usize::try_from(generation.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds address space")
        })?;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty file is an empty slice.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
                generation,
            });
        }
        // SAFETY: fd is a valid open descriptor for at least this call;
        // a PROT_READ + MAP_PRIVATE mapping of it aliases no Rust data.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr,
            len,
            generation,
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: &File, generation: FileGen) -> io::Result<Mmap> {
        use std::io::Read;

        let mut buf = Vec::with_capacity(generation.len() as usize);
        (&*file).take(generation.len()).read_to_end(&mut buf)?;
        Ok(Mmap { buf, generation })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// `true` when the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The source file's generation, captured from the descriptor the
    /// mapping was created from.
    pub fn generation(&self) -> FileGen {
        self.generation
    }

    /// `true` when the bytes are a genuine kernel mapping rather than
    /// the heap fallback.
    pub fn is_mapped(&self) -> bool {
        cfg!(unix)
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/len came from a successful mmap; unmapping at
            // drop ends the only remaining reference to the region.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

/// Always returns the same slice for the life of the mapping (the pages
/// are fixed at `mmap` and released only in `Drop`) — the stability
/// contract zero-copy trajectory storage relies on.
impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents_exactly() {
        let path = std::env::temp_dir().join("ft_mmap_basic_test.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::map(&path).unwrap();
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.generation().len(), payload.len() as u64);
        assert_eq!(map.generation(), FileGen::probe(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = std::env::temp_dir().join("ft_mmap_empty_test.bin");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::map(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Mmap::map("/nonexistent/shard.ftb").is_err());
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = std::env::temp_dir().join("ft_mmap_threads_test.bin");
        std::fs::write(&path, vec![0x5au8; 4096]).unwrap();
        let map = std::sync::Arc::new(Mmap::map(&path).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || {
                    assert!(map.iter().all(|&b| b == 0x5a));
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generation_distinguishes_rewrites() {
        let path = std::env::temp_dir().join("ft_mmap_gen_test.bin");
        std::fs::write(&path, b"first contents").unwrap();
        let before = FileGen::probe(&path).unwrap();
        assert_eq!(before.len(), 14);
        assert!(!before.is_empty());
        assert!(before.to_string().starts_with("mtime="));
        assert!(before.to_string().ends_with(",len=14"));
        // A different length always changes the generation, regardless
        // of filesystem timestamp granularity.
        std::fs::write(&path, b"second, longer contents").unwrap();
        let after = FileGen::probe(&path).unwrap();
        assert_ne!(before, after);
        std::fs::remove_file(&path).ok();
    }
}
