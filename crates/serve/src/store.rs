//! Multi-circuit bank sharding: one store, many banks, routed by CUT id.
//!
//! A deployment rarely serves a single circuit-under-test. [`BankStore`]
//! owns a shard per CUT — each shard a full [`DiagnosisEngine`] (bank +
//! spatial index + diagnoser) — and routes every
//! [`DiagnosisRequest`]`{ cut_id, signature }` to the right shard's
//! index. Shards load lazily from a directory laid out as
//! `<dir>/<cut-id>.ftb`, so opening a store over thousands of banks
//! costs nothing until a CUT is actually queried; once loaded, a shard
//! stays resident behind an `Arc` and is shared by every worker of the
//! serving front-end ([`crate::ServeHandle`]).

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use ft_core::{Diagnosis, Signature};

use crate::bank::TrajectoryBank;
use crate::codec::CodecError;
use crate::engine::{DiagnosisEngine, EngineConfig};

/// One serving request: which circuit-under-test, and the observed
/// signature to diagnose against that CUT's trajectory bank.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisRequest {
    /// The target shard — the bank file stem under the store directory.
    pub cut_id: String,
    /// The observed signature (same dimension as the shard's bank).
    pub signature: Signature,
}

impl DiagnosisRequest {
    /// Assembles a request.
    pub fn new(cut_id: impl Into<String>, signature: Signature) -> Self {
        DiagnosisRequest {
            cut_id: cut_id.into(),
            signature,
        }
    }
}

/// Errors surfaced while routing or serving store requests.
#[derive(Debug)]
pub enum StoreError {
    /// The CUT id names no loaded bank and no `<dir>/<cut-id>.ftb`.
    UnknownCut(String),
    /// The CUT id is not a valid shard name (empty, path separators, …).
    InvalidCutId(String),
    /// The request's signature dimension does not match the shard.
    DimensionMismatch {
        /// The shard queried.
        cut_id: String,
        /// The shard's signature dimension.
        expected: usize,
        /// The request's signature dimension.
        got: usize,
    },
    /// The request's signature contains a non-finite coordinate — the
    /// diagnosis geometry is undefined on NaN/inf, so the request is
    /// rejected instead of poisoning a worker.
    NonFiniteSignature(String),
    /// Loading or decoding a shard's bank file failed (the inner error
    /// names the offending path). Shared, because a failed shard load is
    /// cached and replayed to every subsequent request for that CUT.
    Bank(Arc<CodecError>),
    /// A diagnosis panicked inside a pool worker; the panic was caught
    /// and converted so the serving loop keeps running.
    Panicked(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownCut(id) => write!(f, "unknown CUT id `{id}`"),
            StoreError::InvalidCutId(id) => write!(
                f,
                "invalid CUT id `{id}` (want non-empty [A-Za-z0-9._-], no leading dot)"
            ),
            StoreError::DimensionMismatch {
                cut_id,
                expected,
                got,
            } => write!(
                f,
                "signature dimension {got} does not match CUT `{cut_id}` (dimension {expected})"
            ),
            StoreError::NonFiniteSignature(cut_id) => write!(
                f,
                "signature for CUT `{cut_id}` contains a non-finite coordinate"
            ),
            StoreError::Bank(e) => write!(f, "{e}"),
            StoreError::Panicked(what) => write!(f, "diagnosis panicked: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Bank(e) => Some(&**e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Bank(Arc::new(e))
    }
}

/// `true` when `id` is a safe shard name: non-empty, ASCII
/// alphanumerics plus `-`, `_`, `.`, and no leading dot (which rules out
/// path traversal and hidden files in one stroke).
pub fn valid_cut_id(id: &str) -> bool {
    !id.is_empty()
        && !id.starts_with('.')
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// A resolved shard slot: the engine, or the cached load failure — a
/// corrupt shard file must not be re-read and re-decoded on every
/// request that routes to it.
type ShardSlot = Result<Arc<DiagnosisEngine>, Arc<CodecError>>;

/// A sharded collection of diagnosis engines keyed by CUT id.
///
/// Thread-safe: the shard map sits behind a mutex and hands out
/// `Arc<DiagnosisEngine>` clones, so concurrent workers diagnose over
/// shared immutable shards without copying bank data. The map lock is
/// never held across disk I/O — a slow (or corrupt) shard load cannot
/// stall routing for healthy CUTs — and both outcomes of a load are
/// cached, so each shard file is read at most once per racing loader
/// and a broken shard answers from memory thereafter.
#[derive(Debug)]
pub struct BankStore {
    dir: Option<PathBuf>,
    config: EngineConfig,
    shards: Mutex<HashMap<String, ShardSlot>>,
}

impl BankStore {
    /// Opens a store over a shard directory laid out as
    /// `<dir>/<cut-id>.ftb`. No bank is loaded yet.
    ///
    /// # Errors
    ///
    /// [`StoreError::Bank`] (wrapping an I/O error naming the path) when
    /// `dir` is not an existing directory.
    pub fn open(dir: impl AsRef<Path>, config: EngineConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        if !dir.is_dir() {
            return Err(StoreError::from(
                CodecError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "bank shard directory not found",
                ))
                .in_file(dir),
            ));
        }
        Ok(BankStore {
            dir: Some(dir.to_path_buf()),
            config,
            shards: Mutex::new(HashMap::new()),
        })
    }

    /// A store with no backing directory — shards are supplied through
    /// [`BankStore::insert_bank`] (tests, benches, embedded use).
    pub fn in_memory(config: EngineConfig) -> Self {
        BankStore {
            dir: None,
            config,
            shards: Mutex::new(HashMap::new()),
        }
    }

    /// The shard directory, when the store is directory-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The engine configuration every shard is built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Builds an engine over `bank` and registers it under `cut_id`,
    /// replacing any previous shard with that id.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidCutId`] when the id is not a valid shard
    /// name.
    pub fn insert_bank(
        &self,
        cut_id: &str,
        bank: TrajectoryBank,
    ) -> Result<Arc<DiagnosisEngine>, StoreError> {
        if !valid_cut_id(cut_id) {
            return Err(StoreError::InvalidCutId(cut_id.to_string()));
        }
        let engine = Arc::new(DiagnosisEngine::new(bank, self.config));
        self.shards
            .lock()
            .expect("shard map lock poisoned")
            .insert(cut_id.to_string(), Ok(Arc::clone(&engine)));
        Ok(engine)
    }

    /// Number of shards currently resident in memory (cached load
    /// failures do not count).
    pub fn loaded_count(&self) -> usize {
        self.shards
            .lock()
            .expect("shard map lock poisoned")
            .values()
            .filter(|slot| slot.is_ok())
            .count()
    }

    /// Every CUT id this store can serve: resident shards plus `*.ftb`
    /// files in the shard directory, sorted and deduplicated.
    pub fn cut_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .lock()
            .expect("shard map lock poisoned")
            .iter()
            .filter(|(_, slot)| slot.is_ok())
            .map(|(id, _)| id.clone())
            .collect();
        if let Some(dir) = &self.dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "ftb") {
                        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                            if valid_cut_id(stem) {
                                ids.push(stem.to_string());
                            }
                        }
                    }
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The shard for `cut_id`, loading `<dir>/<cut-id>.ftb` on first
    /// touch. The map lock is released during the load, so two racing
    /// first requests may both load the file (the engines are
    /// identical; one wins the insert) but routing of other CUTs never
    /// waits on shard I/O. Load *failures* are cached too: a corrupt
    /// shard answers every later request from memory instead of
    /// re-reading the file.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidCutId`], [`StoreError::UnknownCut`], or
    /// [`StoreError::Bank`] (decode/I/O failure naming the shard path).
    pub fn engine(&self, cut_id: &str) -> Result<Arc<DiagnosisEngine>, StoreError> {
        if !valid_cut_id(cut_id) {
            return Err(StoreError::InvalidCutId(cut_id.to_string()));
        }
        {
            let shards = self.shards.lock().expect("shard map lock poisoned");
            if let Some(slot) = shards.get(cut_id) {
                return slot.clone().map_err(StoreError::Bank);
            }
        }
        let Some(dir) = &self.dir else {
            return Err(StoreError::UnknownCut(cut_id.to_string()));
        };
        let path = dir.join(format!("{cut_id}.ftb"));
        if !path.is_file() {
            return Err(StoreError::UnknownCut(cut_id.to_string()));
        }
        let slot: ShardSlot = DiagnosisEngine::load(&path, self.config)
            .map(Arc::new)
            .map_err(Arc::new);
        self.shards
            .lock()
            .expect("shard map lock poisoned")
            .entry(cut_id.to_string())
            .or_insert_with(|| slot.clone())
            .clone()
            .map_err(StoreError::Bank)
    }

    /// Routes one request to its shard and diagnoses through the shard's
    /// spatial index. Results are identical to calling
    /// [`DiagnosisEngine::diagnose`] on the corresponding single bank.
    ///
    /// # Errors
    ///
    /// Routing errors as [`BankStore::engine`], plus
    /// [`StoreError::DimensionMismatch`] instead of a panic when the
    /// signature does not fit the shard.
    pub fn diagnose(&self, request: &DiagnosisRequest) -> Result<Diagnosis, StoreError> {
        diagnose_on(&*self.engine(&request.cut_id)?, request)
    }

    /// Diagnoses a batch of requests sequentially, preserving input
    /// order; each request may target a different CUT. For a concurrent
    /// front-end over the same store, use [`crate::ServeHandle`].
    pub fn diagnose_batch(
        &self,
        requests: &[DiagnosisRequest],
    ) -> Vec<Result<Diagnosis, StoreError>> {
        requests.iter().map(|r| self.diagnose(r)).collect()
    }
}

/// Diagnoses one routed request on an already-resolved shard engine —
/// the dimension-checked back half of [`BankStore::diagnose`], split out
/// so pool workers can resolve a shard once per run of same-CUT requests
/// instead of taking the shard-map lock per request.
pub fn diagnose_on(
    engine: &DiagnosisEngine,
    request: &DiagnosisRequest,
) -> Result<Diagnosis, StoreError> {
    let expected = engine.bank().trajectory_set().dim();
    if request.signature.dim() != expected {
        return Err(StoreError::DimensionMismatch {
            cut_id: request.cut_id.clone(),
            expected,
            got: request.signature.dim(),
        });
    }
    // A NaN/inf coordinate makes the nearest-segment geometry panic
    // deep in the diagnoser; reject it as a routable error instead.
    if !request.signature.coords().iter().all(|x| x.is_finite()) {
        return Err(StoreError::NonFiniteSignature(request.cut_id.clone()));
    }
    Ok(engine.diagnose(&request.signature))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::TestVector;
    use ft_faults::{DeviationGrid, FaultDictionary, FaultUniverse};
    use ft_numerics::FrequencyGrid;

    fn rc_bank(r: f64) -> TrajectoryBank {
        let mut ckt = ft_circuit::Circuit::new("rc");
        ckt.voltage_source("V1", "in", "0", 1.0).unwrap();
        ckt.resistor("R1", "in", "out", r).unwrap();
        ckt.capacitor("C1", "out", "0", 1e-6).unwrap();
        let universe = FaultUniverse::new(&["R1", "C1"], DeviationGrid::paper());
        let grid = FrequencyGrid::log_space(1.0, 1e6, 15);
        let dict = FaultDictionary::build(
            &ckt,
            &universe,
            "V1",
            &ft_circuit::Probe::node("out"),
            &grid,
        )
        .unwrap();
        TrajectoryBank::build(dict, &TestVector::pair(100.0, 1e4))
    }

    #[test]
    fn cut_id_validation() {
        for ok in ["a", "tow-thomas", "cut_07", "bank.v2", "A9"] {
            assert!(valid_cut_id(ok), "{ok} should be valid");
        }
        for bad in ["", ".", "..", ".hidden", "a/b", "a\\b", "a b", "ü"] {
            assert!(!valid_cut_id(bad), "{bad} should be invalid");
        }
    }

    #[test]
    fn in_memory_store_routes_by_cut_id() {
        let store = BankStore::in_memory(EngineConfig::default());
        let a = rc_bank(1e3);
        let b = rc_bank(2e3);
        store.insert_bank("a", a.clone()).unwrap();
        store.insert_bank("b", b.clone()).unwrap();
        assert_eq!(store.cut_ids(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(store.loaded_count(), 2);

        let sig = Signature::new(vec![1.0, -2.0]);
        let via_a = store
            .diagnose(&DiagnosisRequest::new("a", sig.clone()))
            .unwrap();
        let via_b = store
            .diagnose(&DiagnosisRequest::new("b", sig.clone()))
            .unwrap();
        let engine_a = DiagnosisEngine::new(a, EngineConfig::default());
        let engine_b = DiagnosisEngine::new(b, EngineConfig::default());
        assert_eq!(via_a, engine_a.diagnose(&sig));
        assert_eq!(via_b, engine_b.diagnose(&sig));
        // The two CUTs genuinely differ, so routing matters.
        assert_ne!(via_a.best().distance, via_b.best().distance);
    }

    #[test]
    fn directory_store_loads_lazily() {
        let dir = std::env::temp_dir().join("ft_store_lazy_test");
        std::fs::create_dir_all(&dir).unwrap();
        rc_bank(1e3).save(dir.join("x.ftb")).unwrap();
        rc_bank(3e3).save(dir.join("y.ftb")).unwrap();

        let store = BankStore::open(&dir, EngineConfig::default()).unwrap();
        assert_eq!(store.loaded_count(), 0, "opening loads nothing");
        assert_eq!(store.cut_ids(), vec!["x".to_string(), "y".to_string()]);

        let sig = Signature::new(vec![0.5, 0.5]);
        store
            .diagnose(&DiagnosisRequest::new("x", sig.clone()))
            .unwrap();
        assert_eq!(store.loaded_count(), 1, "only the touched shard loads");
        store.diagnose(&DiagnosisRequest::new("y", sig)).unwrap();
        assert_eq!(store.loaded_count(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn routing_errors_are_reported_not_panicked() {
        let dir = std::env::temp_dir().join("ft_store_errors_test");
        std::fs::create_dir_all(&dir).unwrap();
        rc_bank(1e3).save(dir.join("x.ftb")).unwrap();
        let store = BankStore::open(&dir, EngineConfig::default()).unwrap();

        let sig = Signature::new(vec![0.0, 0.0]);
        assert!(matches!(
            store.diagnose(&DiagnosisRequest::new("nope", sig.clone())),
            Err(StoreError::UnknownCut(_))
        ));
        assert!(matches!(
            store.diagnose(&DiagnosisRequest::new("../x", sig)),
            Err(StoreError::InvalidCutId(_))
        ));
        assert!(matches!(
            store.diagnose(&DiagnosisRequest::new("x", Signature::new(vec![1.0]))),
            Err(StoreError::DimensionMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));

        // A non-finite coordinate is a routable error, not a worker
        // panic deep in the diagnosis geometry.
        assert!(matches!(
            store.diagnose(&DiagnosisRequest::new(
                "x",
                Signature::new(vec![f64::NAN, 0.0])
            )),
            Err(StoreError::NonFiniteSignature(_))
        ));

        // A corrupt shard file surfaces a Bank error naming the path —
        // and the failure is cached: deleting the file afterwards does
        // not change the answer, proving no re-read per request.
        std::fs::write(dir.join("bad.ftb"), b"FTBANK\r\ngarbage").unwrap();
        let req = DiagnosisRequest::new("bad", Signature::new(vec![0.0, 0.0]));
        let err = store.diagnose(&req).unwrap_err();
        assert!(err.to_string().contains("bad.ftb"), "{err}");
        std::fs::remove_file(dir.join("bad.ftb")).unwrap();
        let err = store.diagnose(&req).unwrap_err();
        assert!(
            matches!(err, StoreError::Bank(_)),
            "cached failure expected, got {err}"
        );
        assert_eq!(store.loaded_count(), 1, "failed shards are not 'loaded'");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_missing_directory() {
        let err = BankStore::open("/nonexistent/shards", EngineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/shards"), "{err}");
    }

    #[test]
    fn batch_mixes_cuts_and_preserves_order() {
        let store = BankStore::in_memory(EngineConfig::default());
        store.insert_bank("a", rc_bank(1e3)).unwrap();
        store.insert_bank("b", rc_bank(2e3)).unwrap();
        let reqs: Vec<DiagnosisRequest> = (0..10)
            .map(|i| {
                DiagnosisRequest::new(
                    if i % 2 == 0 { "a" } else { "b" },
                    Signature::new(vec![i as f64 * 0.3 - 1.5, 1.0]),
                )
            })
            .collect();
        let batch = store.diagnose_batch(&reqs);
        assert_eq!(batch.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&batch) {
            let solo = store.diagnose(req).unwrap();
            assert_eq!(got.as_ref().unwrap(), &solo, "order or routing drift");
        }
    }
}
